#!/usr/bin/env bash
# Tier-1 verification gate for the caf-audit reproduction.
#
# Mirrors what reviewers run before merging: formatting, a release
# build, the full test suite (unit + integration + doc), clippy at
# deny-warnings across every target (lib, bins, benches, tests), the
# cold-path equivalence suite at two different worker-pool shapes, a
# quick world-bench run whose `BENCH_world.json` must pass the caf-obs
# schema gate (and, on hosts with >= 4 cores, the shard scheduler's
# 4-worker speedup gate), and an observability smoke run — a tiny repro
# experiment with `--metrics` whose run report must pass the full
# metrics_check gate.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cold-path equivalence at two pool shapes (2 and 5 workers)"
CAF_EQUIV_WORKERS=2 cargo test -q -p caf-tests --test parallel_cold_paths
CAF_EQUIV_WORKERS=5 cargo test -q -p caf-tests --test parallel_cold_paths

echo "==> world bench smoke: BENCH_world.json + schema gate"
CAF_BENCH_WORLD_QUICK=1 cargo bench -q -p caf-bench --bench world
cargo run --release -q -p caf-bench --bin metrics_check -- --schema-only BENCH_world.json

# Speedup regression gate for the cost-aware shard scheduler: the
# 4-worker world build must not be slower than the 1-worker build.
# Only meaningful with real parallelism, so skip on small hosts.
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 4 ]; then
  echo "==> world bench speedup gate (host has $cores cores)"
  cargo run --release -q -p caf-bench --bin metrics_check -- \
    --schema-only --min-world-speedup 1.0 BENCH_world.json
else
  echo "==> skipping world bench speedup gate (host has $cores cores, need 4)"
fi

echo "==> observability smoke: repro --metrics + schema gate"
smoke_report=$(mktemp /tmp/caf_obs_smoke.XXXXXX.json)
trap 'rm -f "$smoke_report"' EXIT
cargo run --release -q -p caf-bench --bin repro -- \
  table2 --scale 150 --workers 2 --metrics "$smoke_report" --quiet
cargo run --release -q -p caf-bench --bin metrics_check -- "$smoke_report"

echo "==> ci.sh: all gates passed"
