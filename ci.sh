#!/usr/bin/env bash
# Tier-1 verification gate for the caf-audit reproduction.
#
# Mirrors what reviewers run before merging: formatting, a release
# build, the full test suite (unit + integration + doc), clippy at
# deny-warnings across every target (lib, bins, benches, tests), the
# cold-path equivalence suite at two different worker-pool shapes, a
# quick world-bench run whose `BENCH_world.json` must pass the caf-obs
# schema gate (and, on hosts with >= 4 cores, the shard scheduler's
# 4-worker speedup gate plus the >= 1.3x bootstrap speedup gate), a
# campaign bench smoke whose `BENCH_campaign.json` must pass the schema
# gate (with the campaign speedup gate on >= 4 cores) and which
# self-asserts checkpoint resume equality, a checkpoint/resume smoke
# that SIGKILLs a `campaign_run` mid-flight and byte-diffs the resumed
# result against an uninterrupted reference, an observability smoke run (a tiny repro
# experiment whose run report must pass the full metrics_check gate),
# and the serving-layer gate: `caf-serve` is started on an ephemeral
# port at two HTTP worker counts, its `/v1/table2` response is
# byte-compared against the golden artifact the same repro run wrote,
# its `/v1/debug/traces` flight recorder must show the request's span
# path (route -> cache lookup -> render), its `/metrics` report must
# pass the full metrics_check gate including the per-route SLO burn
# gate, its Prometheus exposition must render, and it must shut down
# cleanly via `/quitquitquit` (a leaked thread or hung process fails
# the gate). The snapshot restart gate boots a server with
# `--snapshot-dir`, advances three challenge epochs, snapshots, and
# restarts: the restarted server must report the snapshot loaded and
# serve byte-identical `/v1/table2` bytes at epoch 0 and epoch 3, and
# (on >= 4 cores) the in-process restore must be >= 10x faster than the
# cold first-200 wall. The challenge-replay gate runs the committed
# sample delta stream through `challenge_replay` in incremental and
# full mode and byte-compares the artifact sets (the epoch-versioned
# incremental-recompute determinism contract), and the challenge bench
# smoke validates `BENCH_challenge.json` (with the >= 5x incremental
# speedup gate on hosts with >= 4 cores). The sweep determinism gate
# runs the release `caf-sweep` binary over the committed
# `testdata/sweep_spec.json` at {1,4} workers with stealing on and off
# and byte-compares all four results.json/results.csv emissions (the
# grid-cell determinism contract), and the sweep bench smoke validates
# `BENCH_sweep.json` (with the >= 1.0x 4-worker sweep speedup gate on
# hosts with >= 4 cores). A supply-chain check
# (`cargo deny`) runs when the tool is installed, and the script fails
# if any gate left the git worktree dirtier than it found it. A
# per-gate wall-clock summary is printed just before the final
# all-passed line.
#
# All generated reports/artifacts land in $CAF_CI_OUT (a temp dir by
# default; CI sets it to a workspace path and uploads it), never in
# tracked files.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

# Snapshot worktree state up front: the final gate asserts that no CI
# step modified tracked files (e.g. a bench overwriting its committed
# baseline).
status_before=""
if command -v git >/dev/null && git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  status_before=$(git status --porcelain)
fi

ci_out=${CAF_CI_OUT:-}
cleanup_out=""
if [ -z "$ci_out" ]; then
  ci_out=$(mktemp -d /tmp/caf_ci.XXXXXX)
  cleanup_out="$ci_out"
fi
mkdir -p "$ci_out"
serve_pid=""
cleanup() {
  if [ -n "$serve_pid" ] && kill -0 "$serve_pid" 2>/dev/null; then
    kill -9 "$serve_pid" 2>/dev/null || true
  fi
  if [ -n "$cleanup_out" ]; then
    rm -rf "$cleanup_out"
  fi
}
trap cleanup EXIT

# Per-gate wall-clock accounting: `gate NAME` closes the previous
# gate's clock, starts a new one, and prints the usual `==>` marker.
# `gate_summary` (called just before the final all-passed line) flushes
# the last gate and prints the whole table, so slow gates are obvious
# from the log without timestamp archaeology.
gate_names=()
gate_ms=()
current_gate=""
gate_started_ns=0
gate_close() {
  if [ -n "$current_gate" ]; then
    gate_names+=("$current_gate")
    gate_ms+=($(( ($(date +%s%N) - gate_started_ns) / 1000000 )))
    current_gate=""
  fi
}
gate() {
  gate_close
  current_gate="$1"
  gate_started_ns=$(date +%s%N)
  echo "==> $1"
}
gate_summary() {
  gate_close
  echo "==> per-gate timing summary"
  local i
  for i in "${!gate_names[@]}"; do
    printf '    %5d.%03ds  %s\n' \
      $(( gate_ms[i] / 1000 )) $(( gate_ms[i] % 1000 )) "${gate_names[i]}"
  done
}

gate "cargo fmt --all -- --check"
cargo fmt --all -- --check

gate "cargo build --release"
cargo build --release

gate "cargo test -q"
cargo test -q

gate "cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

gate "cold-path equivalence at two pool shapes (2 and 5 workers)"
CAF_EQUIV_WORKERS=2 cargo test -q -p caf-tests --test parallel_cold_paths
CAF_EQUIV_WORKERS=5 cargo test -q -p caf-tests --test parallel_cold_paths

gate "world bench smoke: BENCH_world.json + schema gate"
CAF_BENCH_WORLD_QUICK=1 CAF_BENCH_DIR="$ci_out" cargo bench -q -p caf-bench --bench world
cargo run --release -q -p caf-bench --bin metrics_check -- --schema-only "$ci_out/BENCH_world.json"

# Speedup regression gate for the cost-aware shard scheduler: the
# 4-worker world build must not be slower than the 1-worker build.
# Only meaningful with real parallelism, so skip on small hosts.
cores=$(nproc 2>/dev/null || echo 1)
if [ "$cores" -ge 4 ]; then
  gate "world bench speedup gate (host has $cores cores)"
  cargo run --release -q -p caf-bench --bin metrics_check -- \
    --schema-only --min-world-speedup 1.0 "$ci_out/BENCH_world.json"
  # The bootstrap plateau fix (DESIGN.md §2.3): hoisted stream-base
  # keying, scratch-buffer reuse, and the stealing executor must hold a
  # >= 1.3x 4-worker speedup on the ext-ci replicate budget.
  gate "bootstrap speedup gate (host has $cores cores)"
  cargo run --release -q -p caf-bench --bin metrics_check -- \
    --schema-only --min-bootstrap-speedup 1.3 "$ci_out/BENCH_world.json"
else
  echo "==> skipping world bench speedup gate (host has $cores cores, need 4)"
  echo "==> skipping bootstrap speedup gate (host has $cores cores, need 4)"
fi

gate "campaign bench smoke: BENCH_campaign.json + schema gate"
CAF_BENCH_CAMPAIGN_QUICK=1 CAF_BENCH_DIR="$ci_out" \
  cargo bench -q -p caf-bench --bench campaign
cargo run --release -q -p caf-bench --bin metrics_check -- \
  --schema-only "$ci_out/BENCH_campaign.json"
# The work-stealing campaign scheduler must not be slower at 4 workers
# than serial (same host-size caveat as the world gate; the quick-mode
# summary also self-asserts checkpoint resume equality).
if [ "$cores" -ge 4 ]; then
  gate "campaign speedup gate (host has $cores cores)"
  cargo run --release -q -p caf-bench --bin metrics_check -- \
    --schema-only --min-campaign-speedup 1.0 "$ci_out/BENCH_campaign.json"
else
  echo "==> skipping campaign speedup gate (host has $cores cores, need 4)"
fi

# Checkpoint/resume smoke: an uninterrupted campaign_run is the
# reference; a second run is SIGKILLed mid-flight (wherever the kill
# lands — world build, mid-campaign, or after the final flush — resume
# must converge), then resumed from its checkpoint directory and its
# snap-encoded result byte-diffed against the reference.
gate "campaign checkpoint/resume smoke: SIGKILL -> resume -> byte-diff"
ckpt_smoke="$ci_out/campaign_ckpt"
rm -rf "$ckpt_smoke"
./target/release/campaign_run --scale 20 --workers 2 \
  --out "$ci_out/campaign_ref.bin" 2>/dev/null
timeout -s KILL 2 ./target/release/campaign_run --scale 20 --workers 2 \
  --checkpoint-dir "$ckpt_smoke" --checkpoint-every 500 2>/dev/null || true
./target/release/campaign_run --scale 20 --workers 2 \
  --checkpoint-dir "$ckpt_smoke" --checkpoint-every 500 \
  --out "$ci_out/campaign_resumed.bin" 2>/dev/null
cmp "$ci_out/campaign_ref.bin" "$ci_out/campaign_resumed.bin"
echo "    resumed campaign result is byte-identical to the uninterrupted run"

gate "observability smoke: repro --metrics + golden artifacts + full gate"
golden="$ci_out/golden"
cargo run --release -q -p caf-bench --bin repro -- \
  table2 --scale 150 --workers 2 --metrics "$ci_out/obs_smoke.json" \
  --artifacts "$golden" --quiet
cargo run --release -q -p caf-bench --bin metrics_check -- "$ci_out/obs_smoke.json"

# The serving-layer gate. The /v1/table2 bytes must equal the golden
# artifact repro just wrote — the determinism contract extended across
# the network boundary — at both 1 and 4 HTTP workers.
serve_seed=212803620 # 0xCAF_2024, the repro default
for http_workers in 1 4; do
  gate "serve gate: caf-serve with $http_workers HTTP worker(s)"
  port_file="$ci_out/serve_port.$http_workers"
  rm -f "$port_file"
  ./target/release/caf-serve --addr 127.0.0.1:0 --workers "$http_workers" \
    --engine-workers 2 --port-file "$port_file" --quiet &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [ -s "$port_file" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
      echo "caf-serve exited before startup" >&2
      exit 1
    fi
    sleep 0.1
  done
  [ -s "$port_file" ] || { echo "caf-serve never wrote its port file" >&2; exit 1; }
  addr=$(cat "$port_file")

  health=$(curl -fsS "http://$addr/healthz")
  case "$health" in
    *'"status":"ok"'*) ;;
    *) echo "unexpected /healthz body: $health" >&2; exit 1 ;;
  esac

  curl -fsS "http://$addr/v1/table2?seed=$serve_seed&scale=150" \
    -o "$ci_out/served_table2.$http_workers.json"
  cmp "$ci_out/served_table2.$http_workers.json" "$golden/table2.json"
  echo "    /v1/table2 is byte-identical to the repro golden"

  # Warm requests: the SLO burn gate below must see cheap cache hits,
  # not just the one slow cold build.
  for _ in 1 2 3; do
    curl -fsS "http://$addr/v1/table2?seed=$serve_seed&scale=150" >/dev/null
  done

  # The request must be followable in the flight recorder: the route
  # span, the cache lookup under it, and the artifact render.
  traces=$(curl -fsS "http://$addr/v1/debug/traces?route=v1.table2")
  for span_path in \
    "serve.request/serve.route.v1.table2/cache.lookup" \
    "serve.request/serve.route.v1.table2/render"; do
    case "$traces" in
      *"$span_path"*) ;;
      *) echo "span path $span_path missing from /v1/debug/traces" >&2; exit 1 ;;
    esac
  done
  echo "    /v1/debug/traces shows the route -> cache -> render span path"

  prom=$(curl -fsS "http://$addr/metrics?format=prometheus")
  case "$prom" in
    *"# TYPE"*caf_span_duration_ns*) ;;
    *) echo "Prometheus exposition did not render span families" >&2; exit 1 ;;
  esac
  echo "    /metrics?format=prometheus renders"

  curl -fsS "http://$addr/metrics" -o "$ci_out/serve_metrics.$http_workers.json"
  cargo run --release -q -p caf-bench --bin metrics_check -- \
    --max-slo-burn 0.5 "$ci_out/serve_metrics.$http_workers.json"

  curl -fsS "http://$addr/quitquitquit" >/dev/null
  for _ in $(seq 1 100); do
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$serve_pid" 2>/dev/null; then
    echo "caf-serve did not exit within 10s of /quitquitquit (leaked threads?)" >&2
    exit 1
  fi
  wait "$serve_pid"
  serve_pid=""
  echo "    clean shutdown"
done

# The snapshot restart gate: a server started with --snapshot-dir must,
# after a restart, answer /v1/table2 with byte-identical responses —
# both the epoch-0 view and a post-challenge epoch — without rebuilding
# the world. The committed delta stream's `isp` fields are placeholders
# (cell ownership is RNG-dependent), so challenge_replay first resolves
# them against the generated world; a live server validates ISPs
# strictly and would reject the raw stream.
gate "snapshot restart gate: byte-identity across a warm restart"
cargo run --release -q -p caf-serve --bin challenge_replay -- \
  --deltas testdata/challenge_deltas.jsonl --scale 150 --mode full \
  --workers 2 --emit-resolved "$ci_out/resolved_deltas.jsonl" --quiet
snap_dir="$ci_out/snapshots"
mkdir -p "$snap_dir"
cold_first_200_ms=0
for boot in cold warm; do
  port_file="$ci_out/serve_port.snap.$boot"
  rm -f "$port_file"
  boot_start=$(date +%s%N)
  ./target/release/caf-serve --addr 127.0.0.1:0 --workers 2 \
    --engine-workers 2 --snapshot-dir "$snap_dir" \
    --port-file "$port_file" --quiet &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [ -s "$port_file" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
      echo "caf-serve ($boot boot) exited before startup" >&2
      exit 1
    fi
    sleep 0.1
  done
  [ -s "$port_file" ] || { echo "caf-serve never wrote its port file" >&2; exit 1; }
  addr=$(cat "$port_file")

  curl -fsS "http://$addr/v1/table2?seed=$serve_seed&scale=150" \
    -o "$ci_out/snap_table2.e0.$boot.json"
  first_200_ms=$(( ($(date +%s%N) - boot_start) / 1000000 ))
  cmp "$ci_out/snap_table2.e0.$boot.json" "$golden/table2.json"
  echo "    $boot boot: epoch-0 /v1/table2 matches the golden (first 200 in ${first_200_ms} ms)"

  if [ "$boot" = cold ]; then
    cold_first_200_ms=$first_200_ms
    # Advance three epochs (one delta per batch crosses the batching
    # axis with the incremental refresh), then persist synchronously.
    for i in 1 2 3; do
      sed -n "${i}p" "$ci_out/resolved_deltas.jsonl" | curl -fsS -X POST \
        --data-binary @- "http://$addr/v1/challenge" >/dev/null
    done
    curl -fsS "http://$addr/v1/table2?epoch=3" -o "$ci_out/snap_table2.e3.cold.json"
    snap_reply=$(curl -fsS -X POST "http://$addr/v1/snapshot")
    case "$snap_reply" in
      *'"epoch":3'*) ;;
      *) echo "unexpected /v1/snapshot reply: $snap_reply" >&2; exit 1 ;;
    esac
  else
    health=$(curl -fsS "http://$addr/healthz")
    case "$health" in
      *'"loaded":true'*) ;;
      *) echo "warm boot did not restore a snapshot: $health" >&2; exit 1 ;;
    esac
    curl -fsS "http://$addr/v1/table2?epoch=3" -o "$ci_out/snap_table2.e3.warm.json"
    cmp "$ci_out/snap_table2.e3.warm.json" "$ci_out/snap_table2.e3.cold.json"
    echo "    warm boot: epoch-3 /v1/table2 is byte-identical to the pre-restart bytes"
    curl -fsS "http://$addr/metrics" -o "$ci_out/snap_metrics.json"
    # The no-rebuild proof: both warm requests must be cache hits served
    # from restored views. The miss counter only appears once it
    # increments, so its absence (plus present hits) is the assertion.
    if ! grep -q '"caf.serve.cache.hits"' "$ci_out/snap_metrics.json"; then
      echo "warm boot served no cache hits — restored views unused" >&2
      exit 1
    fi
    if grep -q '"caf.serve.cache.misses"' "$ci_out/snap_metrics.json"; then
      echo "warm boot recomputed a scenario (cache miss) despite the snapshot" >&2
      exit 1
    fi
    echo "    warm boot: zero cache misses (both epochs served from the snapshot)"
  fi

  curl -fsS "http://$addr/quitquitquit" >/dev/null
  for _ in $(seq 1 100); do
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
  done
  if kill -0 "$serve_pid" 2>/dev/null; then
    echo "caf-serve ($boot boot) did not exit within 10s of /quitquitquit" >&2
    exit 1
  fi
  wait "$serve_pid"
  serve_pid=""
done
# The latency gate catches gross restore regressions (a synchronous
# world decode, quadratic parsing). The miss-free check above is what
# proves nothing was rebuilt; this cap tolerates scheduler noise via
# the 50 ms floor. Wall clocks on tiny shared hosts are pure noise, so
# gate where the other timing gates run.
if [ "$cores" -ge 4 ]; then
  max_restart_ms=$(( cold_first_200_ms / 10 ))
  [ "$max_restart_ms" -ge 50 ] || max_restart_ms=50
  gate "restart latency gate (host has $cores cores; cold first-200 ${cold_first_200_ms} ms)"
  cargo run --release -q -p caf-bench --bin metrics_check -- \
    --schema-only --max-restart-ms "$max_restart_ms" "$ci_out/snap_metrics.json"
else
  echo "==> skipping restart latency gate (host has $cores cores, need 4)"
fi

gate "serve bench smoke: BENCH_serve.json + schema gate"
CAF_BENCH_SERVE_QUICK=1 CAF_BENCH_DIR="$ci_out" \
  cargo run --release -q -p caf-serve --bin serve_bench
cargo run --release -q -p caf-bench --bin metrics_check -- --schema-only "$ci_out/BENCH_serve.json"
# The committed baseline must stay schema-valid too.
cargo run --release -q -p caf-bench --bin metrics_check -- --schema-only BENCH_serve.json
# Tracing must stay effectively free: warm p50 with the flight recorder
# attached may not exceed the untraced p50 by more than 5%. Quick-mode
# medians are scheduler noise on tiny shared hosts, so gate where the
# other timing gates run.
if [ "$cores" -ge 4 ]; then
  gate "trace overhead gate (host has $cores cores)"
  cargo run --release -q -p caf-bench --bin metrics_check -- \
    --schema-only --max-trace-overhead-pct 5.0 "$ci_out/BENCH_serve.json"
else
  echo "==> skipping trace overhead gate (host has $cores cores, need 4)"
fi
# Snapshot restore must beat the cold build by >= 10x in the bench's
# own restart-to-first-200 measurement (same host-size caveat).
if [ "$cores" -ge 4 ]; then
  gate "restart speedup gate (host has $cores cores)"
  cargo run --release -q -p caf-bench --bin metrics_check -- \
    --schema-only --min-restart-speedup 10.0 "$ci_out/BENCH_serve.json"
else
  echo "==> skipping restart speedup gate (host has $cores cores, need 4)"
fi

# The challenge-replay gate: the committed sample delta stream must
# produce byte-identical artifacts whether it is folded in batch-by-
# batch through the incremental audit or applied in one shot to a
# from-scratch re-audit — at different worker counts, to cross the
# determinism contracts.
gate "challenge replay gate: incremental vs full byte-identity"
cargo run --release -q -p caf-serve --bin challenge_replay -- \
  --deltas testdata/challenge_deltas.jsonl --scale 150 --batch 3 \
  --mode incremental --workers 2 --out "$ci_out/replay_inc" --quiet
cargo run --release -q -p caf-serve --bin challenge_replay -- \
  --deltas testdata/challenge_deltas.jsonl --scale 150 \
  --mode full --workers 4 --out "$ci_out/replay_full" --quiet
for f in serviceability compliance table2; do
  cmp "$ci_out/replay_inc/$f.json" "$ci_out/replay_full/$f.json"
done
echo "    incremental replay artifacts are byte-identical to the full rebuild"

gate "challenge bench smoke: BENCH_challenge.json + schema gate"
CAF_BENCH_CHALLENGE_QUICK=1 CAF_BENCH_DIR="$ci_out" \
  cargo bench -q -p caf-bench --bench challenge
cargo run --release -q -p caf-bench --bin metrics_check -- \
  --schema-only "$ci_out/BENCH_challenge.json"
# Incremental recompute must beat a full rebuild by >= 5x after a small
# delta batch (the DESIGN.md §4 acceptance bar). The quick-mode wall
# clocks are noisy on tiny shared hosts, so gate where the world bench
# speedup gate also runs.
if [ "$cores" -ge 4 ]; then
  gate "incremental speedup gate (host has $cores cores)"
  cargo run --release -q -p caf-bench --bin metrics_check -- \
    --schema-only --min-incremental-speedup 5.0 "$ci_out/BENCH_challenge.json"
else
  echo "==> skipping incremental speedup gate (host has $cores cores, need 4)"
fi

# The sweep determinism gate: the committed grid spec must emit
# byte-identical results.json/results.csv at {1,4} workers with the
# stealing executor on and off — the grid-cell determinism contract
# the /v1/sweep cache, the results tables, and the bench baselines all
# rely on. The 1-worker static run is the reference.
gate "sweep determinism gate: {1,4} workers x steal on/off byte-identity"
sweep_ref="$ci_out/sweep_w1_static"
./target/release/caf-sweep --spec testdata/sweep_spec.json \
  --out "$sweep_ref" --workers 1 --no-steal 2>/dev/null
for sweep_variant in "1 steal" "4 static" "4 steal"; do
  read -r sweep_workers sweep_mode <<<"$sweep_variant"
  sweep_out="$ci_out/sweep_w${sweep_workers}_${sweep_mode}"
  if [ "$sweep_mode" = static ]; then
    ./target/release/caf-sweep --spec testdata/sweep_spec.json \
      --out "$sweep_out" --workers "$sweep_workers" --no-steal 2>/dev/null
  else
    ./target/release/caf-sweep --spec testdata/sweep_spec.json \
      --out "$sweep_out" --workers "$sweep_workers" 2>/dev/null
  fi
  cmp "$sweep_out/results.json" "$sweep_ref/results.json"
  cmp "$sweep_out/results.csv" "$sweep_ref/results.csv"
done
echo "    all four schedules emitted byte-identical results.json and results.csv"

gate "sweep bench smoke: BENCH_sweep.json + schema gate"
CAF_BENCH_SWEEP_QUICK=1 CAF_BENCH_DIR="$ci_out" \
  cargo bench -q -p caf-bench --bench sweep
cargo run --release -q -p caf-bench --bin metrics_check -- \
  --schema-only "$ci_out/BENCH_sweep.json"
# The committed baseline must stay schema-valid too.
cargo run --release -q -p caf-bench --bin metrics_check -- --schema-only BENCH_sweep.json
# The cost-aware sweep plan must not be slower at 4 workers than serial
# (same host-size caveat as the other speedup gates; the quick-mode
# summary also self-asserts grid determinism and the 2x re-run memo
# hit ratio).
if [ "$cores" -ge 4 ]; then
  gate "sweep speedup gate (host has $cores cores)"
  cargo run --release -q -p caf-bench --bin metrics_check -- \
    --schema-only --min-sweep-speedup 1.0 "$ci_out/BENCH_sweep.json"
else
  echo "==> skipping sweep speedup gate (host has $cores cores, need 4)"
fi

gate "supply-chain gate: cargo deny"
if command -v cargo-deny >/dev/null; then
  cargo deny check
else
  echo "==> skipping cargo deny (not installed; CI installs it)"
fi

if [ -n "${status_before+x}" ] && command -v git >/dev/null \
  && git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  gate "worktree hygiene: no gate may modify tracked files"
  status_after=$(git status --porcelain)
  if [ "$status_after" != "$status_before" ]; then
    echo "ci.sh modified the worktree:" >&2
    diff <(printf '%s\n' "$status_before") <(printf '%s\n' "$status_after") >&2 || true
    exit 1
  fi
fi

gate_summary
echo "==> ci.sh: all gates passed"
