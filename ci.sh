#!/usr/bin/env bash
# Tier-1 verification gate for the caf-audit reproduction.
#
# Mirrors what reviewers run before merging: formatting, a release
# build, the full test suite (unit + integration + doc), and clippy at
# deny-warnings across every target (lib, bins, benches, tests).
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> ci.sh: all gates passed"
