//! Entity-keyed hash mixing — the seed-derivation substrate behind the
//! workspace's determinism contract.
//!
//! Every stochastic decision in the pipeline is keyed by the entity it
//! concerns (an address id, a block GEOID, an ISP, a bootstrap replicate
//! index) rather than drawn from one global stream. This makes results
//! *order-independent*: the truth at address 17 is the same whether the
//! campaign queries it first or last, and bootstrap replicate 512 draws
//! the same indices whether it runs on worker 0 or worker 7. The mixers
//! live here, below every crate that derives RNGs from them, so the
//! synth layer (`caf_synth::rng`), the stats layer (bootstrap replicate
//! streams), and the engine ([`state_seed`](crate::state_seed)) all key
//! from the same functions.

/// A 64-bit mix of the workspace seed and an entity key, used to derive a
/// per-entity RNG. Uses the SplitMix64 finalizer, which is well dispersed
/// for sequential keys (our ids are dense integers).
pub fn mix(seed: u64, key: u64) -> u64 {
    let mut z = seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a seed with two keys (e.g. ISP and address).
pub fn mix2(seed: u64, key1: u64, key2: u64) -> u64 {
    mix(mix(seed, key1), key2)
}

/// Mixes a seed with a string key (e.g. a scope label like `"truth"`),
/// using FNV-1a over the bytes.
pub fn mix_str(seed: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix(seed, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_key_sensitive() {
        assert_eq!(mix(1, 2), mix(1, 2));
        assert_ne!(mix(1, 2), mix(1, 3));
        assert_ne!(mix(1, 2), mix(2, 2));
        assert_ne!(mix2(1, 2, 3), mix2(1, 3, 2));
    }

    #[test]
    fn sequential_keys_disperse() {
        // Adjacent keys must produce uncorrelated high bits: check that the
        // top byte takes many distinct values over 256 sequential keys.
        let mut seen = std::collections::HashSet::new();
        for k in 0..256u64 {
            seen.insert(mix(42, k) >> 56);
        }
        assert!(seen.len() > 150, "only {} distinct top bytes", seen.len());
    }

    #[test]
    fn mix_str_distinguishes_labels() {
        assert_ne!(mix_str(1, "a"), mix_str(1, "b"));
        assert_eq!(mix_str(1, "truth"), mix_str(1, "truth"));
    }
}
