//! # caf-exec — the deterministic parallel execution engine
//!
//! A scoped worker pool with a byte-identical-output determinism
//! contract, shared by every layer that fans independent work units out
//! across threads: per-state world generation (`caf-synth`), bootstrap
//! replicate chunks (`caf-stats`), and the per-state audit
//! (`caf-core::audit`). The crate sits *below* the synth and stats
//! layers in the dependency graph — only `caf-geo` (the leaf vocabulary
//! crate), `caf-obs` (the zero-dependency telemetry layer), and
//! `crossbeam` — which is exactly what lets the cold paths beneath
//! `caf-core` use the same pool the audit does. `caf_core::engine`
//! re-exports everything here, so audit-level callers are unaffected by
//! the extraction.
//!
//! Three scheduling granularities share one determinism contract:
//!
//! - [`map_slice`] schedules whole units (one item = one task) — the
//!   right tool when units are roughly even.
//! - [`map_units`] schedules *shards* of units from a cost-hinted
//!   [`UnitPlan`] — the right tool when the unit cost distribution is
//!   heavy-tailed (one giant state dominating the merge barrier). See
//!   the [`plan`] module for the splitting/LPT policy.
//! - [`map_units_stealing`] executes the same plan on per-worker
//!   deques with tail stealing — the right tool when cost hints are
//!   only approximate (BQT campaign latencies). See the [`steal`]
//!   module for the seeding/victim policy and why output stays
//!   byte-identical to the static path.
//!
//! # The determinism contract
//!
//! Parallelism may change wall-clock time only, never results. Three
//! properties uphold the contract, and the regression tests in
//! `crates/tests/tests/determinism.rs` and
//! `crates/tests/tests/parallel_cold_paths.rs` pin it end-to-end:
//!
//! 1. **Entity-keyed randomness.** Every stochastic decision inside a
//!    unit is keyed by the entity it concerns — sampling draws by
//!    `(seed, CBG, ISP)`, query outcomes by `(seed, address, ISP)`,
//!    bootstrap draws by `(seed, replicate index)` — so a unit's (and
//!    therefore a shard's) output is a pure function of its inputs,
//!    independent of scheduling. The key mixers live in [`rng`].
//! 2. **Unit isolation.** Units share only immutable inputs. Nothing a
//!    unit computes feeds another unit. Shards additionally cover
//!    *contiguous, disjoint* element ranges of their unit.
//! 3. **Ordered merge.** Both entry points return results positionally
//!    — [`map_slice`] in item order, [`map_units`] grouped per unit
//!    with shards in ascending element order — so concatenating
//!    partials reproduces the sequential loop's output exactly.
//!
//! Engine-level stochastic decisions (none exist today; e.g. a future
//! per-unit retry jitter) must derive their stream from [`state_seed`],
//! never from a shared counter or thread id — that would re-introduce
//! schedule dependence and break property 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod rng;
pub mod steal;

pub use plan::{CostHint, Shard, ShardPolicy, UnitPlan};
pub use steal::{map_units_stealing, map_units_stealing_stats, StealStats};

use caf_geo::UsState;
use rng::{mix, mix_str};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// How the engine schedules independent work units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for work units. `1` runs the plain sequential
    /// loop on the caller's thread.
    pub workers: usize,
    /// When (and how finely) cost-hinted units are split into shards by
    /// [`EngineConfig::plan`]. Purely a wall-clock knob: results are
    /// byte-identical under every policy. Constructors resolve it from
    /// the `CAF_SHARD_THRESHOLD` environment variable (an integer
    /// percentage; `0` disables sharding), defaulting to
    /// [`ShardPolicy::default_policy`].
    pub shard: ShardPolicy,
}

impl EngineConfig {
    /// Sequential execution on the calling thread.
    pub fn serial() -> EngineConfig {
        EngineConfig {
            workers: 1,
            shard: ShardPolicy::resolve(),
        }
    }

    /// One worker per available core. The count is *not* capped here:
    /// the run-time clamp lives in [`EngineConfig::for_units`], which
    /// knows the actual number of work units (a fixed cap of 8 starved
    /// wide machines on large unit sets and oversubscribed small ones).
    pub fn auto() -> EngineConfig {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            shard: ShardPolicy::resolve(),
        }
    }

    /// A fixed worker count (clamped to at least 1).
    pub fn with_workers(workers: usize) -> EngineConfig {
        EngineConfig {
            workers: workers.max(1),
            shard: ShardPolicy::resolve(),
        }
    }

    /// Replaces the shard policy (the `repro --shard-threshold` flag
    /// and the bit-identity tests route through this).
    pub fn with_shard_policy(self, shard: ShardPolicy) -> EngineConfig {
        EngineConfig { shard, ..self }
    }

    /// Whether units run on a worker pool rather than inline.
    pub fn is_parallel(self) -> bool {
        self.workers > 1
    }

    /// Clamps the worker count to the number of work units actually
    /// being scheduled (at least 1) — workers beyond the unit count
    /// would only idle. Callers apply this once the unit set is known;
    /// the audit additionally reports both the configured and the
    /// effective count through the telemetry registry. Note the clamp
    /// is by *unit* count: shard-scheduling callers clamp by shard
    /// count instead via [`EngineConfig::for_plan`].
    pub fn for_units(self, units: usize) -> EngineConfig {
        EngineConfig {
            workers: self.workers.min(units.max(1)),
            ..self
        }
    }

    /// Builds a shard plan for cost-hinted units under this engine's
    /// worker budget and shard policy.
    pub fn plan(self, hints: &[CostHint]) -> UnitPlan {
        UnitPlan::build(self.workers, hints, self.shard)
    }

    /// Builds a [`UnitPlan`] covering only the given element runs of
    /// each unit (see [`UnitPlan::build_subset`]) — the incremental
    /// recompute path, where most elements are retained and only dirty
    /// runs re-execute.
    pub fn plan_subset(self, hints: &[CostHint], runs: &[Vec<std::ops::Range<usize>>]) -> UnitPlan {
        UnitPlan::build_subset(self.workers, hints, self.shard, runs)
    }

    /// Clamps the worker count to a plan's shard count — the sharded
    /// analogue of [`EngineConfig::for_units`].
    pub fn for_plan(self, plan: &UnitPlan) -> EngineConfig {
        self.for_units(plan.shard_count())
    }

    /// The worker budget for one of `ways` concurrent engine-driven
    /// computations sharing this configuration — the sizing rule for
    /// *persistent* pools (a serving layer keeps the process-wide
    /// budget fixed while N scenario computations run at once, so each
    /// gets `ceil(workers / ways)` instead of multiplying the machine
    /// by the in-flight count). Rounds up for the same reason as
    /// [`nested_campaign_workers`](EngineConfig::nested_campaign_workers):
    /// starving a computation to zero threads wastes wall-clock that
    /// the budget owner is already paying for. Like every worker knob,
    /// this only moves wall-clock time — results are byte-identical at
    /// any share.
    pub fn share(self, ways: usize) -> EngineConfig {
        EngineConfig {
            workers: self.workers.div_ceil(ways.max(1)).max(1),
            ..self
        }
    }

    /// The worker budget for a campaign nested *inside* a work unit:
    /// the configured count when the engine is serial, otherwise a
    /// split so `engine workers × campaign workers` stays near the
    /// configured total instead of multiplying. The split rounds *up* —
    /// rounding down starved the nested campaign to a single thread
    /// whenever the engine worker count slightly exceeded the
    /// configured budget (e.g. 4 configured across 3 engine workers
    /// gave each unit 1 campaign worker while engine threads
    /// idle-waited on I/O-shaped query latencies). Campaign results are
    /// worker-count independent, so this only shapes wall-clock time.
    pub fn nested_campaign_workers(self, configured: usize) -> usize {
        if self.is_parallel() {
            configured.div_ceil(self.workers).max(1)
        } else {
            configured.max(1)
        }
    }
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig::auto()
    }
}

/// Derives the seed of one state's work unit from the run seed — the
/// engine's `(config.seed, state)` keying, using the state's FIPS code
/// so the value is stable across enum reorderings.
///
/// Existing pipeline streams (sampling, queries) are *already* keyed by
/// entities that embed the state, so they do not reroute through this;
/// it exists for engine-level decisions (see the crate docs) and as the
/// label under which unit-scoped diagnostics are reported.
pub fn state_seed(seed: u64, state: UsState) -> u64 {
    mix(
        mix_str(seed, "engine-state"),
        u64::from(state.fips().code()),
    )
}

/// The shared executor behind [`map_slice`] and [`map_units`]: runs
/// task indices `0..n` (pulling from `dispatch` order when parallel)
/// and returns results **positionally** — slot `i` holds `run(i)`.
///
/// Parallel result placement goes through a single `(index, result)`
/// mpsc channel drained into positional slots after the scope joins
/// (one allocation and no per-slot locking, replacing the former
/// per-slot `Mutex<Option<R>>` grid). The serial path runs indices in
/// ascending order on the calling thread.
fn execute<R, F>(
    span_name: &'static str,
    wall_gauge: &'static str,
    workers: usize,
    dispatch: &[usize],
    n: usize,
    run: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    debug_assert_eq!(dispatch.len(), n);
    // Telemetry is observation-only: timings feed gauges and histograms,
    // never scheduling, so results stay byte-identical with it on or off.
    let telemetry = caf_obs::enabled();
    let _span = caf_obs::span(span_name);
    let wall_start = telemetry.then(Instant::now);
    let unit_ns: Vec<AtomicU64> = if telemetry {
        (0..n).map(|_| AtomicU64::new(0)).collect()
    } else {
        Vec::new()
    };
    let run_task = |i: usize| {
        let start = telemetry.then(Instant::now);
        let result = run(i);
        if let Some(start) = start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            unit_ns[i].store(nanos, Ordering::Relaxed);
            caf_obs::observe("caf.exec.unit_us", nanos / 1_000);
        }
        result
    };

    let results: Vec<R> = if workers <= 1 || n <= 1 {
        (0..n).map(run_task).collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let (sender, receiver) = std::sync::mpsc::channel::<(usize, R)>();
        // Trace-context handoff: if the dispatching thread is serving a
        // traced request, each pool worker re-enters the same context so
        // unit spans attach to the originating request. Observation-only
        // — the trace never influences dispatch order or results.
        let trace = caf_obs::trace::current();
        crossbeam::thread::scope(|scope| {
            for worker in 0..workers.min(n) {
                let sender = sender.clone();
                let run_task = &run_task;
                let cursor = &cursor;
                let trace = trace.clone();
                scope.spawn(move |_| {
                    let _trace = trace.as_ref().map(|ctx| ctx.enter());
                    let worker_start = telemetry.then(Instant::now);
                    let mut busy_ns: u64 = 0;
                    loop {
                        let pos = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = dispatch.get(pos) else {
                            break;
                        };
                        let task_start = telemetry.then(Instant::now);
                        let result = run_task(i);
                        if let Some(task_start) = task_start {
                            busy_ns = busy_ns.saturating_add(
                                u64::try_from(task_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                            );
                        }
                        sender
                            .send((i, result))
                            .expect("result receiver outlives the scope");
                    }
                    if let Some(worker_start) = worker_start {
                        let wall_ns =
                            u64::try_from(worker_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        caf_obs::gauge(
                            &format!("caf.exec.worker.{worker}.busy_us"),
                            busy_ns / 1_000,
                        );
                        caf_obs::gauge(
                            &format!("caf.exec.worker.{worker}.wall_us"),
                            wall_ns / 1_000,
                        );
                    }
                });
            }
        })
        .expect("engine worker panicked");
        drop(sender);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        // All workers have joined, so the channel holds exactly one
        // result per task and iteration ends at disconnect.
        for (i, result) in receiver {
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every task produces a result"))
            .collect()
    };

    if let Some(wall_start) = wall_start {
        let wall_ns = u64::try_from(wall_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        caf_obs::gauge(wall_gauge, wall_ns / 1_000);
        // Task skew: how much slower the slowest task ran than the
        // fastest, as a percentage of the slowest. High skew flags a
        // task that dominates the merge barrier; sharding exists to
        // push this down, so the same gauge doubles as the post-shard
        // skew once callers schedule through a plan.
        let slowest = unit_ns.iter().map(|d| d.load(Ordering::Relaxed)).max();
        let fastest = unit_ns.iter().map(|d| d.load(Ordering::Relaxed)).min();
        if let (Some(max), Some(min)) = (slowest, fastest) {
            let spread = u128::from(max.saturating_sub(min)) * 100;
            if let Some(skew) = spread.checked_div(u128::from(max)) {
                caf_obs::gauge("caf.exec.unit_skew_pct", skew as u64);
            }
        }
    }
    results
}

/// Applies `f` to every item on a pool of `workers` scoped threads and
/// returns the results **in item order** — the ordered-merge primitive
/// for roughly even work units.
///
/// With `workers <= 1` (or fewer than two items) this is a plain
/// sequential map on the calling thread. Otherwise workers pull item
/// indices from a shared atomic cursor, so scheduling is dynamic but the
/// result placement is positional and therefore deterministic. For
/// heavy-tailed unit costs, prefer [`map_units`] over a cost-hinted
/// [`UnitPlan`].
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn map_slice<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let dispatch: Vec<usize> = (0..items.len()).collect();
    execute(
        "engine.map_slice",
        "caf.exec.map_slice_wall_us",
        workers,
        &dispatch,
        items.len(),
        |i| f(i, &items[i]),
    )
}

/// Applies `f` to every [`Shard`] of a [`UnitPlan`] on a pool of scoped
/// threads and returns the results **grouped per unit**, shards in
/// ascending element order — the cost-aware scheduling primitive for
/// heavy-tailed unit distributions.
///
/// Shards are dispatched in the plan's precomputed LPT order through
/// the shared atomic cursor; reassembly is positional, so the returned
/// `Vec<Vec<R>>` is byte-for-byte the output of the sequential
/// unit-by-unit loop regardless of worker count or shard policy. The
/// caller concatenates each unit's shard results to reconstruct the
/// whole-unit value (`result[unit].len() == 1` whenever the unit was
/// not split).
///
/// Telemetry: `caf.exec.shards` and `caf.exec.plan.est_makespan_us`
/// gauges describe the plan; per-shard timings land in
/// `caf.exec.unit_us` and the post-shard skew in
/// `caf.exec.unit_skew_pct`.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn map_units<R, F>(plan: &UnitPlan, f: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(&Shard) -> R + Sync,
{
    if caf_obs::enabled() {
        caf_obs::gauge("caf.exec.shards", plan.shard_count() as u64);
        caf_obs::gauge("caf.exec.plan.est_makespan_us", plan.est_makespan());
    }
    let shards = plan.shards();
    let flat = execute(
        "engine.map_units",
        "caf.exec.map_units_wall_us",
        plan.workers(),
        plan.dispatch_order(),
        shards.len(),
        |i| f(&shards[i]),
    );
    let mut flat = flat.into_iter();
    plan.unit_ranges()
        .iter()
        .map(|range| flat.by_ref().take(range.len()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_slice_preserves_order_at_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for workers in [1, 2, 3, 8, 128] {
            let got = map_slice(workers, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(got, expected, "workers = {workers}");
        }
        let empty: Vec<u64> = Vec::new();
        assert!(map_slice(4, &empty, |_, &x: &u64| x).is_empty());
    }

    #[test]
    fn map_slice_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        map_slice(4, &items, |_, _| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected parallel execution"
        );
    }

    #[test]
    fn trace_context_propagates_to_pool_workers() {
        // A traced request dispatching into the pool hands its context
        // to every worker; spans they open then attach to the request.
        let id = caf_obs::TraceId::derive(0xCAF_2024, 42);
        let ctx = caf_obs::TraceCtx::new(id);
        let _guard = ctx.enter();
        let items: Vec<u32> = (0..64).collect();
        let seen = map_slice(4, &items, |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            caf_obs::trace::current().map(|c| c.id())
        });
        assert!(seen.iter().all(|got| *got == Some(id)));
    }

    #[test]
    fn map_units_reassembles_shards_positionally() {
        // Three units of different sizes; the middle one dominates.
        // Expected output: for each unit, its elements doubled — shard
        // boundaries must be invisible after reassembly.
        let units: Vec<Vec<u64>> = vec![
            (0..5).collect(),
            (100..180).collect(),
            (1_000..1_010).collect(),
        ];
        let hints: Vec<CostHint> = units
            .iter()
            .map(|u| CostHint::Uniform {
                cost: u.len() as u64,
                elements: u.len(),
            })
            .collect();
        let expected: Vec<Vec<u64>> = units
            .iter()
            .map(|u| u.iter().map(|&x| x * 2).collect())
            .collect();
        for workers in [1usize, 2, 4, 16] {
            for policy in [
                ShardPolicy::disabled(),
                ShardPolicy::default_policy(),
                ShardPolicy::finest(),
            ] {
                let plan = UnitPlan::build(workers, &hints, policy);
                let grouped = map_units(&plan, |shard| {
                    units[shard.unit][shard.range.clone()]
                        .iter()
                        .map(|&x| x * 2)
                        .collect::<Vec<u64>>()
                });
                assert_eq!(grouped.len(), units.len());
                let merged: Vec<Vec<u64>> = grouped
                    .into_iter()
                    .map(|shards| shards.into_iter().flatten().collect())
                    .collect();
                assert_eq!(merged, expected, "workers = {workers}, policy = {policy:?}");
            }
        }
    }

    #[test]
    fn map_units_shards_the_giant_unit() {
        let hints = vec![
            CostHint::Uniform {
                cost: 900,
                elements: 900,
            },
            CostHint::Uniform {
                cost: 30,
                elements: 30,
            },
        ];
        let plan = UnitPlan::build(4, &hints, ShardPolicy::default_policy());
        assert!(plan.is_sharded());
        let grouped = map_units(&plan, |shard| shard.range.len());
        assert!(grouped[0].len() > 1, "giant unit ran as multiple shards");
        assert_eq!(grouped[0].iter().sum::<usize>(), 900);
        assert_eq!(grouped[1].iter().sum::<usize>(), 30);
    }

    #[test]
    fn state_seed_is_stable_and_state_sensitive() {
        let a = state_seed(0xCAF_2024, UsState::Alabama);
        assert_eq!(a, state_seed(0xCAF_2024, UsState::Alabama));
        let mut seeds: Vec<u64> = UsState::study_states()
            .iter()
            .map(|&s| state_seed(0xCAF_2024, s))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), UsState::study_states().len(), "no collisions");
        assert_ne!(a, state_seed(0xCAF_2025, UsState::Alabama));
    }

    #[test]
    fn engine_config_constructors() {
        assert_eq!(EngineConfig::serial().workers, 1);
        assert!(!EngineConfig::serial().is_parallel());
        assert_eq!(EngineConfig::with_workers(0).workers, 1);
        assert_eq!(EngineConfig::with_workers(6).workers, 6);
        assert!(EngineConfig::with_workers(6).is_parallel());
        assert!(EngineConfig::auto().workers >= 1);
        assert_eq!(EngineConfig::default(), EngineConfig::auto());
        let custom = EngineConfig::serial().with_shard_policy(ShardPolicy::finest());
        assert_eq!(custom.shard, ShardPolicy::finest());
        assert_eq!(custom.workers, 1);
    }

    #[test]
    fn for_units_clamps_workers_to_the_unit_count() {
        assert_eq!(EngineConfig::with_workers(16).for_units(4).workers, 4);
        assert_eq!(EngineConfig::with_workers(2).for_units(15).workers, 2);
        assert_eq!(EngineConfig::with_workers(8).for_units(0).workers, 1);
        assert_eq!(EngineConfig::serial().for_units(100).workers, 1);
    }

    #[test]
    fn for_plan_clamps_workers_to_the_shard_count() {
        let hints = vec![CostHint::opaque(10), CostHint::opaque(10)];
        let plan = UnitPlan::build(16, &hints, ShardPolicy::disabled());
        assert_eq!(EngineConfig::with_workers(16).for_plan(&plan).workers, 2);
    }

    #[test]
    fn share_splits_a_persistent_pool_budget() {
        assert_eq!(EngineConfig::with_workers(8).share(1).workers, 8);
        assert_eq!(EngineConfig::with_workers(8).share(2).workers, 4);
        assert_eq!(EngineConfig::with_workers(8).share(3).workers, 3);
        assert_eq!(EngineConfig::with_workers(2).share(16).workers, 1);
        assert_eq!(EngineConfig::serial().share(0).workers, 1);
        // The shard policy rides along unchanged.
        let shared = EngineConfig::with_workers(8)
            .with_shard_policy(ShardPolicy::finest())
            .share(2);
        assert_eq!(shared.shard, ShardPolicy::finest());
    }

    #[test]
    fn nested_campaign_workers_split_the_budget() {
        assert_eq!(EngineConfig::serial().nested_campaign_workers(8), 8);
        assert_eq!(EngineConfig::with_workers(4).nested_campaign_workers(8), 2);
        assert_eq!(EngineConfig::with_workers(8).nested_campaign_workers(4), 1);
        assert_eq!(EngineConfig::serial().nested_campaign_workers(0), 1);
        // The split rounds up: 4 configured across 3 engine workers
        // keeps 2 campaign threads per unit instead of starving the
        // nested campaign down to 1 while engine workers idle-wait.
        assert_eq!(EngineConfig::with_workers(3).nested_campaign_workers(4), 2);
        assert_eq!(EngineConfig::with_workers(5).nested_campaign_workers(4), 1);
    }
}
