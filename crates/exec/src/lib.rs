//! # caf-exec — the deterministic parallel execution engine
//!
//! A scoped worker pool with a byte-identical-output determinism
//! contract, shared by every layer that fans independent work units out
//! across threads: per-state world generation (`caf-synth`), bootstrap
//! replicate chunks (`caf-stats`), and the per-state audit
//! (`caf-core::audit`). The crate sits *below* the synth and stats
//! layers in the dependency graph — only `caf-geo` (the leaf vocabulary
//! crate), `caf-obs` (the zero-dependency telemetry layer), and
//! `crossbeam` — which is exactly what lets the cold paths beneath
//! `caf-core` use the same pool the audit does. `caf_core::engine`
//! re-exports everything here, so audit-level callers are unaffected by
//! the extraction.
//!
//! # The determinism contract
//!
//! Parallelism may change wall-clock time only, never results. Three
//! properties uphold the contract, and the regression tests in
//! `crates/tests/tests/determinism.rs` and
//! `crates/tests/tests/parallel_cold_paths.rs` pin it end-to-end:
//!
//! 1. **Entity-keyed randomness.** Every stochastic decision inside a
//!    unit is keyed by the entity it concerns — sampling draws by
//!    `(seed, CBG, ISP)`, query outcomes by `(seed, address, ISP)`,
//!    bootstrap draws by `(seed, replicate index)` — so a unit's output
//!    is a pure function of its inputs, independent of scheduling. The
//!    key mixers live in [`rng`].
//! 2. **Unit isolation.** Units share only immutable inputs. Nothing a
//!    unit computes feeds another unit.
//! 3. **Ordered merge.** [`map_slice`] returns results positionally, so
//!    concatenating partials reproduces the sequential loop's output
//!    exactly.
//!
//! Engine-level stochastic decisions (none exist today; e.g. a future
//! per-unit retry jitter) must derive their stream from [`state_seed`],
//! never from a shared counter or thread id — that would re-introduce
//! schedule dependence and break property 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rng;

use caf_geo::UsState;
use rng::{mix, mix_str};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How the engine schedules independent work units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for work units. `1` runs the plain sequential
    /// loop on the caller's thread.
    pub workers: usize,
}

impl EngineConfig {
    /// Sequential execution on the calling thread.
    pub fn serial() -> EngineConfig {
        EngineConfig { workers: 1 }
    }

    /// One worker per available core. The count is *not* capped here:
    /// the run-time clamp lives in [`EngineConfig::for_units`], which
    /// knows the actual number of work units (a fixed cap of 8 starved
    /// wide machines on large unit sets and oversubscribed small ones).
    pub fn auto() -> EngineConfig {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }

    /// A fixed worker count (clamped to at least 1).
    pub fn with_workers(workers: usize) -> EngineConfig {
        EngineConfig {
            workers: workers.max(1),
        }
    }

    /// Whether units run on a worker pool rather than inline.
    pub fn is_parallel(self) -> bool {
        self.workers > 1
    }

    /// Clamps the worker count to the number of work units actually
    /// being scheduled (at least 1) — workers beyond the unit count
    /// would only idle. Callers apply this once the unit set is known;
    /// the audit additionally reports both the configured and the
    /// effective count through the telemetry registry.
    pub fn for_units(self, units: usize) -> EngineConfig {
        EngineConfig {
            workers: self.workers.min(units.max(1)),
        }
    }

    /// The worker budget for a campaign nested *inside* a work unit:
    /// the configured count when the engine is serial, otherwise an even
    /// split so `engine workers × campaign workers` stays near the
    /// configured total instead of multiplying. Campaign results are
    /// worker-count independent, so this only shapes wall-clock time.
    pub fn nested_campaign_workers(self, configured: usize) -> usize {
        if self.is_parallel() {
            (configured / self.workers).max(1)
        } else {
            configured.max(1)
        }
    }
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig::auto()
    }
}

/// Derives the seed of one state's work unit from the run seed — the
/// engine's `(config.seed, state)` keying, using the state's FIPS code
/// so the value is stable across enum reorderings.
///
/// Existing pipeline streams (sampling, queries) are *already* keyed by
/// entities that embed the state, so they do not reroute through this;
/// it exists for engine-level decisions (see the crate docs) and as the
/// label under which unit-scoped diagnostics are reported.
pub fn state_seed(seed: u64, state: UsState) -> u64 {
    mix(
        mix_str(seed, "engine-state"),
        u64::from(state.fips().code()),
    )
}

/// Applies `f` to every item on a pool of `workers` scoped threads and
/// returns the results **in item order** — the ordered-merge primitive
/// behind the audit engine, parallel world generation, and chunked
/// bootstrap resampling.
///
/// With `workers <= 1` (or fewer than two items) this is a plain
/// sequential map on the calling thread. Otherwise workers pull item
/// indices from a shared atomic cursor, so scheduling is dynamic but the
/// result placement is positional and therefore deterministic.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn map_slice<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    // Telemetry is observation-only: timings feed gauges and histograms,
    // never scheduling, so results stay byte-identical with it on or off.
    let telemetry = caf_obs::enabled();
    let _span = caf_obs::span("engine.map_slice");
    let wall_start = telemetry.then(Instant::now);
    let unit_ns: Vec<AtomicU64> = if telemetry {
        (0..items.len()).map(|_| AtomicU64::new(0)).collect()
    } else {
        Vec::new()
    };
    let run_unit = |i: usize, item: &T| {
        let start = telemetry.then(Instant::now);
        let result = f(i, item);
        if let Some(start) = start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            unit_ns[i].store(nanos, Ordering::Relaxed);
            caf_obs::observe("caf.exec.unit_us", nanos / 1_000);
        }
        result
    };

    let results = if workers <= 1 || items.len() <= 1 {
        items
            .iter()
            .enumerate()
            .map(|(i, item)| run_unit(i, item))
            .collect()
    } else {
        let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for worker in 0..workers.min(items.len()) {
                let run_unit = &run_unit;
                let slots = &slots;
                let cursor = &cursor;
                scope.spawn(move |_| {
                    let worker_start = telemetry.then(Instant::now);
                    let mut busy_ns: u64 = 0;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            break;
                        };
                        let unit_start = telemetry.then(Instant::now);
                        let result = run_unit(i, item);
                        if let Some(unit_start) = unit_start {
                            busy_ns = busy_ns.saturating_add(
                                u64::try_from(unit_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                            );
                        }
                        *slots[i].lock().expect("slot lock poisoned") = Some(result);
                    }
                    if let Some(worker_start) = worker_start {
                        let wall_ns =
                            u64::try_from(worker_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        caf_obs::gauge(
                            &format!("caf.exec.worker.{worker}.busy_us"),
                            busy_ns / 1_000,
                        );
                        caf_obs::gauge(
                            &format!("caf.exec.worker.{worker}.wall_us"),
                            wall_ns / 1_000,
                        );
                    }
                });
            }
        })
        .expect("engine worker panicked");
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("slot lock poisoned")
                    .expect("every item produces a result")
            })
            .collect()
    };

    if let Some(wall_start) = wall_start {
        let wall_ns = u64::try_from(wall_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        caf_obs::gauge("caf.exec.map_slice_wall_us", wall_ns / 1_000);
        // Unit skew: how much slower the slowest unit ran than the
        // fastest, as a percentage of the slowest. High skew flags a
        // unit that dominates the merge barrier.
        let slowest = unit_ns.iter().map(|d| d.load(Ordering::Relaxed)).max();
        let fastest = unit_ns.iter().map(|d| d.load(Ordering::Relaxed)).min();
        if let (Some(max), Some(min)) = (slowest, fastest) {
            let spread = u128::from(max.saturating_sub(min)) * 100;
            if let Some(skew) = spread.checked_div(u128::from(max)) {
                caf_obs::gauge("caf.exec.unit_skew_pct", skew as u64);
            }
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_slice_preserves_order_at_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for workers in [1, 2, 3, 8, 128] {
            let got = map_slice(workers, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(got, expected, "workers = {workers}");
        }
        let empty: Vec<u64> = Vec::new();
        assert!(map_slice(4, &empty, |_, &x: &u64| x).is_empty());
    }

    #[test]
    fn map_slice_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let seen: StdMutex<HashSet<std::thread::ThreadId>> = StdMutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        map_slice(4, &items, |_, _| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(
            seen.lock().unwrap().len() > 1,
            "expected parallel execution"
        );
    }

    #[test]
    fn state_seed_is_stable_and_state_sensitive() {
        let a = state_seed(0xCAF_2024, UsState::Alabama);
        assert_eq!(a, state_seed(0xCAF_2024, UsState::Alabama));
        let mut seeds: Vec<u64> = UsState::study_states()
            .iter()
            .map(|&s| state_seed(0xCAF_2024, s))
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), UsState::study_states().len(), "no collisions");
        assert_ne!(a, state_seed(0xCAF_2025, UsState::Alabama));
    }

    #[test]
    fn engine_config_constructors() {
        assert_eq!(EngineConfig::serial().workers, 1);
        assert!(!EngineConfig::serial().is_parallel());
        assert_eq!(EngineConfig::with_workers(0).workers, 1);
        assert_eq!(EngineConfig::with_workers(6).workers, 6);
        assert!(EngineConfig::with_workers(6).is_parallel());
        assert!(EngineConfig::auto().workers >= 1);
        assert_eq!(EngineConfig::default(), EngineConfig::auto());
    }

    #[test]
    fn for_units_clamps_workers_to_the_unit_count() {
        assert_eq!(EngineConfig::with_workers(16).for_units(4).workers, 4);
        assert_eq!(EngineConfig::with_workers(2).for_units(15).workers, 2);
        assert_eq!(EngineConfig::with_workers(8).for_units(0).workers, 1);
        assert_eq!(EngineConfig::serial().for_units(100).workers, 1);
    }

    #[test]
    fn nested_campaign_workers_split_the_budget() {
        assert_eq!(EngineConfig::serial().nested_campaign_workers(8), 8);
        assert_eq!(EngineConfig::with_workers(4).nested_campaign_workers(8), 2);
        assert_eq!(EngineConfig::with_workers(8).nested_campaign_workers(4), 1);
        assert_eq!(EngineConfig::serial().nested_campaign_workers(0), 1);
    }
}
