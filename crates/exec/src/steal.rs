//! Deque-based work stealing over a [`UnitPlan`] — the latency-aware
//! scheduling mode behind [`map_units_stealing`].
//!
//! The static executor ([`map_units`](crate::map_units)) dispatches
//! shards through one shared atomic cursor in LPT order. That is ideal
//! when cost hints are accurate; when they are not — BQT campaign tasks
//! have lognormal per-attempt latency with heavy per-ISP tails — a
//! worker can finish its share of the estimated cost early and sit idle
//! at the merge barrier while another drags a mis-estimated queue.
//!
//! Work stealing closes that gap without giving up the plan:
//!
//! 1. [`seed_lanes`] deals the plan's shards into one local deque per
//!    worker by replaying the *same* greedy LPT least-loaded-lane
//!    assignment the plan's makespan estimate simulates — so the
//!    starting schedule is exactly the one the planner predicted.
//! 2. Each worker pops work from the **front** of its own deque (LPT
//!    order within the lane: big shards first).
//! 3. An idle worker steals from the **tail** of the most-loaded other
//!    queue (largest estimated remaining cost, ties to the lowest lane
//!    index) — the victim's cheapest queued shard, which keeps the
//!    owner's expensive front work undisturbed.
//!
//! # Determinism
//!
//! The steal schedule is timing-dependent and therefore *not*
//! reproducible — but it only decides *where* a shard runs, never what
//! it computes or where its result lands. Shards are pure functions of
//! their `(unit, range)` inputs (the engine's unit-isolation property),
//! and results travel through the same `(shard index, result)` channel
//! as the static path into positional slots, grouped per unit in
//! ascending element order. Output is therefore byte-identical to
//! [`map_units`](crate::map_units) — and to the serial loop — at every
//! worker count and under every steal interleaving. The matrix in
//! `crates/tests/tests/campaign_scheduler.rs` pins this end-to-end.
//!
//! Steal activity is surfaced as telemetry only: the
//! `caf.exec.steals` counter and the per-run [`StealStats`].

use crate::plan::{Shard, UnitPlan};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One worker's local queue: shard indices in lane-LPT order plus the
/// estimated cost still enqueued (the victim-selection signal; it lags
/// the queue by design and only shapes wall-clock time).
struct Lane {
    queue: Mutex<VecDeque<usize>>,
    remaining: AtomicU64,
}

impl Lane {
    fn new(queue: VecDeque<usize>, shards: &[Shard]) -> Lane {
        let remaining = queue
            .iter()
            .fold(0u64, |acc, &i| acc.saturating_add(shards[i].est_cost));
        Lane {
            queue: Mutex::new(queue),
            remaining: AtomicU64::new(remaining),
        }
    }

    /// Owner pop: front of the deque (the lane's biggest queued shard).
    fn pop_own(&self, shards: &[Shard]) -> Option<usize> {
        let popped = self.queue.lock().expect("lane lock").pop_front();
        if let Some(i) = popped {
            self.debit(shards[i].est_cost);
        }
        popped
    }

    /// Thief pop: tail of the deque (the lane's cheapest queued shard).
    fn pop_stolen(&self, shards: &[Shard]) -> Option<usize> {
        let popped = self.queue.lock().expect("lane lock").pop_back();
        if let Some(i) = popped {
            self.debit(shards[i].est_cost);
        }
        popped
    }

    fn debit(&self, cost: u64) {
        let mut current = self.remaining.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(cost);
            match self.remaining.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }
}

/// Scheduling telemetry from one [`map_units_stealing_stats`] run.
/// Timing-dependent by nature (see the module docs) — report it, never
/// branch on it in result-producing code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StealStats {
    /// Shards executed by a worker other than the lane they were dealt
    /// to.
    pub steals: u64,
    /// Shards executed per worker lane.
    pub executed: Vec<u64>,
}

/// Deals a plan's shards into per-worker deques by replaying the greedy
/// LPT least-loaded-lane assignment from the plan's makespan estimate:
/// walking the dispatch order (heaviest first), each shard lands at the
/// back of the currently least-loaded lane (ties to the lowest index).
/// A pure function of the plan, so the starting schedule is exactly the
/// one [`UnitPlan::est_makespan`] simulated.
pub fn seed_lanes(plan: &UnitPlan) -> Vec<VecDeque<usize>> {
    let shards = plan.shards();
    let lanes = plan.workers().min(shards.len()).max(1);
    let mut queues = vec![VecDeque::new(); lanes];
    let mut loads = vec![0u64; lanes];
    for &i in plan.dispatch_order() {
        let lane = (0..lanes).min_by_key(|&l| loads[l]).unwrap_or(0);
        loads[lane] = loads[lane].saturating_add(shards[i].est_cost);
        queues[lane].push_back(i);
    }
    queues
}

/// [`map_units`](crate::map_units) with work stealing: applies `f` to
/// every shard of the plan on per-worker deques seeded by
/// [`seed_lanes`], idle workers stealing from the tail of the
/// most-loaded queue. Results are returned **grouped per unit** with
/// shards in ascending element order — byte-identical to the static
/// path at any worker count and steal schedule.
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn map_units_stealing<R, F>(plan: &UnitPlan, f: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(&Shard) -> R + Sync,
{
    map_units_stealing_stats(plan, f).0
}

/// [`map_units_stealing`] returning the run's [`StealStats`] alongside
/// the results (bench harnesses read the steal counts; production
/// callers usually drop them and rely on the `caf.exec.steals`
/// counter).
pub fn map_units_stealing_stats<R, F>(plan: &UnitPlan, f: F) -> (Vec<Vec<R>>, StealStats)
where
    R: Send,
    F: Fn(&Shard) -> R + Sync,
{
    let telemetry = caf_obs::enabled();
    let _span = caf_obs::span("engine.map_units_steal");
    let wall_start = telemetry.then(Instant::now);
    if telemetry {
        caf_obs::gauge("caf.exec.shards", plan.shard_count() as u64);
        caf_obs::gauge("caf.exec.plan.est_makespan_us", plan.est_makespan());
    }
    let shards = plan.shards();
    let n = shards.len();

    let run_task = |i: usize| {
        let start = telemetry.then(Instant::now);
        let result = f(&shards[i]);
        if let Some(start) = start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            caf_obs::observe("caf.exec.unit_us", nanos / 1_000);
        }
        result
    };

    let lanes: Vec<Lane> = seed_lanes(plan)
        .into_iter()
        .map(|queue| Lane::new(queue, shards))
        .collect();

    let (flat, stats) = if lanes.len() <= 1 || n <= 1 {
        // Single lane: the serial loop in ascending shard order, exactly
        // like the static executor's serial path.
        let flat: Vec<R> = (0..n).map(run_task).collect();
        (
            flat,
            StealStats {
                steals: 0,
                executed: vec![n as u64],
            },
        )
    } else {
        let steals = AtomicU64::new(0);
        let executed: Vec<AtomicU64> = (0..lanes.len()).map(|_| AtomicU64::new(0)).collect();
        let (sender, receiver) = std::sync::mpsc::channel::<(usize, R)>();
        let trace = caf_obs::trace::current();
        crossbeam::thread::scope(|scope| {
            for worker in 0..lanes.len() {
                let sender = sender.clone();
                let run_task = &run_task;
                let lanes = &lanes;
                let steals = &steals;
                let executed = &executed;
                let trace = trace.clone();
                scope.spawn(move |_| {
                    let _trace = trace.as_ref().map(|ctx| ctx.enter());
                    loop {
                        // Own queue first; otherwise scan victims in
                        // descending estimated-remaining order (ties to
                        // the lowest lane index) and take their tail.
                        let next = lanes[worker].pop_own(shards).or_else(|| {
                            let mut victims: Vec<usize> =
                                (0..lanes.len()).filter(|&l| l != worker).collect();
                            victims.sort_by_key(|&l| {
                                (
                                    std::cmp::Reverse(lanes[l].remaining.load(Ordering::Relaxed)),
                                    l,
                                )
                            });
                            victims.into_iter().find_map(|l| {
                                let stolen = lanes[l].pop_stolen(shards);
                                if stolen.is_some() {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                }
                                stolen
                            })
                        });
                        // Every queue was empty under its lock and tasks
                        // are never re-enqueued, so the pool is drained.
                        let Some(i) = next else { break };
                        let result = run_task(i);
                        executed[worker].fetch_add(1, Ordering::Relaxed);
                        sender
                            .send((i, result))
                            .expect("result receiver outlives the scope");
                    }
                });
            }
        })
        .expect("steal worker panicked");
        drop(sender);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, result) in receiver {
            slots[i] = Some(result);
        }
        let flat = slots
            .into_iter()
            .map(|slot| slot.expect("every shard produces a result"))
            .collect();
        (
            flat,
            StealStats {
                steals: steals.into_inner(),
                executed: executed.into_iter().map(AtomicU64::into_inner).collect(),
            },
        )
    };

    if telemetry {
        caf_obs::count("caf.exec.steals", stats.steals);
        if let Some(start) = wall_start {
            let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            caf_obs::gauge("caf.exec.map_units_steal_wall_us", wall_ns / 1_000);
        }
    }

    let mut flat = flat.into_iter();
    let grouped = plan
        .unit_ranges()
        .iter()
        .map(|range| flat.by_ref().take(range.len()).collect())
        .collect();
    (grouped, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CostHint, ShardPolicy};
    use crate::{map_units, UnitPlan};

    fn hints() -> Vec<CostHint> {
        vec![
            CostHint::PerElement((0..40).map(|i| (i * 13 % 17) + 1).collect()),
            CostHint::Uniform {
                cost: 300,
                elements: 12,
            },
            CostHint::opaque(25),
        ]
    }

    #[test]
    fn seed_lanes_cover_every_shard_once_with_balanced_loads() {
        let plan = UnitPlan::build(3, &hints(), ShardPolicy::default_policy());
        let lanes = seed_lanes(&plan);
        assert_eq!(lanes.len(), 3.min(plan.shard_count()));
        let mut seen: Vec<usize> = lanes.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..plan.shard_count()).collect::<Vec<_>>());
        // The greedy deal reproduces the makespan simulation: the
        // heaviest lane's load is exactly the plan's estimate.
        let load =
            |lane: &VecDeque<usize>| lane.iter().map(|&i| plan.shards()[i].est_cost).sum::<u64>();
        let max_load = lanes.iter().map(load).max().unwrap();
        assert_eq!(max_load, plan.est_makespan());
    }

    #[test]
    fn stealing_output_matches_static_path_everywhere() {
        let hints = hints();
        let merged = |grouped: Vec<Vec<usize>>| -> Vec<usize> {
            grouped
                .into_iter()
                .map(|shards| shards.into_iter().sum())
                .collect()
        };
        let expected: Vec<usize> = merged({
            let plan = UnitPlan::build(1, &hints, ShardPolicy::disabled());
            map_units(&plan, |s| {
                s.range
                    .clone()
                    .map(|e| e * 31 + s.unit * 1_000)
                    .sum::<usize>()
            })
        });
        for workers in [1usize, 2, 3, 4, 16] {
            for policy in [
                ShardPolicy::disabled(),
                ShardPolicy::default_policy(),
                ShardPolicy::finest(),
            ] {
                let plan = UnitPlan::build(workers, &hints, policy);
                let static_path = merged(map_units(&plan, |s| {
                    s.range
                        .clone()
                        .map(|e| e * 31 + s.unit * 1_000)
                        .sum::<usize>()
                }));
                let (steal_path, stats) = map_units_stealing_stats(&plan, |s| {
                    s.range
                        .clone()
                        .map(|e| e * 31 + s.unit * 1_000)
                        .sum::<usize>()
                });
                assert_eq!(
                    merged(steal_path),
                    static_path,
                    "workers {workers} policy {policy:?}"
                );
                assert_eq!(static_path, expected);
                assert_eq!(
                    stats.executed.iter().sum::<u64>(),
                    plan.shard_count() as u64
                );
            }
        }
    }

    #[test]
    fn idle_worker_steals_from_the_loaded_lane() {
        // Four opaque shards, costs 100/99/98/1: the greedy deal puts
        // {100, 1} on lane 0 and {99, 98} on lane 1. Lane 0's front
        // shard sleeps long; lane 1 finishes its cheap pair and must
        // steal lane 0's queued tail shard well before the owner wakes.
        let hints = vec![
            CostHint::opaque(100),
            CostHint::opaque(99),
            CostHint::opaque(98),
            CostHint::opaque(1),
        ];
        let plan = UnitPlan::build(2, &hints, ShardPolicy::disabled());
        let lanes = seed_lanes(&plan);
        assert_eq!(Vec::from(lanes[0].clone()), vec![0, 3]);
        assert_eq!(Vec::from(lanes[1].clone()), vec![1, 2]);
        let (results, stats) = map_units_stealing_stats(&plan, |s| {
            let millis = if s.unit == 0 { 400 } else { 2 };
            std::thread::sleep(std::time::Duration::from_millis(millis));
            s.unit * 10
        });
        assert_eq!(results, vec![vec![0], vec![10], vec![20], vec![30]]);
        assert!(stats.steals >= 1, "lane 1 should have stolen shard 3");
        assert_eq!(stats.executed.iter().sum::<u64>(), 4);
    }
}
