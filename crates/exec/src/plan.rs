//! Cost-aware shard planning: the scheduling layer behind
//! [`map_units`](crate::map_units).
//!
//! The paper's Fig. 1 marginals give CAF deployments a heavy-tailed
//! state distribution, and per-state work units inherit it: one unit
//! (California) can cost ~15× the median, so whole-unit scheduling
//! leaves every other worker idling at the merge barrier while the
//! giant unit finishes (`BENCH_world.json` recorded a 0.62× "speedup"
//! at 4 workers). A [`UnitPlan`] breaks that barrier:
//!
//! 1. Callers describe each unit with a [`CostHint`] — a quantity they
//!    already know that is roughly proportional to the unit's runtime
//!    (certified-address counts for world generation, per-cell sample
//!    sizes for the audit, replicate counts for the bootstrap).
//! 2. [`UnitPlan::build`] deterministically splits any unit whose
//!    estimated cost exceeds [`ShardPolicy::threshold_pct`] percent of
//!    the ideal per-worker share (`total / workers`) into contiguous
//!    element-range [`Shard`]s of roughly that size.
//! 3. Shards are dispatched in precomputed longest-processing-time
//!    (LPT) order through the engine's atomic cursor, so the expensive
//!    shards start first and the small ones backfill the stragglers.
//! 4. Results are reassembled positionally (shards of a unit stay in
//!    ascending element order), so output is byte-identical with the
//!    whole-unit `map_slice` at every worker count and every policy —
//!    the plan is a pure function of `(workers, hints, policy)` and
//!    never consults the clock, thread ids, or element values.

use std::cmp::Reverse;
use std::ops::Range;

/// The split target: `threshold_pct`% of the ideal per-worker share.
/// Units (or dirty runs) at or below it stay whole; above it they split
/// into shards of roughly the target size.
fn split_target(total_cost: u128, workers: usize, policy: ShardPolicy) -> u128 {
    if policy.threshold_pct == 0 || total_cost == 0 {
        u128::MAX
    } else {
        (total_cost * u128::from(policy.threshold_pct) / (100 * workers as u128)).max(1)
    }
}

/// How many shards a unit (or run) of the given cost wants under the
/// split target, clamped by the policy's per-unit cap.
fn shard_count(cost: u128, target: u128, policy: ShardPolicy) -> usize {
    let want = if cost > target {
        usize::try_from(cost.div_ceil(target)).unwrap_or(usize::MAX)
    } else {
        1
    };
    want.clamp(1, policy.max_shards_per_unit.max(1))
}

/// Controls when (and how finely) a work unit is split into shards.
///
/// The split threshold is expressed as a percentage of the ideal
/// per-worker share of the total estimated cost: with `threshold_pct =
/// 25` and 4 workers, any unit costing more than 25% of `total / 4` is
/// split into shards of roughly that size. Lower thresholds shard more
/// aggressively; `0` disables sharding (whole units only, the pre-plan
/// behavior). Sharding never changes results — only the wall clock —
/// so the policy is a pure performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Split threshold as a percentage of the ideal per-worker cost
    /// share. `0` disables sharding.
    pub threshold_pct: u32,
    /// Upper bound on how many shards one unit may be split into
    /// (guards against pathological hint distributions producing
    /// thousands of micro-shards).
    pub max_shards_per_unit: usize,
}

impl ShardPolicy {
    /// The default policy: split units above 25% of the per-worker
    /// share, at most 64 shards per unit.
    pub fn default_policy() -> ShardPolicy {
        ShardPolicy {
            threshold_pct: 25,
            max_shards_per_unit: 64,
        }
    }

    /// Sharding disabled: every unit is a single shard (the pre-plan
    /// whole-unit scheduling).
    pub fn disabled() -> ShardPolicy {
        ShardPolicy {
            threshold_pct: 0,
            max_shards_per_unit: 1,
        }
    }

    /// The finest useful granularity: shard targets shrink to ~1% of
    /// the per-worker share with no per-unit shard cap, so per-element
    /// hints degenerate to (nearly) one element per shard. Used by the
    /// bit-identity tests to stress reassembly, not for production.
    pub fn finest() -> ShardPolicy {
        ShardPolicy {
            threshold_pct: 1,
            max_shards_per_unit: usize::MAX,
        }
    }

    /// Resolves the policy from an optional `CAF_SHARD_THRESHOLD`
    /// environment value (an integer percentage; `0` disables). Invalid
    /// or absent values fall back to [`ShardPolicy::default_policy`].
    /// Split out from the env read so it is unit-testable without
    /// mutating process state.
    pub fn from_env_value(value: Option<&str>) -> ShardPolicy {
        match value.and_then(|v| v.trim().parse::<u32>().ok()) {
            Some(0) => ShardPolicy::disabled(),
            Some(pct) => ShardPolicy {
                threshold_pct: pct,
                ..ShardPolicy::default_policy()
            },
            None => ShardPolicy::default_policy(),
        }
    }

    /// Reads `CAF_SHARD_THRESHOLD` from the environment (the `repro`
    /// `--shard-threshold` flag takes precedence over this at the CLI).
    pub fn resolve() -> ShardPolicy {
        ShardPolicy::from_env_value(std::env::var("CAF_SHARD_THRESHOLD").ok().as_deref())
    }
}

impl Default for ShardPolicy {
    fn default() -> ShardPolicy {
        ShardPolicy::default_policy()
    }
}

/// A caller-supplied estimate of one unit's cost, used only for
/// scheduling (shard boundaries and dispatch order) — never for
/// results. Hints need not be accurate; a hint that is merely
/// *proportional* to runtime is enough for LPT to help, and a wrong
/// hint only costs wall-clock time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostHint {
    /// A unit of `elements` equally-expensive elements costing `cost`
    /// in total. Splits into equal element ranges.
    Uniform {
        /// Total estimated cost of the unit (any consistent scale).
        cost: u64,
        /// How many splittable elements the unit contains.
        elements: usize,
    },
    /// Per-element costs; `len()` is the element count. Splits along
    /// balanced prefix sums so shard costs stay even when elements are
    /// themselves skewed.
    PerElement(Vec<u64>),
}

impl CostHint {
    /// A unit that cannot be split (one opaque element).
    pub fn opaque(cost: u64) -> CostHint {
        CostHint::Uniform { cost, elements: 1 }
    }

    /// Total estimated cost of the unit.
    pub fn total(&self) -> u64 {
        match self {
            CostHint::Uniform { cost, .. } => *cost,
            CostHint::PerElement(costs) => costs.iter().fold(0u64, |acc, &c| acc.saturating_add(c)),
        }
    }

    /// Number of splittable elements in the unit.
    pub fn elements(&self) -> usize {
        match self {
            CostHint::Uniform { elements, .. } => *elements,
            CostHint::PerElement(costs) => costs.len(),
        }
    }

    /// Splits the unit into `k` contiguous element ranges with roughly
    /// equal cost, returning `(range, est_cost)` pairs covering
    /// `0..elements` in order. `k` is clamped to `1..=elements`
    /// (a zero-element unit yields one empty shard so the unit keeps a
    /// positional slot in the reassembled output).
    fn split(&self, k: usize) -> Vec<(Range<usize>, u64)> {
        let n = self.elements();
        if n == 0 {
            return vec![(0..0, self.total())];
        }
        let k = k.clamp(1, n);
        match self {
            CostHint::Uniform { cost, elements } => {
                let base = elements / k;
                let extra = elements % k;
                let mut out = Vec::with_capacity(k);
                let mut start = 0usize;
                for shard in 0..k {
                    let len = base + usize::from(shard < extra);
                    let est = (u128::from(*cost) * len as u128 / *elements as u128) as u64;
                    out.push((start..start + len, est));
                    start += len;
                }
                out
            }
            CostHint::PerElement(costs) => {
                let mut prefix: Vec<u128> = Vec::with_capacity(n + 1);
                prefix.push(0);
                for &c in costs {
                    prefix.push(prefix.last().unwrap() + u128::from(c));
                }
                let total = *prefix.last().unwrap();
                let mut bounds = vec![0usize; k + 1];
                bounds[k] = n;
                for j in 1..k {
                    let target = total * j as u128 / k as u128;
                    let i = prefix.partition_point(|&p| p < target);
                    // Keep boundaries strictly increasing and leave room
                    // for the remaining shards, so every shard is
                    // non-empty.
                    bounds[j] = i.clamp(bounds[j - 1] + 1, n - (k - j));
                }
                (0..k)
                    .map(|j| {
                        let range = bounds[j]..bounds[j + 1];
                        let est = (prefix[range.end] - prefix[range.start]) as u64;
                        (range, est)
                    })
                    .collect()
            }
        }
    }
}

/// One schedulable slice of a unit: a contiguous element range plus the
/// planner's cost estimate for it. Unsharded units appear as a single
/// shard covering `0..elements`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shard {
    /// Index of the unit this shard belongs to (position in the hint
    /// slice the plan was built from).
    pub unit: usize,
    /// The contiguous element range of the unit this shard covers.
    pub range: Range<usize>,
    /// The planner's cost estimate for this range (scheduling only).
    pub est_cost: u64,
}

/// A deterministic shard schedule over a set of cost-hinted units —
/// built once, then executed by [`map_units`](crate::map_units).
///
/// Shards are stored unit-major (all shards of unit 0, then unit 1, …)
/// with ascending element ranges, which is also the reassembly order.
/// The dispatch order is a separate permutation (LPT: heaviest shard
/// first, ties broken by shard index) that workers pull through the
/// atomic cursor; it affects wall-clock time only.
#[derive(Debug, Clone)]
pub struct UnitPlan {
    workers: usize,
    shards: Vec<Shard>,
    /// Shard-index range per unit (into `shards`).
    unit_ranges: Vec<Range<usize>>,
    /// Shard indices in LPT dispatch order.
    dispatch: Vec<usize>,
    est_makespan: u64,
    total_cost: u64,
}

impl UnitPlan {
    /// Plans a shard schedule for `hints` across `workers` threads
    /// under `policy`. Pure function of its arguments: the same inputs
    /// always produce the same plan.
    pub fn build(workers: usize, hints: &[CostHint], policy: ShardPolicy) -> UnitPlan {
        let workers = workers.max(1);
        let total_cost: u128 = hints.iter().map(|h| u128::from(h.total())).sum();
        let target = split_target(total_cost, workers, policy);
        let mut shards = Vec::with_capacity(hints.len());
        let mut unit_ranges = Vec::with_capacity(hints.len());
        for (unit, hint) in hints.iter().enumerate() {
            let cost = u128::from(hint.total());
            let k = shard_count(cost, target, policy);
            let first = shards.len();
            for (range, est_cost) in hint.split(k) {
                shards.push(Shard {
                    unit,
                    range,
                    est_cost,
                });
            }
            unit_ranges.push(first..shards.len());
        }
        Self::assemble(workers, shards, unit_ranges, total_cost)
    }

    /// Plans a shard schedule covering only the given element `runs` of
    /// each unit — the incremental-recompute path, where a delta batch
    /// invalidates a sparse set of cells and everything else is
    /// retained. `runs[unit]` lists the unit's dirty element ranges
    /// (ascending, disjoint); a unit with no runs contributes no shards
    /// but keeps its positional slot, so
    /// [`map_units`](crate::map_units) returns an empty group for it.
    ///
    /// Shard ranges stay in the unit's *original* element coordinates,
    /// and big runs split exactly like whole units in
    /// [`UnitPlan::build`] — the split target is computed from the dirty
    /// cost only, so a large invalidation still fans out across the
    /// pool. Like `build`, a pure function of its arguments.
    pub fn build_subset(
        workers: usize,
        hints: &[CostHint],
        policy: ShardPolicy,
        runs: &[Vec<Range<usize>>],
    ) -> UnitPlan {
        assert_eq!(
            hints.len(),
            runs.len(),
            "one run list per hinted unit ({} hints, {} run lists)",
            hints.len(),
            runs.len()
        );
        let workers = workers.max(1);
        // Restrict a hint to one run, in run-local coordinates.
        let restrict = |hint: &CostHint, run: &Range<usize>| -> CostHint {
            match hint {
                CostHint::Uniform { cost, elements } => CostHint::Uniform {
                    cost: if *elements == 0 {
                        0
                    } else {
                        (u128::from(*cost) * run.len() as u128 / *elements as u128) as u64
                    },
                    elements: run.len(),
                },
                CostHint::PerElement(costs) => CostHint::PerElement(costs[run.clone()].to_vec()),
            }
        };
        let total_cost: u128 = hints
            .iter()
            .zip(runs)
            .flat_map(|(hint, unit_runs)| {
                unit_runs
                    .iter()
                    .map(|run| u128::from(restrict(hint, run).total()))
            })
            .sum();
        let target = split_target(total_cost, workers, policy);
        let mut shards = Vec::new();
        let mut unit_ranges = Vec::with_capacity(hints.len());
        for (unit, (hint, unit_runs)) in hints.iter().zip(runs).enumerate() {
            let first = shards.len();
            for run in unit_runs {
                debug_assert!(run.end <= hint.elements(), "run outside unit");
                let sub = restrict(hint, run);
                let k = shard_count(u128::from(sub.total()), target, policy);
                for (range, est_cost) in sub.split(k) {
                    shards.push(Shard {
                        unit,
                        range: run.start + range.start..run.start + range.end,
                        est_cost,
                    });
                }
            }
            unit_ranges.push(first..shards.len());
        }
        Self::assemble(workers, shards, unit_ranges, total_cost)
    }

    /// The shared plan tail: LPT dispatch order, greedy makespan
    /// estimate, construction.
    fn assemble(
        workers: usize,
        shards: Vec<Shard>,
        unit_ranges: Vec<Range<usize>>,
        total_cost: u128,
    ) -> UnitPlan {
        // LPT dispatch order: heaviest first, shard index breaks ties
        // (so uniform costs degrade to plain index order).
        let mut dispatch: Vec<usize> = (0..shards.len()).collect();
        dispatch.sort_by_key(|&i| (Reverse(shards[i].est_cost), i));

        // Estimated makespan: simulate greedy assignment of the LPT
        // sequence to the least-loaded worker. An estimate of the
        // post-shard critical path in cost-hint units.
        let lanes = workers.min(shards.len()).max(1);
        let mut loads = vec![0u64; lanes];
        for &i in &dispatch {
            let lane = (0..lanes).min_by_key(|&l| loads[l]).unwrap_or(0);
            loads[lane] = loads[lane].saturating_add(shards[i].est_cost);
        }
        let est_makespan = loads.into_iter().max().unwrap_or(0);

        UnitPlan {
            workers,
            shards,
            unit_ranges,
            dispatch,
            est_makespan,
            total_cost: u64::try_from(total_cost).unwrap_or(u64::MAX),
        }
    }

    /// The worker count the plan was built for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// All shards, unit-major with ascending element ranges (the
    /// reassembly order).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards in the plan.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of units the plan covers.
    pub fn unit_count(&self) -> usize {
        self.unit_ranges.len()
    }

    /// The shards of one unit, in ascending element order.
    pub fn unit_shards(&self, unit: usize) -> &[Shard] {
        &self.shards[self.unit_ranges[unit].clone()]
    }

    /// Shard-index ranges per unit (into [`UnitPlan::shards`]).
    pub fn unit_ranges(&self) -> &[Range<usize>] {
        &self.unit_ranges
    }

    /// Shard indices in LPT dispatch order.
    pub fn dispatch_order(&self) -> &[usize] {
        &self.dispatch
    }

    /// Greedy LPT makespan estimate, in the same units as the cost
    /// hints (reported as `caf.exec.plan.est_makespan_us` — literal
    /// microseconds only when callers hint with measured time).
    pub fn est_makespan(&self) -> u64 {
        self.est_makespan
    }

    /// Sum of all unit cost hints.
    pub fn total_cost(&self) -> u64 {
        self.total_cost
    }

    /// Whether any unit was actually split.
    pub fn is_sharded(&self) -> bool {
        self.shards.len() > self.unit_ranges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges(plan: &UnitPlan, unit: usize) -> Vec<Range<usize>> {
        plan.unit_shards(unit)
            .iter()
            .map(|s| s.range.clone())
            .collect()
    }

    #[test]
    fn disabled_policy_keeps_units_whole() {
        let hints = vec![
            CostHint::Uniform {
                cost: 1_000,
                elements: 50,
            },
            CostHint::opaque(10),
        ];
        let plan = UnitPlan::build(4, &hints, ShardPolicy::disabled());
        assert_eq!(plan.shard_count(), 2);
        assert!(!plan.is_sharded());
        assert_eq!(ranges(&plan, 0), vec![0..50]);
        assert_eq!(ranges(&plan, 1), vec![0..1]);
    }

    #[test]
    fn giant_unit_splits_and_small_units_stay_whole() {
        // One unit holds ~90% of the cost: with 4 workers and the
        // default 25% threshold it must split; the small ones must not.
        let hints = vec![
            CostHint::Uniform {
                cost: 900,
                elements: 90,
            },
            CostHint::Uniform {
                cost: 50,
                elements: 5,
            },
            CostHint::Uniform {
                cost: 50,
                elements: 5,
            },
        ];
        let plan = UnitPlan::build(4, &hints, ShardPolicy::default_policy());
        assert!(plan.unit_shards(0).len() > 1, "giant unit must shard");
        assert_eq!(plan.unit_shards(1).len(), 1);
        assert_eq!(plan.unit_shards(2).len(), 1);
        // Shards of the giant unit tile 0..90 contiguously in order.
        let r = ranges(&plan, 0);
        assert_eq!(r[0].start, 0);
        assert_eq!(r.last().unwrap().end, 90);
        for w in r.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Shards of a unit are disjoint from other units' slots only by
        // the unit index, which every shard carries.
        assert!(plan.shards().iter().all(|s| s.unit < 3));
    }

    #[test]
    fn per_element_split_balances_skewed_costs() {
        // 10 cheap elements then one huge one: balanced prefix-sum
        // splitting must isolate the huge element rather than cutting
        // at equal element counts.
        let mut costs = vec![1u64; 10];
        costs.push(1_000);
        let hints = vec![CostHint::PerElement(costs)];
        let plan = UnitPlan::build(
            2,
            &hints,
            ShardPolicy {
                threshold_pct: 50,
                max_shards_per_unit: 4,
            },
        );
        let shards = plan.unit_shards(0);
        assert!(shards.len() > 1);
        let last = shards.last().unwrap();
        assert_eq!(last.range, 10..11, "the huge element gets its own shard");
        // Ranges tile the unit.
        assert_eq!(shards[0].range.start, 0);
        assert_eq!(shards.last().unwrap().range.end, 11);
    }

    #[test]
    fn finest_policy_approaches_one_element_per_shard() {
        let hints = vec![CostHint::PerElement(vec![5; 16])];
        let plan = UnitPlan::build(4, &hints, ShardPolicy::finest());
        assert_eq!(plan.shard_count(), 16, "every element its own shard");
        for (i, s) in plan.unit_shards(0).iter().enumerate() {
            assert_eq!(s.range, i..i + 1);
            assert_eq!(s.est_cost, 5);
        }
    }

    #[test]
    fn dispatch_is_lpt_with_stable_ties() {
        let hints = vec![
            CostHint::opaque(10),
            CostHint::opaque(30),
            CostHint::opaque(10),
            CostHint::opaque(20),
        ];
        let plan = UnitPlan::build(2, &hints, ShardPolicy::disabled());
        assert_eq!(plan.dispatch_order(), &[1, 3, 0, 2]);
        // Uniform costs degrade to index order.
        let uniform = vec![CostHint::opaque(7); 4];
        let plan = UnitPlan::build(2, &uniform, ShardPolicy::disabled());
        assert_eq!(plan.dispatch_order(), &[0, 1, 2, 3]);
    }

    #[test]
    fn makespan_estimate_tracks_the_critical_path() {
        // Whole units at 2 workers: LPT packs {30} and {20, 10, 10}.
        let hints = vec![
            CostHint::opaque(10),
            CostHint::opaque(30),
            CostHint::opaque(10),
            CostHint::opaque(20),
        ];
        let whole = UnitPlan::build(2, &hints, ShardPolicy::disabled());
        assert_eq!(whole.total_cost(), 70);
        assert_eq!(whole.est_makespan(), 40);
        // Sharding the giant unit lowers the estimated makespan toward
        // the ideal total/workers = 35.
        let sharded = UnitPlan::build(
            2,
            &[
                CostHint::Uniform {
                    cost: 10,
                    elements: 2,
                },
                CostHint::Uniform {
                    cost: 30,
                    elements: 6,
                },
                CostHint::Uniform {
                    cost: 10,
                    elements: 2,
                },
                CostHint::Uniform {
                    cost: 20,
                    elements: 4,
                },
            ],
            ShardPolicy::default_policy(),
        );
        assert!(sharded.is_sharded());
        assert!(
            sharded.est_makespan() < whole.est_makespan(),
            "sharding must improve the estimated critical path: {} vs {}",
            sharded.est_makespan(),
            whole.est_makespan()
        );
    }

    #[test]
    fn zero_element_units_keep_their_positional_slot() {
        let hints = vec![
            CostHint::Uniform {
                cost: 0,
                elements: 0,
            },
            CostHint::opaque(5),
            CostHint::PerElement(Vec::new()),
        ];
        let plan = UnitPlan::build(4, &hints, ShardPolicy::default_policy());
        assert_eq!(plan.unit_count(), 3);
        assert_eq!(plan.shard_count(), 3);
        assert_eq!(ranges(&plan, 0), vec![0..0]);
        assert_eq!(ranges(&plan, 2), vec![0..0]);
    }

    #[test]
    fn plans_are_pure_functions_of_their_inputs() {
        let hints = vec![
            CostHint::PerElement((0..40).map(|i| (i * 13 % 17) + 1).collect()),
            CostHint::Uniform {
                cost: 300,
                elements: 12,
            },
        ];
        let a = UnitPlan::build(4, &hints, ShardPolicy::default_policy());
        let b = UnitPlan::build(4, &hints, ShardPolicy::default_policy());
        assert_eq!(a.shards(), b.shards());
        assert_eq!(a.dispatch_order(), b.dispatch_order());
        assert_eq!(a.est_makespan(), b.est_makespan());
    }

    #[test]
    fn subset_plans_cover_only_dirty_runs() {
        let hints = vec![
            CostHint::PerElement((1..=20).collect()),
            CostHint::PerElement(vec![3; 10]),
        ];
        let runs = vec![vec![2..5, 9..10], Vec::new()];
        let plan = UnitPlan::build_subset(4, &hints, ShardPolicy::disabled(), &runs);
        assert_eq!(plan.unit_count(), 2);
        assert_eq!(plan.shard_count(), 2, "disabled policy: one shard per run");
        assert!(
            plan.unit_shards(1).is_empty(),
            "clean units contribute no shards but keep their slot"
        );
        // Shards tile exactly the dirty runs, ascending, in unit
        // coordinates.
        let covered = ranges(&plan, 0);
        let mut elements: Vec<usize> = Vec::new();
        for r in &covered {
            elements.extend(r.clone());
        }
        assert_eq!(elements, vec![2, 3, 4, 9]);
        // Cost accounting covers only the dirty elements: (3+4+5) + 10.
        assert_eq!(plan.total_cost(), 22);

        // A big dirty run splits like a big unit would.
        let fine = UnitPlan::build_subset(2, &hints, ShardPolicy::finest(), &runs);
        assert!(fine.shard_count() > plan.shard_count());
        let mut fine_elements: Vec<usize> = Vec::new();
        for s in fine.unit_shards(0) {
            fine_elements.extend(s.range.clone());
        }
        assert_eq!(fine_elements, elements, "splitting never changes coverage");

        // Full-coverage runs reproduce the whole-unit plan exactly.
        let full_runs: Vec<Vec<Range<usize>>> = hints
            .iter()
            .map(|h| std::iter::once(0..h.elements()).collect())
            .collect();
        let via_subset =
            UnitPlan::build_subset(4, &hints, ShardPolicy::default_policy(), &full_runs);
        let via_build = UnitPlan::build(4, &hints, ShardPolicy::default_policy());
        assert_eq!(via_subset.shards(), via_build.shards());
        assert_eq!(via_subset.dispatch_order(), via_build.dispatch_order());
    }

    #[test]
    fn policy_env_value_parsing() {
        assert_eq!(
            ShardPolicy::from_env_value(None),
            ShardPolicy::default_policy()
        );
        assert_eq!(
            ShardPolicy::from_env_value(Some("0")),
            ShardPolicy::disabled()
        );
        assert_eq!(ShardPolicy::from_env_value(Some("40")).threshold_pct, 40);
        assert_eq!(
            ShardPolicy::from_env_value(Some("not-a-number")),
            ShardPolicy::default_policy()
        );
    }
}
