//! Population-density grids and rural/urban classification.
//!
//! Figure 3 of the paper correlates AT&T's CBG-level serviceability rates
//! with population density (people per square mile), and Figure 10 maps
//! serviceability geospatially. Both need a way to go from scattered
//! (coordinate, population) observations to per-cell densities. The Census
//! Bureau's urban-area criteria motivate the [`DensityClass`] thresholds.

use crate::coord::{BoundingBox, LatLon};
use crate::error::GeoError;

/// Census-style density classification of an area, in people per square
/// mile.
///
/// The thresholds follow the Census Bureau's 2020 urban-area criteria in
/// spirit: initial urban cores require ≈1 000 people/sq mi and qualifying
/// territory ≈500. The paper observes that 96.7 % of CAF census blocks are
/// rural (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DensityClass {
    /// Fewer than 50 people per square mile: sparse, high-cost territory —
    /// CAF's nominal target.
    Remote,
    /// 50–500 people per square mile.
    Rural,
    /// 500–1 000 people per square mile: exurban fringe.
    Suburban,
    /// Over 1 000 people per square mile.
    Urban,
}

impl DensityClass {
    /// Classifies a density in people per square mile.
    pub fn from_density(people_per_sq_mile: f64) -> DensityClass {
        if people_per_sq_mile < 50.0 {
            DensityClass::Remote
        } else if people_per_sq_mile < 500.0 {
            DensityClass::Rural
        } else if people_per_sq_mile < 1_000.0 {
            DensityClass::Suburban
        } else {
            DensityClass::Urban
        }
    }

    /// Whether the Census Bureau would call this territory rural.
    pub fn is_rural(self) -> bool {
        matches!(self, DensityClass::Remote | DensityClass::Rural)
    }
}

/// A raster of population counts over a bounding box, from which per-cell
/// and per-point densities are derived.
#[derive(Debug, Clone)]
pub struct DensityGrid {
    bbox: BoundingBox,
    rows: usize,
    cols: usize,
    population: Vec<f64>,
}

impl DensityGrid {
    /// Creates an empty grid over `bbox` with the given resolution.
    pub fn new(bbox: BoundingBox, rows: usize, cols: usize) -> Result<Self, GeoError> {
        if rows == 0 || cols == 0 {
            return Err(GeoError::EmptyGrid);
        }
        Ok(DensityGrid {
            bbox,
            rows,
            cols,
            population: vec![0.0; rows * cols],
        })
    }

    /// Grid dimensions as (rows, cols).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The bounding box the grid covers.
    pub fn bbox(&self) -> BoundingBox {
        self.bbox
    }

    /// Adds `people` at `location`. Points outside the box are ignored and
    /// reported as `false`.
    pub fn deposit(&mut self, location: LatLon, people: f64) -> bool {
        match self.bbox.locate(self.rows, self.cols, location) {
            Some((r, c)) => {
                self.population[r * self.cols + c] += people;
                true
            }
            None => false,
        }
    }

    /// Total population deposited.
    pub fn total_population(&self) -> f64 {
        self.population.iter().sum()
    }

    /// Population of the cell at (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn cell_population(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "cell index out of range"
        );
        self.population[row * self.cols + col]
    }

    /// Density of the cell at (`row`, `col`), in people per square mile.
    pub fn cell_density(&self, row: usize, col: usize) -> f64 {
        let area = self
            .bbox
            .cell(self.rows, self.cols, row, col)
            .area_sq_miles();
        if area <= 0.0 {
            0.0
        } else {
            self.cell_population(row, col) / area
        }
    }

    /// Density of the cell containing `p`, or `None` if `p` is outside the
    /// grid.
    pub fn density_at(&self, p: LatLon) -> Option<f64> {
        let (r, c) = self.bbox.locate(self.rows, self.cols, p)?;
        Some(self.cell_density(r, c))
    }

    /// Density class of the cell containing `p`.
    pub fn class_at(&self, p: LatLon) -> Option<DensityClass> {
        self.density_at(p).map(DensityClass::from_density)
    }

    /// Iterates over `(row, col, density)` for every cell.
    pub fn iter_densities(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows)
            .flat_map(move |r| (0..self.cols).map(move |c| (r, c, self.cell_density(r, c))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> DensityGrid {
        let bbox = BoundingBox::from_degrees(30.0, -120.0, 40.0, -110.0).unwrap();
        DensityGrid::new(bbox, 10, 10).unwrap()
    }

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(DensityClass::from_density(0.0), DensityClass::Remote);
        assert_eq!(DensityClass::from_density(49.9), DensityClass::Remote);
        assert_eq!(DensityClass::from_density(50.0), DensityClass::Rural);
        assert_eq!(DensityClass::from_density(499.9), DensityClass::Rural);
        assert_eq!(DensityClass::from_density(500.0), DensityClass::Suburban);
        assert_eq!(DensityClass::from_density(1_000.0), DensityClass::Urban);
        assert!(DensityClass::Remote.is_rural());
        assert!(DensityClass::Rural.is_rural());
        assert!(!DensityClass::Suburban.is_rural());
        assert!(!DensityClass::Urban.is_rural());
    }

    #[test]
    fn deposit_accumulates_in_the_right_cell() {
        let mut g = grid();
        assert!(g.deposit(p(30.5, -119.5), 100.0));
        assert!(g.deposit(p(30.5, -119.5), 50.0));
        assert_eq!(g.cell_population(0, 0), 150.0);
        assert_eq!(g.total_population(), 150.0);
        // Outside the box: rejected, not silently clamped.
        assert!(!g.deposit(p(29.0, -119.5), 10.0));
        assert_eq!(g.total_population(), 150.0);
    }

    #[test]
    fn density_at_reflects_cell_area() {
        let mut g = grid();
        g.deposit(p(30.5, -119.5), 10_000.0);
        let d = g.density_at(p(30.5, -119.5)).unwrap();
        // One 1°×1° cell near 30°N is ≈4 100 sq mi, so expect ~2.4 people/sq mi.
        assert!((1.0..5.0).contains(&d), "got {d}");
        assert_eq!(g.density_at(p(45.0, -115.0)), None);
    }

    #[test]
    fn rejects_empty_grid() {
        let bbox = BoundingBox::from_degrees(30.0, -120.0, 40.0, -110.0).unwrap();
        assert!(DensityGrid::new(bbox, 0, 10).is_err());
        assert!(DensityGrid::new(bbox, 10, 0).is_err());
    }

    #[test]
    fn iter_densities_covers_all_cells() {
        let g = grid();
        assert_eq!(g.iter_densities().count(), 100);
    }
}
