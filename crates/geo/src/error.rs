//! Error type shared by the geography substrate.

use std::fmt;

/// Errors produced while constructing or parsing geographic entities.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A FIPS state code outside the `1..=78` range assigned by the Census
    /// Bureau (56 is Wyoming; 60+ are territories).
    InvalidStateFips(u16),
    /// A county code outside `1..=999`.
    InvalidCounty(u16),
    /// A tract code outside `1..=999_999`.
    InvalidTract(u32),
    /// A block-group digit outside `0..=9`.
    InvalidBlockGroup(u8),
    /// A block suffix outside `0..=999` (the final three GEOID digits; the
    /// leading fourth digit is the block-group digit).
    InvalidBlockSuffix(u16),
    /// A GEOID string of the wrong length or with non-digit characters.
    MalformedGeoid {
        /// The offending input, truncated for display.
        input: String,
        /// The number of digits the caller expected.
        expected_len: usize,
    },
    /// A latitude outside `[-90, +90]` degrees.
    InvalidLatitude(f64),
    /// A longitude outside `[-180, +180]` degrees.
    InvalidLongitude(f64),
    /// A bounding box whose minimum corner exceeds its maximum corner.
    EmptyBoundingBox,
    /// A density grid with zero rows or columns.
    EmptyGrid,
    /// An unknown state abbreviation (e.g. `"ZZ"`).
    UnknownStateAbbrev(String),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::InvalidStateFips(v) => write!(f, "invalid state FIPS code {v}"),
            GeoError::InvalidCounty(v) => write!(f, "invalid county code {v}"),
            GeoError::InvalidTract(v) => write!(f, "invalid tract code {v}"),
            GeoError::InvalidBlockGroup(v) => write!(f, "invalid block-group digit {v}"),
            GeoError::InvalidBlockSuffix(v) => write!(f, "invalid block suffix {v}"),
            GeoError::MalformedGeoid {
                input,
                expected_len,
            } => write!(
                f,
                "malformed GEOID {input:?}: expected {expected_len} decimal digits"
            ),
            GeoError::InvalidLatitude(v) => write!(f, "latitude {v} outside [-90, 90]"),
            GeoError::InvalidLongitude(v) => write!(f, "longitude {v} outside [-180, 180]"),
            GeoError::EmptyBoundingBox => write!(f, "bounding box has min corner > max corner"),
            GeoError::EmptyGrid => write!(f, "density grid must have at least one cell"),
            GeoError::UnknownStateAbbrev(s) => write!(f, "unknown state abbreviation {s:?}"),
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = GeoError::InvalidStateFips(99);
        assert_eq!(e.to_string(), "invalid state FIPS code 99");
        let e = GeoError::MalformedGeoid {
            input: "12ab".to_string(),
            expected_len: 15,
        };
        assert!(e.to_string().contains("15 decimal digits"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<GeoError>();
    }
}
