//! Geodetic coordinates and great-circle geometry.
//!
//! The serviceability maps (Figure 10) and the density/serviceability
//! correlation (Figure 3) need only light-weight spherical geometry:
//! validated latitude/longitude pairs, haversine distances, and axis-aligned
//! bounding boxes that can be subdivided into grids.

use crate::error::GeoError;
use std::fmt;

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6_371.008_8;

/// Kilometres per statute mile.
pub const KM_PER_MILE: f64 = 1.609_344;

/// A validated WGS-84 latitude/longitude pair, in degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatLon {
    lat_deg: f64,
    lon_deg: f64,
}

impl LatLon {
    /// Creates a coordinate, rejecting out-of-range or non-finite values.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Result<Self, GeoError> {
        if !lat_deg.is_finite() || !(-90.0..=90.0).contains(&lat_deg) {
            return Err(GeoError::InvalidLatitude(lat_deg));
        }
        if !lon_deg.is_finite() || !(-180.0..=180.0).contains(&lon_deg) {
            return Err(GeoError::InvalidLongitude(lon_deg));
        }
        Ok(LatLon { lat_deg, lon_deg })
    }

    /// Latitude in degrees north.
    pub fn lat(self) -> f64 {
        self.lat_deg
    }

    /// Longitude in degrees east.
    pub fn lon(self) -> f64 {
        self.lon_deg
    }

    /// Great-circle distance to `other` in kilometres.
    pub fn distance_km(self, other: LatLon) -> f64 {
        haversine_km(self, other)
    }
}

impl fmt::Display for LatLon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6})", self.lat_deg, self.lon_deg)
    }
}

/// Great-circle distance between two coordinates, in kilometres, by the
/// haversine formula (adequate at census-block scales; error < 0.5 %).
pub fn haversine_km(a: LatLon, b: LatLon) -> f64 {
    let (lat1, lon1) = (a.lat_deg.to_radians(), a.lon_deg.to_radians());
    let (lat2, lon2) = (b.lat_deg.to_radians(), b.lon_deg.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// Great-circle distance in statute miles (population density in the paper
/// is reported per square mile).
pub fn haversine_miles(a: LatLon, b: LatLon) -> f64 {
    haversine_km(a, b) / KM_PER_MILE
}

/// An axis-aligned latitude/longitude bounding box.
///
/// Longitude wrap-around is not supported: every state in the study lies
/// comfortably within the western hemisphere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    min: LatLon,
    max: LatLon,
}

impl BoundingBox {
    /// Creates a box from its south-west and north-east corners.
    pub fn new(min: LatLon, max: LatLon) -> Result<Self, GeoError> {
        if min.lat() > max.lat() || min.lon() > max.lon() {
            return Err(GeoError::EmptyBoundingBox);
        }
        Ok(BoundingBox { min, max })
    }

    /// Convenience constructor from raw degrees.
    pub fn from_degrees(
        min_lat: f64,
        min_lon: f64,
        max_lat: f64,
        max_lon: f64,
    ) -> Result<Self, GeoError> {
        BoundingBox::new(
            LatLon::new(min_lat, min_lon)?,
            LatLon::new(max_lat, max_lon)?,
        )
    }

    /// South-west corner.
    pub fn min(self) -> LatLon {
        self.min
    }

    /// North-east corner.
    pub fn max(self) -> LatLon {
        self.max
    }

    /// Whether `p` lies inside the box (inclusive on all edges).
    pub fn contains(self, p: LatLon) -> bool {
        (self.min.lat()..=self.max.lat()).contains(&p.lat())
            && (self.min.lon()..=self.max.lon()).contains(&p.lon())
    }

    /// The box centre.
    pub fn center(self) -> LatLon {
        LatLon::new(
            (self.min.lat() + self.max.lat()) / 2.0,
            (self.min.lon() + self.max.lon()) / 2.0,
        )
        .expect("midpoint of valid corners is valid")
    }

    /// Latitude extent in degrees.
    pub fn lat_span(self) -> f64 {
        self.max.lat() - self.min.lat()
    }

    /// Longitude extent in degrees.
    pub fn lon_span(self) -> f64 {
        self.max.lon() - self.min.lon()
    }

    /// Approximate area in square miles, treating the box as a spherical
    /// rectangle (sufficient for density classification).
    pub fn area_sq_miles(self) -> f64 {
        let mid_lat = self.center().lat().to_radians();
        let km_per_deg_lat = EARTH_RADIUS_KM * std::f64::consts::PI / 180.0;
        let km_per_deg_lon = km_per_deg_lat * mid_lat.cos();
        let h_km = self.lat_span() * km_per_deg_lat;
        let w_km = self.lon_span() * km_per_deg_lon;
        (h_km / KM_PER_MILE) * (w_km / KM_PER_MILE)
    }

    /// Returns the sub-box at grid position (`row`, `col`) of an `rows`×`cols`
    /// subdivision. Rows count northward from the southern edge.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero or the indices are out of range.
    pub fn cell(self, rows: usize, cols: usize, row: usize, col: usize) -> BoundingBox {
        assert!(rows > 0 && cols > 0, "grid must have at least one cell");
        assert!(row < rows && col < cols, "cell index out of range");
        let dlat = self.lat_span() / rows as f64;
        let dlon = self.lon_span() / cols as f64;
        let min = LatLon::new(
            self.min.lat() + dlat * row as f64,
            self.min.lon() + dlon * col as f64,
        )
        .expect("subdivided corner stays in range");
        let max = LatLon::new(min.lat() + dlat, min.lon() + dlon)
            .expect("subdivided corner stays in range");
        BoundingBox { min, max }
    }

    /// Grid coordinates of the cell containing `p`, for an `rows`×`cols`
    /// subdivision, or `None` if `p` is outside the box. Points on the
    /// northern/eastern edge map to the last row/column.
    pub fn locate(self, rows: usize, cols: usize, p: LatLon) -> Option<(usize, usize)> {
        if rows == 0 || cols == 0 || !self.contains(p) {
            return None;
        }
        let fr = (p.lat() - self.min.lat()) / self.lat_span().max(f64::MIN_POSITIVE);
        let fc = (p.lon() - self.min.lon()) / self.lon_span().max(f64::MIN_POSITIVE);
        let row = ((fr * rows as f64) as usize).min(rows - 1);
        let col = ((fc * cols as f64) as usize).min(cols - 1);
        Some((row, col))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> LatLon {
        LatLon::new(lat, lon).unwrap()
    }

    #[test]
    fn rejects_out_of_range_coordinates() {
        assert!(LatLon::new(90.1, 0.0).is_err());
        assert!(LatLon::new(-90.1, 0.0).is_err());
        assert!(LatLon::new(0.0, 180.1).is_err());
        assert!(LatLon::new(f64::NAN, 0.0).is_err());
        assert!(LatLon::new(0.0, f64::INFINITY).is_err());
        assert!(LatLon::new(90.0, -180.0).is_ok());
    }

    #[test]
    fn haversine_known_distance() {
        // Santa Barbara (34.42, -119.70) to Los Angeles (34.05, -118.24):
        // roughly 140 km.
        let sb = p(34.42, -119.70);
        let la = p(34.05, -118.24);
        let d = haversine_km(sb, la);
        assert!((135.0..145.0).contains(&d), "got {d}");
        // Symmetry and identity.
        assert!((haversine_km(la, sb) - d).abs() < 1e-9);
        assert_eq!(haversine_km(sb, sb), 0.0);
    }

    #[test]
    fn miles_conversion_consistent() {
        let a = p(40.0, -100.0);
        let b = p(41.0, -100.0);
        assert!((haversine_miles(a, b) * KM_PER_MILE - haversine_km(a, b)).abs() < 1e-9);
    }

    #[test]
    fn bounding_box_contains_and_center() {
        let bb = BoundingBox::from_degrees(30.0, -120.0, 40.0, -110.0).unwrap();
        assert!(bb.contains(p(35.0, -115.0)));
        assert!(bb.contains(p(30.0, -120.0))); // inclusive
        assert!(!bb.contains(p(29.9, -115.0)));
        assert_eq!(bb.center(), p(35.0, -115.0));
        assert!(BoundingBox::from_degrees(40.0, -110.0, 30.0, -120.0).is_err());
    }

    #[test]
    fn grid_cell_and_locate_are_inverse() {
        let bb = BoundingBox::from_degrees(30.0, -120.0, 40.0, -110.0).unwrap();
        let cell = bb.cell(10, 5, 3, 2);
        let center = cell.center();
        assert_eq!(bb.locate(10, 5, center), Some((3, 2)));
        // Edge points clamp into the last cell rather than falling out.
        assert_eq!(bb.locate(10, 5, p(40.0, -110.0)), Some((9, 4)));
        assert_eq!(bb.locate(10, 5, p(29.0, -115.0)), None);
    }

    #[test]
    fn area_of_one_degree_cell_is_plausible() {
        // Near 35°N a 1°×1° cell is roughly 69 mi × 56 mi ≈ 3 900 sq mi.
        let bb = BoundingBox::from_degrees(34.5, -115.5, 35.5, -114.5).unwrap();
        let area = bb.area_sq_miles();
        assert!((3_300.0..4_500.0).contains(&area), "got {area}");
    }
}
