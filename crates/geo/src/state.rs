//! US state registry.
//!
//! The study covers 15 states chosen for ISP dominance, geographic spread,
//! and population range (§3.1); the national CAF-Map context (Figure 1)
//! additionally involves the top-20 states by CAF address count. This
//! module enumerates the states the workspace touches together with the
//! static attributes the synthetic generators need: FIPS code, census
//! region, an approximate bounding box, population, and land area.
//!
//! Bounding boxes are approximate axis-aligned hulls — sufficient for
//! density grids and map rendering, not for point-in-polygon tests.

use crate::coord::BoundingBox;
use crate::error::GeoError;
use crate::ids::StateFips;
use std::fmt;

/// The four Census Bureau regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CensusRegion {
    /// Connecticut through Pennsylvania.
    Northeast,
    /// Ohio through the Dakotas and Kansas.
    Midwest,
    /// Delaware through Texas.
    South,
    /// Montana through California and the Pacific states.
    West,
}

impl fmt::Display for CensusRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CensusRegion::Northeast => "Northeast",
            CensusRegion::Midwest => "Midwest",
            CensusRegion::South => "South",
            CensusRegion::West => "West",
        };
        f.write_str(s)
    }
}

/// States known to the workspace: the 15 study states plus the remaining
/// top CAF states that appear in the national Figure 1 marginals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum UsState {
    Alabama,
    Arkansas,
    California,
    Colorado,
    Florida,
    Georgia,
    Illinois,
    Indiana,
    Iowa,
    Kansas,
    Kentucky,
    Louisiana,
    Michigan,
    Minnesota,
    Mississippi,
    Missouri,
    Nebraska,
    NewHampshire,
    NewJersey,
    NewMexico,
    NewYork,
    NorthCarolina,
    Ohio,
    Oklahoma,
    Pennsylvania,
    SouthCarolina,
    Tennessee,
    Texas,
    Utah,
    Vermont,
    Virginia,
    Washington,
    WestVirginia,
    Wisconsin,
}

/// Static attributes of a state.
#[derive(Debug, Clone, Copy)]
pub struct StateInfo {
    /// The state.
    pub state: UsState,
    /// Two-digit FIPS code.
    pub fips: u16,
    /// USPS abbreviation.
    pub abbrev: &'static str,
    /// Full name.
    pub name: &'static str,
    /// Census region.
    pub region: CensusRegion,
    /// Approximate 2020 population.
    pub population: u64,
    /// Approximate land area in square miles.
    pub land_area_sq_miles: f64,
    /// Approximate bounding box as (min_lat, min_lon, max_lat, max_lon).
    pub bbox_deg: (f64, f64, f64, f64),
}

/// One row per known state. Ordered by FIPS code.
const REGISTRY: &[StateInfo] = &[
    StateInfo {
        state: UsState::Alabama,
        fips: 1,
        abbrev: "AL",
        name: "Alabama",
        region: CensusRegion::South,
        population: 5_024_279,
        land_area_sq_miles: 50_645.0,
        bbox_deg: (30.2, -88.5, 35.0, -84.9),
    },
    StateInfo {
        state: UsState::Arkansas,
        fips: 5,
        abbrev: "AR",
        name: "Arkansas",
        region: CensusRegion::South,
        population: 3_011_524,
        land_area_sq_miles: 52_035.0,
        bbox_deg: (33.0, -94.6, 36.5, -89.6),
    },
    StateInfo {
        state: UsState::California,
        fips: 6,
        abbrev: "CA",
        name: "California",
        region: CensusRegion::West,
        population: 39_538_223,
        land_area_sq_miles: 155_779.0,
        bbox_deg: (32.5, -124.4, 42.0, -114.1),
    },
    StateInfo {
        state: UsState::Colorado,
        fips: 8,
        abbrev: "CO",
        name: "Colorado",
        region: CensusRegion::West,
        population: 5_773_714,
        land_area_sq_miles: 103_642.0,
        bbox_deg: (37.0, -109.1, 41.0, -102.0),
    },
    StateInfo {
        state: UsState::Florida,
        fips: 12,
        abbrev: "FL",
        name: "Florida",
        region: CensusRegion::South,
        population: 21_538_187,
        land_area_sq_miles: 53_625.0,
        bbox_deg: (24.5, -87.6, 31.0, -80.0),
    },
    StateInfo {
        state: UsState::Georgia,
        fips: 13,
        abbrev: "GA",
        name: "Georgia",
        region: CensusRegion::South,
        population: 10_711_908,
        land_area_sq_miles: 57_513.0,
        bbox_deg: (30.4, -85.6, 35.0, -80.8),
    },
    StateInfo {
        state: UsState::Illinois,
        fips: 17,
        abbrev: "IL",
        name: "Illinois",
        region: CensusRegion::Midwest,
        population: 12_812_508,
        land_area_sq_miles: 55_519.0,
        bbox_deg: (37.0, -91.5, 42.5, -87.0),
    },
    StateInfo {
        state: UsState::Indiana,
        fips: 18,
        abbrev: "IN",
        name: "Indiana",
        region: CensusRegion::Midwest,
        population: 6_785_528,
        land_area_sq_miles: 35_826.0,
        bbox_deg: (37.8, -88.1, 41.8, -84.8),
    },
    StateInfo {
        state: UsState::Iowa,
        fips: 19,
        abbrev: "IA",
        name: "Iowa",
        region: CensusRegion::Midwest,
        population: 3_190_369,
        land_area_sq_miles: 55_857.0,
        bbox_deg: (40.4, -96.6, 43.5, -90.1),
    },
    StateInfo {
        state: UsState::Kansas,
        fips: 20,
        abbrev: "KS",
        name: "Kansas",
        region: CensusRegion::Midwest,
        population: 2_937_880,
        land_area_sq_miles: 81_759.0,
        bbox_deg: (37.0, -102.1, 40.0, -94.6),
    },
    StateInfo {
        state: UsState::Kentucky,
        fips: 21,
        abbrev: "KY",
        name: "Kentucky",
        region: CensusRegion::South,
        population: 4_505_836,
        land_area_sq_miles: 39_486.0,
        bbox_deg: (36.5, -89.6, 39.1, -81.9),
    },
    StateInfo {
        state: UsState::Louisiana,
        fips: 22,
        abbrev: "LA",
        name: "Louisiana",
        region: CensusRegion::South,
        population: 4_657_757,
        land_area_sq_miles: 43_204.0,
        bbox_deg: (29.0, -94.0, 33.0, -89.0),
    },
    StateInfo {
        state: UsState::Michigan,
        fips: 26,
        abbrev: "MI",
        name: "Michigan",
        region: CensusRegion::Midwest,
        population: 10_077_331,
        land_area_sq_miles: 56_539.0,
        bbox_deg: (41.7, -90.4, 48.2, -82.4),
    },
    StateInfo {
        state: UsState::Minnesota,
        fips: 27,
        abbrev: "MN",
        name: "Minnesota",
        region: CensusRegion::Midwest,
        population: 5_706_494,
        land_area_sq_miles: 79_627.0,
        bbox_deg: (43.5, -97.2, 49.4, -89.5),
    },
    StateInfo {
        state: UsState::Mississippi,
        fips: 28,
        abbrev: "MS",
        name: "Mississippi",
        region: CensusRegion::South,
        population: 2_961_279,
        land_area_sq_miles: 46_923.0,
        bbox_deg: (30.2, -91.7, 35.0, -88.1),
    },
    StateInfo {
        state: UsState::Missouri,
        fips: 29,
        abbrev: "MO",
        name: "Missouri",
        region: CensusRegion::Midwest,
        population: 6_154_913,
        land_area_sq_miles: 68_742.0,
        bbox_deg: (36.0, -95.8, 40.6, -89.1),
    },
    StateInfo {
        state: UsState::Nebraska,
        fips: 31,
        abbrev: "NE",
        name: "Nebraska",
        region: CensusRegion::Midwest,
        population: 1_961_504,
        land_area_sq_miles: 76_824.0,
        bbox_deg: (40.0, -104.1, 43.0, -95.3),
    },
    StateInfo {
        state: UsState::NewHampshire,
        fips: 33,
        abbrev: "NH",
        name: "New Hampshire",
        region: CensusRegion::Northeast,
        population: 1_377_529,
        land_area_sq_miles: 8_953.0,
        bbox_deg: (42.7, -72.6, 45.3, -70.6),
    },
    StateInfo {
        state: UsState::NewJersey,
        fips: 34,
        abbrev: "NJ",
        name: "New Jersey",
        region: CensusRegion::Northeast,
        population: 9_288_994,
        land_area_sq_miles: 7_354.0,
        bbox_deg: (38.9, -75.6, 41.4, -73.9),
    },
    StateInfo {
        state: UsState::NewMexico,
        fips: 35,
        abbrev: "NM",
        name: "New Mexico",
        region: CensusRegion::West,
        population: 2_117_522,
        land_area_sq_miles: 121_298.0,
        bbox_deg: (31.3, -109.1, 37.0, -103.0),
    },
    StateInfo {
        state: UsState::NewYork,
        fips: 36,
        abbrev: "NY",
        name: "New York",
        region: CensusRegion::Northeast,
        population: 20_201_249,
        land_area_sq_miles: 47_126.0,
        bbox_deg: (40.5, -79.8, 45.0, -71.9),
    },
    StateInfo {
        state: UsState::NorthCarolina,
        fips: 37,
        abbrev: "NC",
        name: "North Carolina",
        region: CensusRegion::South,
        population: 10_439_388,
        land_area_sq_miles: 48_618.0,
        bbox_deg: (33.8, -84.3, 36.6, -75.5),
    },
    StateInfo {
        state: UsState::Ohio,
        fips: 39,
        abbrev: "OH",
        name: "Ohio",
        region: CensusRegion::Midwest,
        population: 11_799_448,
        land_area_sq_miles: 40_861.0,
        bbox_deg: (38.4, -84.8, 42.0, -80.5),
    },
    StateInfo {
        state: UsState::Oklahoma,
        fips: 40,
        abbrev: "OK",
        name: "Oklahoma",
        region: CensusRegion::South,
        population: 3_959_353,
        land_area_sq_miles: 68_595.0,
        bbox_deg: (33.6, -103.0, 37.0, -94.4),
    },
    StateInfo {
        state: UsState::Pennsylvania,
        fips: 42,
        abbrev: "PA",
        name: "Pennsylvania",
        region: CensusRegion::Northeast,
        population: 13_002_700,
        land_area_sq_miles: 44_743.0,
        bbox_deg: (39.7, -80.5, 42.3, -74.7),
    },
    StateInfo {
        state: UsState::SouthCarolina,
        fips: 45,
        abbrev: "SC",
        name: "South Carolina",
        region: CensusRegion::South,
        population: 5_118_425,
        land_area_sq_miles: 30_061.0,
        bbox_deg: (32.0, -83.4, 35.2, -78.5),
    },
    StateInfo {
        state: UsState::Tennessee,
        fips: 47,
        abbrev: "TN",
        name: "Tennessee",
        region: CensusRegion::South,
        population: 6_910_840,
        land_area_sq_miles: 41_235.0,
        bbox_deg: (35.0, -90.3, 36.7, -81.6),
    },
    StateInfo {
        state: UsState::Texas,
        fips: 48,
        abbrev: "TX",
        name: "Texas",
        region: CensusRegion::South,
        population: 29_145_505,
        land_area_sq_miles: 261_232.0,
        bbox_deg: (25.8, -106.6, 36.5, -93.5),
    },
    StateInfo {
        state: UsState::Utah,
        fips: 49,
        abbrev: "UT",
        name: "Utah",
        region: CensusRegion::West,
        population: 3_271_616,
        land_area_sq_miles: 82_170.0,
        bbox_deg: (37.0, -114.1, 42.0, -109.0),
    },
    StateInfo {
        state: UsState::Vermont,
        fips: 50,
        abbrev: "VT",
        name: "Vermont",
        region: CensusRegion::Northeast,
        population: 643_077,
        land_area_sq_miles: 9_217.0,
        bbox_deg: (42.7, -73.4, 45.0, -71.5),
    },
    StateInfo {
        state: UsState::Virginia,
        fips: 51,
        abbrev: "VA",
        name: "Virginia",
        region: CensusRegion::South,
        population: 8_631_393,
        land_area_sq_miles: 39_490.0,
        bbox_deg: (36.5, -83.7, 39.5, -75.2),
    },
    StateInfo {
        state: UsState::Washington,
        fips: 53,
        abbrev: "WA",
        name: "Washington",
        region: CensusRegion::West,
        population: 7_705_281,
        land_area_sq_miles: 66_456.0,
        bbox_deg: (45.5, -124.8, 49.0, -116.9),
    },
    StateInfo {
        state: UsState::WestVirginia,
        fips: 54,
        abbrev: "WV",
        name: "West Virginia",
        region: CensusRegion::South,
        population: 1_793_716,
        land_area_sq_miles: 24_038.0,
        bbox_deg: (37.2, -82.6, 40.6, -77.7),
    },
    StateInfo {
        state: UsState::Wisconsin,
        fips: 55,
        abbrev: "WI",
        name: "Wisconsin",
        region: CensusRegion::Midwest,
        population: 5_893_718,
        land_area_sq_miles: 54_158.0,
        bbox_deg: (42.5, -92.9, 47.1, -86.8),
    },
];

impl UsState {
    /// All states known to the workspace, ordered by FIPS code.
    pub fn all() -> impl Iterator<Item = UsState> {
        REGISTRY.iter().map(|info| info.state)
    }

    /// The 15 states queried for the serviceability and compliance analyses
    /// (§3.1, Table 3).
    pub fn study_states() -> [UsState; 15] {
        [
            UsState::Alabama,
            UsState::California,
            UsState::Florida,
            UsState::Georgia,
            UsState::Illinois,
            UsState::Iowa,
            UsState::Mississippi,
            UsState::Nebraska,
            UsState::NewHampshire,
            UsState::NewJersey,
            UsState::NorthCarolina,
            UsState::Ohio,
            UsState::Utah,
            UsState::Vermont,
            UsState::Wisconsin,
        ]
    }

    /// The seven states used for the regulated-monopoly comparison (§4.3).
    pub fn q3_states() -> [UsState; 7] {
        [
            UsState::California,
            UsState::Utah,
            UsState::Illinois,
            UsState::Ohio,
            UsState::NorthCarolina,
            UsState::NewHampshire,
            UsState::Georgia,
        ]
    }

    /// Static attributes for this state.
    pub fn info(self) -> &'static StateInfo {
        REGISTRY
            .iter()
            .find(|info| info.state == self)
            .expect("every UsState variant has a registry row")
    }

    /// The validated FIPS code.
    pub fn fips(self) -> StateFips {
        StateFips::new(self.info().fips).expect("registry FIPS codes are valid")
    }

    /// USPS abbreviation, e.g. `"CA"`.
    pub fn abbrev(self) -> &'static str {
        self.info().abbrev
    }

    /// Full name, e.g. `"California"`.
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// Census region.
    pub fn region(self) -> CensusRegion {
        self.info().region
    }

    /// Approximate 2020 population.
    pub fn population(self) -> u64 {
        self.info().population
    }

    /// Approximate land area in square miles.
    pub fn land_area_sq_miles(self) -> f64 {
        self.info().land_area_sq_miles
    }

    /// Mean population density in people per square mile.
    pub fn mean_density(self) -> f64 {
        self.population() as f64 / self.land_area_sq_miles()
    }

    /// Approximate bounding box.
    pub fn bbox(self) -> BoundingBox {
        let (a, b, c, d) = self.info().bbox_deg;
        BoundingBox::from_degrees(a, b, c, d).expect("registry boxes are valid")
    }

    /// Looks a state up by its FIPS code.
    pub fn from_fips(fips: StateFips) -> Option<UsState> {
        REGISTRY
            .iter()
            .find(|info| info.fips == fips.code())
            .map(|info| info.state)
    }

    /// Looks a state up by USPS abbreviation (case-sensitive).
    pub fn from_abbrev(abbrev: &str) -> Result<UsState, GeoError> {
        REGISTRY
            .iter()
            .find(|info| info.abbrev == abbrev)
            .map(|info| info.state)
            .ok_or_else(|| GeoError::UnknownStateAbbrev(abbrev.to_string()))
    }
}

impl fmt::Display for UsState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        for info in REGISTRY {
            // FIPS valid and unique.
            assert!(StateFips::new(info.fips).is_ok(), "{}", info.name);
            assert_eq!(
                REGISTRY.iter().filter(|o| o.fips == info.fips).count(),
                1,
                "duplicate FIPS {}",
                info.fips
            );
            // Bounding box valid.
            let _ = info.state.bbox();
            // Round trips.
            assert_eq!(UsState::from_fips(info.state.fips()), Some(info.state));
            assert_eq!(UsState::from_abbrev(info.abbrev).unwrap(), info.state);
        }
    }

    #[test]
    fn registry_sorted_by_fips() {
        for pair in REGISTRY.windows(2) {
            assert!(pair[0].fips < pair[1].fips);
        }
    }

    #[test]
    fn study_states_match_table_3() {
        let s = UsState::study_states();
        assert_eq!(s.len(), 15);
        assert!(s.contains(&UsState::California));
        assert!(s.contains(&UsState::Vermont));
        assert!(!s.contains(&UsState::Texas));
    }

    #[test]
    fn q3_states_are_a_subset_of_study_states() {
        let study = UsState::study_states();
        for st in UsState::q3_states() {
            assert!(study.contains(&st), "{st} not in study states");
        }
    }

    #[test]
    fn density_ordering_is_sane() {
        // NJ is the densest US state; Nebraska far sparser.
        assert!(UsState::NewJersey.mean_density() > 1_000.0);
        assert!(UsState::Nebraska.mean_density() < 50.0);
        assert!(UsState::NewJersey.mean_density() > UsState::Vermont.mean_density());
    }

    #[test]
    fn unknown_abbrev_is_an_error() {
        assert!(matches!(
            UsState::from_abbrev("ZZ"),
            Err(GeoError::UnknownStateAbbrev(_))
        ));
    }

    #[test]
    fn display_uses_abbreviation() {
        assert_eq!(UsState::Wisconsin.to_string(), "WI");
    }
}
