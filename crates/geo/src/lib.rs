//! # caf-geo — census geography substrate
//!
//! The CAF efficacy analysis operates on the US Census Bureau's geographic
//! hierarchy: **state → county → tract → block group (CBG) → block (CB)**.
//! Every metric in the paper is aggregated at one of these levels — the
//! serviceability and compliance rates are CBG-weighted (§4.1–4.2), while
//! the regulated-monopoly comparison (§4.3) treats addresses in the same
//! census *block* as neighbors.
//!
//! This crate provides:
//!
//! * [`ids`] — compact, validated GEOID types ([`BlockId`], [`BlockGroupId`],
//!   [`TractId`], [`CountyId`], [`StateFips`]) with lossless conversion up
//!   the hierarchy and zero-padded display identical to Census GEOID strings.
//! * [`coord`] — geodetic coordinates, haversine distance, bounding boxes.
//! * [`address`] — street-level residential addresses as used by the
//!   broadband-plan querying workflow.
//! * [`density`] — population-density grids and the rural/urban
//!   classification used in Figure 3 and Figure 10 of the paper.
//! * [`state`] — a registry of US states with the attributes the synthetic
//!   dataset generator needs (region, bounding box, population).
//!
//! The crate is `std`-only and allocation-light: a substrate every other
//! crate in the workspace builds on. Its one (workspace-internal)
//! dependency is `caf-snap`, whose [`mod@snap`] codecs give every geo type
//! a validated binary snapshot encoding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod coord;
pub mod density;
pub mod error;
pub mod ids;
pub mod snap;
pub mod state;

pub use address::{Address, AddressId, StreetAddress};
pub use coord::{haversine_km, haversine_miles, BoundingBox, LatLon};
pub use density::{DensityClass, DensityGrid};
pub use error::GeoError;
pub use ids::{BlockGroupId, BlockId, CountyId, StateFips, TractId};
pub use state::{CensusRegion, StateInfo, UsState};
