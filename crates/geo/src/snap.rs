//! [`Snap`] codecs for the geography substrate.
//!
//! Every type re-enters through its validating constructor: a decoded
//! GEOID, coordinate, or enum discriminant that would be invalid to
//! construct is a [`SnapError::Malformed`], never a live invalid value.
//! That keeps the snapshot path inside the same invariants as the
//! generators.

use crate::address::{Address, AddressId, StreetAddress};
use crate::coord::LatLon;
use crate::density::DensityClass;
use crate::ids::{decompose_block, decompose_block_group, BlockGroupId, BlockId, StateFips};
use crate::state::UsState;
use caf_snap::{Reader, Snap, SnapError, Writer};

fn malformed(what: &str, detail: impl std::fmt::Display) -> SnapError {
    SnapError::Malformed(format!("{what}: {detail}"))
}

impl Snap for StateFips {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(self.code());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let code = r.u16()?;
        StateFips::new(code).map_err(|e| malformed("state fips", e))
    }
}

impl Snap for UsState {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.fips());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let fips: StateFips = r.get()?;
        UsState::from_fips(fips)
            .ok_or_else(|| malformed("us state", format_args!("unknown fips {}", fips.code())))
    }
}

impl Snap for BlockGroupId {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.geoid());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let geoid = r.u64()?;
        decompose_block_group(geoid).map_err(|e| malformed("block group geoid", e))
    }
}

impl Snap for BlockId {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.geoid());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let geoid = r.u64()?;
        decompose_block(geoid).map_err(|e| malformed("block geoid", e))
    }
}

impl Snap for LatLon {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.lat());
        w.put_f64(self.lon());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let lat = r.f64()?;
        let lon = r.f64()?;
        LatLon::new(lat, lon).map_err(|e| malformed("coordinate", e))
    }
}

impl Snap for DensityClass {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            DensityClass::Remote => 0,
            DensityClass::Rural => 1,
            DensityClass::Suburban => 2,
            DensityClass::Urban => 3,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => DensityClass::Remote,
            1 => DensityClass::Rural,
            2 => DensityClass::Suburban,
            3 => DensityClass::Urban,
            other => return Err(malformed("density class", format_args!("tag {other}"))),
        })
    }
}

impl Snap for AddressId {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(AddressId(r.u64()?))
    }
}

impl Snap for StreetAddress {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.number);
        w.put_str(&self.street);
        w.put_str(&self.city);
        w.put_str(&self.state_abbrev);
        w.put_u32(self.zip);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(StreetAddress {
            number: r.u32()?,
            street: r.str()?,
            city: r.str()?,
            state_abbrev: r.str()?,
            zip: r.u32()?,
        })
    }
}

impl Snap for Address {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.id);
        w.put(&self.street);
        w.put(&self.location);
        w.put(&self.block);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Address {
            id: r.get()?,
            street: r.get()?,
            location: r.get()?,
            block: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CountyId, TractId};

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(value: &T) {
        let mut w = Writer::new();
        w.put(value);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(&r.get::<T>().unwrap(), value);
        r.finish().unwrap();
    }

    fn sample_block() -> BlockId {
        let state = StateFips::new(6).unwrap();
        let county = CountyId::new(state, 83).unwrap();
        let tract = TractId::new(county, 2_936).unwrap();
        let group = BlockGroupId::new(tract, 2).unwrap();
        BlockId::new(group, 17).unwrap()
    }

    #[test]
    fn geo_types_round_trip() {
        roundtrip(&StateFips::new(48).unwrap());
        roundtrip(&UsState::Texas);
        roundtrip(&sample_block());
        roundtrip(&sample_block().block_group());
        roundtrip(&LatLon::new(34.42, -119.7).unwrap());
        for class in [
            DensityClass::Remote,
            DensityClass::Rural,
            DensityClass::Suburban,
            DensityClass::Urban,
        ] {
            roundtrip(&class);
        }
        roundtrip(&Address {
            id: AddressId(42),
            street: StreetAddress {
                number: 123,
                street: "Main St".to_string(),
                city: "Lubbock".to_string(),
                state_abbrev: "TX".to_string(),
                zip: 79401,
            },
            location: LatLon::new(33.57, -101.88).unwrap(),
            block: sample_block(),
        });
    }

    #[test]
    fn invalid_payloads_are_malformed_not_panics() {
        // FIPS 99 is not a state.
        let mut w = Writer::new();
        w.put_u16(99);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).get::<StateFips>(),
            Err(SnapError::Malformed(_))
        ));
        // An out-of-range latitude fails LatLon's constructor.
        let mut w = Writer::new();
        w.put_f64(200.0);
        w.put_f64(0.0);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).get::<LatLon>(),
            Err(SnapError::Malformed(_))
        ));
        // A garbage GEOID integer fails decomposition.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).get::<BlockId>(),
            Err(SnapError::Malformed(_))
        ));
    }
}
