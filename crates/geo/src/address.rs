//! Street-level residential addresses.
//!
//! The unit of measurement in the paper is the *street address*: the USAC
//! CAF-Map lists each subsidized location as a street address with
//! coordinates and census identifiers, and the broadband-plan querying tool
//! takes a street address as input. This module models that record.

use crate::coord::LatLon;
use crate::ids::{BlockGroupId, BlockId, StateFips};
use std::fmt;

/// A stable, workspace-wide unique identifier for an address.
///
/// Identifiers are assigned densely by the synthetic-data generator, so they
/// double as indices into side tables (query outcomes, plan records).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AddressId(pub u64);

impl fmt::Display for AddressId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "addr-{}", self.0)
    }
}

/// The human-readable portion of an address, as it would be typed into an
/// ISP's address-lookup web form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StreetAddress {
    /// House number, e.g. `1234`.
    pub number: u32,
    /// Street name including suffix, e.g. `"County Road 12"`.
    pub street: String,
    /// City or locality name.
    pub city: String,
    /// Two-letter state abbreviation.
    pub state_abbrev: String,
    /// Five-digit ZIP code.
    pub zip: u32,
}

impl fmt::Display for StreetAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}, {}, {} {:05}",
            self.number, self.street, self.city, self.state_abbrev, self.zip
        )
    }
}

/// A residential address with its census geography and coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Address {
    /// Unique identifier.
    pub id: AddressId,
    /// Human-readable street address.
    pub street: StreetAddress,
    /// WGS-84 location.
    pub location: LatLon,
    /// The census block containing the address.
    pub block: BlockId,
}

impl Address {
    /// The census block group containing the address.
    pub fn block_group(&self) -> BlockGroupId {
        self.block.block_group()
    }

    /// The state containing the address.
    pub fn state(&self) -> StateFips {
        self.block.state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{BlockGroupId, BlockId, CountyId, StateFips, TractId};

    fn sample_address() -> Address {
        let state = StateFips::new(13).unwrap(); // Georgia
        let county = CountyId::new(state, 121).unwrap();
        let tract = TractId::new(county, 100).unwrap();
        let group = BlockGroupId::new(tract, 3).unwrap();
        let block = BlockId::new(group, 42).unwrap();
        Address {
            id: AddressId(7),
            street: StreetAddress {
                number: 1120,
                street: "Peach Orchard Rd".to_string(),
                city: "Rome".to_string(),
                state_abbrev: "GA".to_string(),
                zip: 30161,
            },
            location: LatLon::new(34.25, -85.16).unwrap(),
            block,
        }
    }

    #[test]
    fn street_address_formats_like_a_lookup_form_entry() {
        let a = sample_address();
        assert_eq!(
            a.street.to_string(),
            "1120 Peach Orchard Rd, Rome, GA 30161"
        );
    }

    #[test]
    fn zip_is_zero_padded() {
        let mut a = sample_address();
        a.street.zip = 501; // Holtsville NY, lowest real ZIP
        assert!(a.street.to_string().ends_with("GA 00501"));
    }

    #[test]
    fn geography_accessors_delegate_to_block() {
        let a = sample_address();
        assert_eq!(a.state().code(), 13);
        assert_eq!(a.block_group(), a.block.block_group());
    }

    #[test]
    fn address_id_display() {
        assert_eq!(AddressId(99).to_string(), "addr-99");
    }
}
