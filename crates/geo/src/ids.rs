//! Compact, validated Census GEOID types.
//!
//! The Census Bureau identifies geographic units by concatenated decimal
//! codes ("GEOIDs"):
//!
//! | unit        | digits | layout                                   |
//! |-------------|--------|------------------------------------------|
//! | state       | 2      | `SS`                                     |
//! | county      | 5      | `SS CCC`                                 |
//! | tract       | 11     | `SS CCC TTTTTT`                          |
//! | block group | 12     | `SS CCC TTTTTT G`                        |
//! | block       | 15     | `SS CCC TTTTTT G BBB`                    |
//!
//! The first digit of a census block's 4-digit code *is* the block-group
//! digit, so a block GEOID contains its block group's GEOID as a prefix.
//! All types here exploit that: they store the full numeric GEOID in a
//! single integer, making them `Copy`, hashable, and cheaply ordered —
//! properties the campaign engine relies on when bucketing hundreds of
//! thousands of addresses by CBG.

use crate::error::GeoError;
use std::fmt;
use std::str::FromStr;

/// A two-digit state FIPS code (`01` Alabama … `56` Wyoming, `72` Puerto
/// Rico, `78` US Virgin Islands).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateFips(u8);

impl StateFips {
    /// Creates a state FIPS code, validating the Census-assigned range.
    pub fn new(code: u16) -> Result<Self, GeoError> {
        if (1..=78).contains(&code) {
            Ok(StateFips(code as u8))
        } else {
            Err(GeoError::InvalidStateFips(code))
        }
    }

    /// The numeric code.
    pub fn code(self) -> u16 {
        u16::from(self.0)
    }
}

impl fmt::Display for StateFips {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}", self.0)
    }
}

/// A five-digit county GEOID (state FIPS × 1000 + county code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountyId(u32);

impl CountyId {
    /// Creates a county GEOID from its components.
    pub fn new(state: StateFips, county: u16) -> Result<Self, GeoError> {
        if (1..=999).contains(&county) {
            Ok(CountyId(
                u32::from(state.code()) * 1_000 + u32::from(county),
            ))
        } else {
            Err(GeoError::InvalidCounty(county))
        }
    }

    /// The state this county belongs to.
    pub fn state(self) -> StateFips {
        StateFips((self.0 / 1_000) as u8)
    }

    /// The three-digit county code within the state.
    pub fn county_code(self) -> u16 {
        (self.0 % 1_000) as u16
    }

    /// The full numeric GEOID.
    pub fn geoid(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CountyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:05}", self.0)
    }
}

/// An eleven-digit census-tract GEOID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TractId(u64);

impl TractId {
    /// Creates a tract GEOID from its parent county and six-digit tract code.
    pub fn new(county: CountyId, tract: u32) -> Result<Self, GeoError> {
        if (1..=999_999).contains(&tract) {
            Ok(TractId(
                u64::from(county.geoid()) * 1_000_000 + u64::from(tract),
            ))
        } else {
            Err(GeoError::InvalidTract(tract))
        }
    }

    /// The county containing this tract.
    pub fn county(self) -> CountyId {
        CountyId((self.0 / 1_000_000) as u32)
    }

    /// The state containing this tract.
    pub fn state(self) -> StateFips {
        self.county().state()
    }

    /// The six-digit tract code within the county.
    pub fn tract_code(self) -> u32 {
        (self.0 % 1_000_000) as u32
    }

    /// The full numeric GEOID.
    pub fn geoid(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TractId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:011}", self.0)
    }
}

/// A twelve-digit census block-group GEOID.
///
/// A block group (CBG) typically covers 600–3 000 people with relatively
/// homogeneous demographics — the paper's unit of sampling (§3.1) and of
/// weighted aggregation (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockGroupId(u64);

impl BlockGroupId {
    /// Creates a block-group GEOID from its parent tract and single digit.
    pub fn new(tract: TractId, block_group: u8) -> Result<Self, GeoError> {
        if block_group <= 9 {
            Ok(BlockGroupId(tract.geoid() * 10 + u64::from(block_group)))
        } else {
            Err(GeoError::InvalidBlockGroup(block_group))
        }
    }

    /// The tract containing this block group.
    pub fn tract(self) -> TractId {
        TractId(self.0 / 10)
    }

    /// The county containing this block group.
    pub fn county(self) -> CountyId {
        self.tract().county()
    }

    /// The state containing this block group.
    pub fn state(self) -> StateFips {
        self.tract().state()
    }

    /// The single block-group digit.
    pub fn group_digit(self) -> u8 {
        (self.0 % 10) as u8
    }

    /// The full numeric GEOID.
    pub fn geoid(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:012}", self.0)
    }
}

impl FromStr for BlockGroupId {
    type Err = GeoError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let n = parse_digits(s, 12)?;
        decompose_block_group(n)
    }
}

/// A fifteen-digit census-block GEOID.
///
/// A block (CB) is the smallest census unit; the paper treats addresses in
/// the same block as "neighbors" for the regulated-monopoly comparison
/// (§4.3) because they share geospatial characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(u64);

impl BlockId {
    /// Creates a block GEOID from its parent block group and the trailing
    /// three digits of the four-digit block code (the leading digit is the
    /// block-group digit and is implied by `group`).
    pub fn new(group: BlockGroupId, block_suffix: u16) -> Result<Self, GeoError> {
        if block_suffix <= 999 {
            Ok(BlockId(group.geoid() * 1_000 + u64::from(block_suffix)))
        } else {
            Err(GeoError::InvalidBlockSuffix(block_suffix))
        }
    }

    /// The block group containing this block.
    pub fn block_group(self) -> BlockGroupId {
        BlockGroupId(self.0 / 1_000)
    }

    /// The tract containing this block.
    pub fn tract(self) -> TractId {
        self.block_group().tract()
    }

    /// The state containing this block.
    pub fn state(self) -> StateFips {
        self.block_group().state()
    }

    /// The four-digit block code (block-group digit + suffix), as printed in
    /// Census block GEOIDs.
    pub fn block_code(self) -> u16 {
        (self.0 % 10_000) as u16
    }

    /// The full numeric GEOID.
    pub fn geoid(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:015}", self.0)
    }
}

impl FromStr for BlockId {
    type Err = GeoError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let n = parse_digits(s, 15)?;
        decompose_block(n)
    }
}

/// Parses a string of exactly `len` decimal digits into an integer.
fn parse_digits(s: &str, len: usize) -> Result<u64, GeoError> {
    let malformed = || GeoError::MalformedGeoid {
        input: s.chars().take(24).collect(),
        expected_len: len,
    };
    if s.len() != len || !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(malformed());
    }
    s.parse::<u64>().map_err(|_| malformed())
}

/// Validates a raw 12-digit integer as a block-group GEOID.
pub(crate) fn decompose_block_group(n: u64) -> Result<BlockGroupId, GeoError> {
    let group = (n % 10) as u8;
    let tract = ((n / 10) % 1_000_000) as u32;
    let county = ((n / 10_000_000) % 1_000) as u16;
    let state = (n / 10_000_000_000) as u16;
    let state = StateFips::new(state)?;
    let county = CountyId::new(state, county)?;
    let tract = TractId::new(county, tract)?;
    BlockGroupId::new(tract, group)
}

/// Validates a raw 15-digit integer as a block GEOID.
pub(crate) fn decompose_block(n: u64) -> Result<BlockId, GeoError> {
    let suffix = (n % 1_000) as u16;
    let group = decompose_block_group(n / 1_000)?;
    BlockId::new(group, suffix)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_block() -> BlockId {
        let state = StateFips::new(6).unwrap(); // California
        let county = CountyId::new(state, 83).unwrap(); // Santa Barbara
        let tract = TractId::new(county, 2_936).unwrap();
        let group = BlockGroupId::new(tract, 2).unwrap();
        BlockId::new(group, 17).unwrap()
    }

    #[test]
    fn geoid_roundtrip_through_display_and_parse() {
        let block = sample_block();
        let s = block.to_string();
        assert_eq!(s.len(), 15);
        assert_eq!(s, "060830029362017");
        let parsed: BlockId = s.parse().unwrap();
        assert_eq!(parsed, block);
    }

    #[test]
    fn block_group_roundtrip() {
        let group = sample_block().block_group();
        let s = group.to_string();
        assert_eq!(s, "060830029362");
        let parsed: BlockGroupId = s.parse().unwrap();
        assert_eq!(parsed, group);
    }

    #[test]
    fn hierarchy_accessors_agree() {
        let block = sample_block();
        assert_eq!(block.state().code(), 6);
        assert_eq!(block.block_group().group_digit(), 2);
        assert_eq!(block.tract().tract_code(), 2_936);
        assert_eq!(block.tract().county().county_code(), 83);
        assert_eq!(block.block_code(), 2_017);
    }

    #[test]
    fn invalid_components_rejected() {
        assert!(StateFips::new(0).is_err());
        assert!(StateFips::new(79).is_err());
        let state = StateFips::new(48).unwrap();
        assert!(CountyId::new(state, 0).is_err());
        assert!(CountyId::new(state, 1_000).is_err());
        let county = CountyId::new(state, 1).unwrap();
        assert!(TractId::new(county, 0).is_err());
        assert!(TractId::new(county, 1_000_000).is_err());
        let tract = TractId::new(county, 1).unwrap();
        assert!(BlockGroupId::new(tract, 10).is_err());
        let group = BlockGroupId::new(tract, 1).unwrap();
        assert!(BlockId::new(group, 1_000).is_err());
    }

    #[test]
    fn malformed_strings_rejected() {
        assert!("".parse::<BlockId>().is_err());
        assert!("06083002936201".parse::<BlockId>().is_err()); // 14 digits
        assert!("06083002936201x".parse::<BlockId>().is_err());
        // Valid length but invalid state FIPS (99).
        assert!("990830029362017".parse::<BlockId>().is_err());
    }

    #[test]
    fn ordering_matches_geoid_ordering() {
        let a: BlockId = "010010201001000".parse().unwrap();
        let b: BlockId = "010010201001001".parse().unwrap();
        let c: BlockId = "060830029362017".parse().unwrap();
        assert!(a < b && b < c);
    }
}
