//! Property-based tests for the geography substrate.

use caf_geo::{BlockGroupId, BlockId, BoundingBox, LatLon, StateFips};
use proptest::prelude::*;

/// Strategy producing valid raw GEOID components.
fn geoid_components() -> impl Strategy<Value = (u16, u16, u32, u8, u16)> {
    (1u16..=56, 1u16..=999, 1u32..=999_999, 0u8..=9, 0u16..=999)
}

proptest! {
    /// Display → parse is the identity for block GEOIDs.
    #[test]
    fn block_geoid_roundtrip((state, county, tract, group, suffix) in geoid_components()) {
        let state = StateFips::new(state).unwrap();
        let county = caf_geo::CountyId::new(state, county).unwrap();
        let tract = caf_geo::TractId::new(county, tract).unwrap();
        let group = BlockGroupId::new(tract, group).unwrap();
        let block = BlockId::new(group, suffix).unwrap();

        let parsed: BlockId = block.to_string().parse().unwrap();
        prop_assert_eq!(parsed, block);
        prop_assert_eq!(parsed.block_group(), group);
        prop_assert_eq!(parsed.state(), state);
    }

    /// The block-group GEOID is always a strict prefix of the block GEOID.
    #[test]
    fn block_group_is_prefix_of_block((state, county, tract, group, suffix) in geoid_components()) {
        let state = StateFips::new(state).unwrap();
        let county = caf_geo::CountyId::new(state, county).unwrap();
        let tract = caf_geo::TractId::new(county, tract).unwrap();
        let bg = BlockGroupId::new(tract, group).unwrap();
        let block = BlockId::new(bg, suffix).unwrap();
        prop_assert!(block.to_string().starts_with(&bg.to_string()));
    }

    /// Haversine distance is a symmetric, non-negative function bounded by
    /// half the Earth's circumference.
    #[test]
    fn haversine_is_a_metric_like_function(
        lat1 in -89.0f64..89.0, lon1 in -179.0f64..179.0,
        lat2 in -89.0f64..89.0, lon2 in -179.0f64..179.0,
    ) {
        let a = LatLon::new(lat1, lon1).unwrap();
        let b = LatLon::new(lat2, lon2).unwrap();
        let d_ab = caf_geo::haversine_km(a, b);
        let d_ba = caf_geo::haversine_km(b, a);
        prop_assert!(d_ab >= 0.0);
        prop_assert!((d_ab - d_ba).abs() < 1e-6);
        // Half Earth circumference ≈ 20 015 km.
        prop_assert!(d_ab <= 20_100.0);
    }

    /// Every point inside a box locates to a cell whose sub-box contains it.
    #[test]
    fn locate_and_cell_agree(
        lat in 30.05f64..39.95, lon in -119.95f64..-110.05,
        rows in 1usize..30, cols in 1usize..30,
    ) {
        let bb = BoundingBox::from_degrees(30.0, -120.0, 40.0, -110.0).unwrap();
        let point = LatLon::new(lat, lon).unwrap();
        let (r, c) = bb.locate(rows, cols, point).unwrap();
        prop_assert!(r < rows && c < cols);
        let cell = bb.cell(rows, cols, r, c);
        // Tolerate boundary rounding by expanding the cell a hair.
        let eps = 1e-9;
        prop_assert!(point.lat() >= cell.min().lat() - eps);
        prop_assert!(point.lat() <= cell.max().lat() + eps);
        prop_assert!(point.lon() >= cell.min().lon() - eps);
        prop_assert!(point.lon() <= cell.max().lon() + eps);
    }
}
