//! Property-based tests for the geography substrate.
//!
//! Each invariant lives in a plain helper function so it has exactly one
//! definition with two drivers: the `proptest!` properties explore the
//! parameter space under the real proptest crate, and the `smoke_*`
//! tests pin a handful of fixed points that always run — including under
//! the offline proptest stub, whose `proptest!` macro discards property
//! bodies entirely.

use caf_geo::{BlockGroupId, BlockId, BoundingBox, LatLon, StateFips};
use proptest::prelude::*;

/// Build the block and block-group ids for raw GEOID components.
fn ids_from(
    state: u16,
    county: u16,
    tract: u32,
    group: u8,
    suffix: u16,
) -> (BlockGroupId, BlockId) {
    let state = StateFips::new(state).unwrap();
    let county = caf_geo::CountyId::new(state, county).unwrap();
    let tract = caf_geo::TractId::new(county, tract).unwrap();
    let bg = BlockGroupId::new(tract, group).unwrap();
    let block = BlockId::new(bg, suffix).unwrap();
    (bg, block)
}

/// Display → parse is the identity for block GEOIDs.
fn check_block_geoid_roundtrip(state: u16, county: u16, tract: u32, group: u8, suffix: u16) {
    let (bg, block) = ids_from(state, county, tract, group, suffix);
    let parsed: BlockId = block.to_string().parse().unwrap();
    assert_eq!(parsed, block);
    assert_eq!(parsed.block_group(), bg);
    assert_eq!(parsed.state(), StateFips::new(state).unwrap());
}

/// The block-group GEOID is always a strict prefix of the block GEOID.
fn check_block_group_is_prefix_of_block(
    state: u16,
    county: u16,
    tract: u32,
    group: u8,
    suffix: u16,
) {
    let (bg, block) = ids_from(state, county, tract, group, suffix);
    assert!(block.to_string().starts_with(&bg.to_string()));
}

/// Haversine distance is a symmetric, non-negative function bounded by
/// half the Earth's circumference.
fn check_haversine_is_a_metric_like_function(lat1: f64, lon1: f64, lat2: f64, lon2: f64) {
    let a = LatLon::new(lat1, lon1).unwrap();
    let b = LatLon::new(lat2, lon2).unwrap();
    let d_ab = caf_geo::haversine_km(a, b);
    let d_ba = caf_geo::haversine_km(b, a);
    assert!(d_ab >= 0.0);
    assert!((d_ab - d_ba).abs() < 1e-6);
    // Half Earth circumference ≈ 20 015 km.
    assert!(d_ab <= 20_100.0);
}

/// Every point inside a box locates to a cell whose sub-box contains it.
fn check_locate_and_cell_agree(lat: f64, lon: f64, rows: usize, cols: usize) {
    let bb = BoundingBox::from_degrees(30.0, -120.0, 40.0, -110.0).unwrap();
    let point = LatLon::new(lat, lon).unwrap();
    let (r, c) = bb.locate(rows, cols, point).unwrap();
    assert!(r < rows && c < cols);
    let cell = bb.cell(rows, cols, r, c);
    // Tolerate boundary rounding by expanding the cell a hair.
    let eps = 1e-9;
    assert!(point.lat() >= cell.min().lat() - eps);
    assert!(point.lat() <= cell.max().lat() + eps);
    assert!(point.lon() >= cell.min().lon() - eps);
    assert!(point.lon() <= cell.max().lon() + eps);
}

proptest! {
    #[test]
    fn block_geoid_roundtrip(
        (state, county, tract, group, suffix)
            in (1u16..=56, 1u16..=999, 1u32..=999_999, 0u8..=9, 0u16..=999),
    ) {
        check_block_geoid_roundtrip(state, county, tract, group, suffix);
    }

    #[test]
    fn block_group_is_prefix_of_block(
        (state, county, tract, group, suffix)
            in (1u16..=56, 1u16..=999, 1u32..=999_999, 0u8..=9, 0u16..=999),
    ) {
        check_block_group_is_prefix_of_block(state, county, tract, group, suffix);
    }

    #[test]
    fn haversine_is_a_metric_like_function(
        lat1 in -89.0f64..89.0, lon1 in -179.0f64..179.0,
        lat2 in -89.0f64..89.0, lon2 in -179.0f64..179.0,
    ) {
        check_haversine_is_a_metric_like_function(lat1, lon1, lat2, lon2);
    }

    #[test]
    fn locate_and_cell_agree(
        lat in 30.05f64..39.95, lon in -119.95f64..-110.05,
        rows in 1usize..30, cols in 1usize..30,
    ) {
        check_locate_and_cell_agree(lat, lon, rows, cols);
    }
}

#[test]
fn smoke_geoid_invariants_hold_at_fixed_components() {
    for (state, county, tract, group, suffix) in [
        (1u16, 1u16, 1u32, 0u8, 0u16),
        (6, 37, 123_456, 9, 999),
        (56, 999, 999_999, 4, 17),
    ] {
        check_block_geoid_roundtrip(state, county, tract, group, suffix);
        check_block_group_is_prefix_of_block(state, county, tract, group, suffix);
    }
}

#[test]
fn smoke_geometry_invariants_hold_at_fixed_points() {
    check_haversine_is_a_metric_like_function(37.77, -122.42, 40.71, -74.01);
    check_haversine_is_a_metric_like_function(-45.0, 170.0, 60.0, -150.0);
    check_haversine_is_a_metric_like_function(0.0, 0.0, 0.0, 0.0);
    check_locate_and_cell_agree(30.05, -119.95, 1, 1);
    check_locate_and_cell_agree(35.5, -115.0, 29, 29);
    check_locate_and_cell_agree(39.95, -110.05, 7, 13);
}
