//! Failure injection: hand-built truth tables drive the BQT client and
//! campaign through their worst cases — sites that never resolve, sites
//! that only answer ambiguously, empty plan lists, and missing truth —
//! verifying the pipeline degrades the way §5 of the paper describes
//! (exclusion and resampling, never silent misclassification).

use caf_bqt::{Campaign, CampaignConfig, QueryOutcome, QueryTask};
use caf_geo::AddressId;
use caf_synth::params::ErrorCategory;
use caf_synth::{AddressTruth, Isp, PlanCatalog, TruthTable};

fn campaign(seed: u64) -> Campaign {
    Campaign::new(CampaignConfig {
        seed,
        workers: 2,
        max_attempts: 3,
        proxy_pool_size: 4,
        ..CampaignConfig::default()
    })
}

#[test]
fn all_hard_failures_yield_all_unknown() {
    let mut truth = TruthTable::new();
    let tasks: Vec<QueryTask> = (0..50)
        .map(|i| {
            truth.insert(
                AddressId(i),
                Isp::Frontier,
                AddressTruth {
                    hard_failure: true,
                    ..AddressTruth::unserved()
                },
            );
            QueryTask {
                address: AddressId(i),
                isp: Isp::Frontier,
            }
        })
        .collect();
    let result = campaign(1).run(&truth, &tasks);
    for record in &result.records {
        assert!(
            matches!(record.outcome, QueryOutcome::Unknown(_)),
            "hard failures must never classify as served/unserved"
        );
        assert_eq!(record.attempts, 3, "full retry budget consumed");
        assert_eq!(record.errors.len(), 3);
    }
    // Every error event lands in the dropdown category (Frontier's row).
    let counts = result.error_counts();
    assert_eq!(
        counts
            .get(&(Isp::Frontier, ErrorCategory::SelectDropdown))
            .copied()
            .unwrap_or(0),
        150
    );

    // The campaign's stats tally the same story: 50 queries, all three
    // attempts consumed (so two retries each), every error rotating the
    // proxy, every outcome Unknown.
    let stats = result.stats;
    assert_eq!(stats.queries, 50);
    assert_eq!(stats.attempts, 150);
    assert_eq!(stats.retries, 100);
    assert_eq!(stats.error_events, 150);
    assert_eq!(stats.proxy_rotations, 150);
    assert_eq!(stats.unknown, 50);
    assert_eq!(stats.serviceable, 0);
    assert_eq!(stats.no_service, 0);
    assert_eq!(stats.address_not_found, 0);
    assert_eq!(stats.call_to_order, 0);
    assert!(stats.total_query_secs > 0.0);
    assert!(stats.throttle_wait_secs >= 0.0);
}

#[test]
fn campaign_stats_reach_the_metrics_registry() {
    // With telemetry enabled, a campaign run publishes its stats as
    // `caf.bqt.campaign.*` counters. The registry is process-global and
    // other tests in this binary run campaigns concurrently, so assert
    // on ≥ deltas rather than exact values.
    let mut truth = TruthTable::new();
    let tasks: Vec<QueryTask> = (0..30)
        .map(|i| {
            truth.insert(
                AddressId(i),
                Isp::Frontier,
                AddressTruth {
                    hard_failure: true,
                    ..AddressTruth::unserved()
                },
            );
            QueryTask {
                address: AddressId(i),
                isp: Isp::Frontier,
            }
        })
        .collect();

    let read = |name: &str| -> u64 {
        caf_obs::registry()
            .metrics_snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };

    caf_obs::set_enabled(true);
    let queries_before = read("caf.bqt.campaign.queries");
    let retries_before = read("caf.bqt.campaign.retries");
    let unknown_before = read("caf.bqt.campaign.outcome.unknown");
    let result = campaign(7).run(&truth, &tasks);
    caf_obs::set_enabled(false);

    assert_eq!(result.stats.queries, 30);
    assert!(read("caf.bqt.campaign.queries") >= queries_before + 30);
    assert!(read("caf.bqt.campaign.retries") >= retries_before + 60);
    assert!(read("caf.bqt.campaign.outcome.unknown") >= unknown_before + 30);
}

#[test]
fn ambiguous_sites_never_enter_the_analysis() {
    let mut truth = TruthTable::new();
    let cat = PlanCatalog::for_isp(Isp::Att);
    let tier = cat.tier_near(50.0);
    let mut tasks = Vec::new();
    for i in 0..200 {
        truth.insert(
            AddressId(i),
            Isp::Att,
            AddressTruth {
                served: true,
                plans: vec![cat.plan_from_tier(tier)],
                existing_subscriber: false,
                hard_failure: false,
                ambiguous: true, // every address hits "Call to Order"
            },
        );
        tasks.push(QueryTask {
            address: AddressId(i),
            isp: Isp::Att,
        });
    }
    let result = campaign(2).run(&truth, &tasks);
    let mut call_to_order = 0;
    for record in &result.records {
        match &record.outcome {
            QueryOutcome::CallToOrder => {
                call_to_order += 1;
                assert_eq!(record.outcome.is_served(), None);
            }
            QueryOutcome::Unknown(_) => {} // transient-error exhaustion
            other => panic!("ambiguous truth produced {other:?}"),
        }
    }
    assert!(
        call_to_order > 150,
        "most ambiguous queries should reach the Call to Order page, got {call_to_order}"
    );
}

#[test]
fn unknown_addresses_do_not_crash_the_campaign() {
    // Tasks referencing addresses with no truth entry (outside any ISP
    // footprint) resolve as Unknown rather than panicking.
    let truth = TruthTable::new();
    let tasks: Vec<QueryTask> = (0..20)
        .map(|i| QueryTask {
            address: AddressId(900_000 + i),
            isp: Isp::Xfinity,
        })
        .collect();
    let result = campaign(3).run(&truth, &tasks);
    assert_eq!(result.records.len(), 20);
    assert!(result
        .records
        .iter()
        .all(|r| matches!(r.outcome, QueryOutcome::Unknown(_))));
}

#[test]
fn consolidated_unserved_reports_address_not_found() {
    // Consolidated's site never says "no service"; the pipeline must
    // still count these addresses as unserved (§9.2).
    let mut truth = TruthTable::new();
    let mut tasks = Vec::new();
    for i in 0..120 {
        truth.insert(AddressId(i), Isp::Consolidated, AddressTruth::unserved());
        tasks.push(QueryTask {
            address: AddressId(i),
            isp: Isp::Consolidated,
        });
    }
    let result = campaign(4).run(&truth, &tasks);
    let mut not_found = 0;
    for record in &result.records {
        match &record.outcome {
            QueryOutcome::AddressNotFound => {
                not_found += 1;
                assert_eq!(record.outcome.is_served(), Some(false));
            }
            QueryOutcome::NoService => {
                panic!("Consolidated never shows an explicit no-service page")
            }
            QueryOutcome::Unknown(_) => {}
            other => panic!("unserved truth produced {other:?}"),
        }
    }
    assert!(not_found > 40, "got {not_found}");
}

#[test]
fn tierless_plans_survive_the_full_path() {
    // Frontier's "Unknown Plan" (no displayed speed) must arrive as a
    // served outcome with no max download — the §4.2 non-compliant case.
    let mut truth = TruthTable::new();
    let cat = PlanCatalog::for_isp(Isp::Frontier);
    let unknown = cat.plan_from_tier(cat.tier_labeled("Unknown Plan").expect("exists"));
    truth.insert(
        AddressId(5),
        Isp::Frontier,
        AddressTruth {
            served: true,
            plans: vec![unknown],
            existing_subscriber: true,
            hard_failure: false,
            ambiguous: false,
        },
    );
    let result = campaign(5).run(
        &truth,
        &[QueryTask {
            address: AddressId(5),
            isp: Isp::Frontier,
        }],
    );
    let record = &result.records[0];
    if let QueryOutcome::Serviceable {
        plans,
        existing_subscriber,
    } = &record.outcome
    {
        assert!(*existing_subscriber);
        assert_eq!(plans[0].download_mbps, None);
        assert_eq!(record.outcome.max_download_mbps(), None);
    } else if !matches!(record.outcome, QueryOutcome::Unknown(_)) {
        panic!("unexpected outcome {:?}", record.outcome);
    }
}

#[test]
fn zero_tasks_is_a_clean_noop() {
    let truth = TruthTable::new();
    let result = campaign(6).run(&truth, &[]);
    assert!(result.records.is_empty());
    assert_eq!(result.total_query_secs(), 0.0);
    assert!(result.error_counts().is_empty());
}
