//! Determinism and resumability of the work-stealing BQT campaign
//! scheduler, pinned across crate boundaries through the public
//! `caf-bqt` API only.
//!
//! The scheduler's contract: worker count, the stealing executor, and
//! the shard policy move **wall-clock only** — the `CampaignResult`
//! (records, replayed proxy telemetry, stats) is byte-identical across
//! the whole matrix. Checkpointing extends the contract through process
//! death: a campaign killed at any flush epoch and resumed must converge
//! to the same result as an uninterrupted run. (The real-SIGKILL version
//! of the resume check lives in extended CI, which `timeout -s KILL`s a
//! `campaign_run` process mid-flight and byte-diffs the resumed output.)

use caf_bqt::{Campaign, CampaignConfig, CheckpointConfig, QueryTask, ShardPolicy};
use caf_geo::UsState;
use caf_synth::{SynthConfig, World};
use std::path::PathBuf;

const SEED: u64 = 0xCAF_B07;
const SCALE: u32 = 50;

fn world() -> World {
    World::generate_states(
        SynthConfig {
            seed: SEED,
            scale: SCALE,
        },
        &[UsState::Vermont, UsState::NewHampshire],
    )
}

fn tasks_for(world: &World) -> Vec<QueryTask> {
    let mut tasks = Vec::new();
    for sw in &world.states {
        tasks.extend(sw.usac.records.iter().map(|r| QueryTask {
            address: r.address.id,
            isp: r.isp,
        }));
    }
    tasks
}

fn config(workers: usize, steal: bool, shard: ShardPolicy) -> CampaignConfig {
    CampaignConfig {
        seed: SEED,
        workers,
        steal,
        shard,
        ..CampaignConfig::default()
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("caf-it-ckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The full scheduler matrix: {1, 2, 4} workers × {static, stealing} ×
/// {finest, default, disabled} shard policies, every cell compared for
/// full `CampaignResult` equality against the serial static baseline.
#[test]
fn campaign_results_identical_across_scheduler_matrix() {
    let w = world();
    let tasks = tasks_for(&w);
    assert!(tasks.len() >= 100, "matrix needs a non-trivial campaign");
    let baseline = Campaign::new(config(1, false, ShardPolicy::disabled())).run(&w.truth, &tasks);

    for workers in [1usize, 2, 4] {
        for steal in [false, true] {
            for (name, shard) in [
                ("finest", ShardPolicy::finest()),
                ("default", ShardPolicy::default_policy()),
                ("disabled", ShardPolicy::disabled()),
            ] {
                let result = Campaign::new(config(workers, steal, shard)).run(&w.truth, &tasks);
                assert_eq!(
                    result, baseline,
                    "campaign diverged at workers={workers} steal={steal} shard={name}"
                );
            }
        }
    }
}

/// Kill-at-epoch resume: seed a checkpoint holding exactly what a
/// campaign killed right after a mid-run flush would have persisted
/// (three completed spans), then resume and require the result — records
/// *and* stats — to equal the uninterrupted run.
#[test]
fn killed_campaign_resumes_to_uninterrupted_result() {
    let w = world();
    let tasks = tasks_for(&w);
    let campaign = Campaign::new(config(4, true, ShardPolicy::default_policy()));
    let uninterrupted = campaign.run(&w.truth, &tasks);

    let n = tasks.len();
    let spans = [0..n / 5, n / 3..n / 2, 2 * n / 3..3 * n / 4];
    let dir = tempdir("kill");
    let ckpt = CheckpointConfig::new(&dir, 25);
    campaign
        .seed_checkpoint(&tasks, &uninterrupted.records, &spans, &ckpt)
        .expect("seed interrupted checkpoint");

    let resumed = campaign
        .run_with_checkpoints(&w.truth, &tasks, &ckpt)
        .expect("resume");
    assert_eq!(
        resumed.records, uninterrupted.records,
        "resumed records must be byte-identical"
    );
    assert_eq!(
        resumed.stats, uninterrupted.stats,
        "resumed CampaignStats must equal the uninterrupted run"
    );
    assert_eq!(resumed, uninterrupted);

    // And a third run over the now-complete checkpoint loads everything.
    let reloaded = campaign
        .run_with_checkpoints(&w.truth, &tasks, &ckpt)
        .expect("reload");
    assert_eq!(reloaded, uninterrupted);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpointing must be transparent even with stealing and adaptive
/// retry budgets on: the checkpointed run equals the plain run of the
/// same config.
#[test]
fn checkpointing_is_transparent_under_adaptive_stealing() {
    let w = world();
    let tasks = tasks_for(&w);
    let cfg = CampaignConfig {
        adaptive_retry: true,
        ..config(2, true, ShardPolicy::finest())
    };
    let campaign = Campaign::new(cfg);
    let plain = campaign.run(&w.truth, &tasks);
    let dir = tempdir("adaptive");
    let ckpt = CheckpointConfig::new(&dir, 40);
    let checkpointed = campaign
        .run_with_checkpoints(&w.truth, &tasks, &ckpt)
        .expect("checkpointed run");
    assert_eq!(checkpointed, plain);
    let _ = std::fs::remove_dir_all(&dir);
}
