//! Property-based integration tests: pipeline invariants that must hold
//! for *any* seed and scale, not just the calibrated defaults.
//!
//! Each invariant lives in a plain helper function so it has exactly one
//! definition with two drivers: the `proptest!` properties explore the
//! parameter space under the real proptest crate, and the `smoke_*`
//! tests pin a handful of fixed points that always run — including under
//! the offline proptest stub, whose `proptest!` macro discards property
//! bodies entirely.

use caf_bqt::{Campaign, CampaignConfig, QueryTask};
use caf_core::{Audit, AuditConfig, ComplianceAnalysis, SamplingRule, ServiceabilityAnalysis};
use caf_geo::UsState;
use caf_synth::{SynthConfig, World};
use proptest::prelude::*;

/// For any seed, rates are probabilities, compliance never exceeds
/// serviceability, and coverage accounting reconciles.
fn check_audit_invariants(seed: u64) {
    let synth = SynthConfig { seed, scale: 80 };
    let world = World::generate_states(synth, &[UsState::Vermont]);
    let audit = Audit::new(AuditConfig {
        synth,
        campaign: CampaignConfig {
            seed,
            workers: 2,
            ..CampaignConfig::default()
        },
        rule: SamplingRule::paper(),
        resample_rounds: 1,
    });
    let dataset = audit.run(&world);
    if dataset.rows.is_empty() {
        return;
    }

    let serviceability = ServiceabilityAnalysis::compute(&dataset);
    let compliance = ComplianceAnalysis::compute(&dataset);
    let s = serviceability.overall_rate();
    let c = compliance.overall_rate();
    assert!((0.0..=1.0).contains(&s));
    assert!((0.0..=1.0).contains(&c));
    assert!(c <= s + 1e-9);

    let collected: usize = dataset.coverage.iter().map(|x| x.collected).sum();
    assert_eq!(collected, dataset.rows.len());
    for cov in &dataset.coverage {
        assert!(cov.collected <= cov.queried);
        assert!(cov.queried <= cov.total);
    }
}

/// Campaign results are a pure function of (seed, tasks): worker count
/// and proxy pool size never change outcomes.
fn check_campaign_parallelism_independence(
    seed: u64,
    workers_a: usize,
    workers_b: usize,
    pool: usize,
) {
    let synth = SynthConfig { seed, scale: 150 };
    let world = World::generate_states(synth, &[UsState::Utah]);
    let tasks: Vec<QueryTask> = world
        .states
        .iter()
        .flat_map(|sw| sw.usac.records.iter())
        .take(60)
        .map(|r| QueryTask {
            address: r.address.id,
            isp: r.isp,
        })
        .collect();
    if tasks.is_empty() {
        return;
    }
    let run = |workers: usize, pool: usize| {
        Campaign::new(CampaignConfig {
            seed,
            workers,
            max_attempts: 3,
            proxy_pool_size: pool,
            ..CampaignConfig::default()
        })
        .run(&world.truth, &tasks)
        .records
    };
    let a = run(workers_a, pool);
    let b = run(workers_b, 16);
    assert_eq!(a, b);
}

/// Sampling never exceeds the CBG population and always hits the
/// rule's floor when possible.
fn check_sampling_rule_bounds(min: usize, frac: f64) {
    let rule = SamplingRule {
        min_per_cbg: min,
        fraction: frac,
    };
    for n in [1usize, 5, 29, 30, 31, 299, 300, 301, 5_000] {
        let k = rule.sample_size(n);
        assert!(k <= n);
        assert!(k >= ((frac * n as f64).ceil() as usize).min(n));
        if n >= min {
            assert!(k >= min.min(n));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs a full (small) pipeline
        .. ProptestConfig::default()
    })]

    #[test]
    fn audit_invariants_hold_for_any_seed(seed in 0u64..10_000) {
        check_audit_invariants(seed);
    }

    #[test]
    fn campaign_outcomes_independent_of_parallelism(
        seed in 0u64..10_000,
        workers_a in 1usize..6,
        workers_b in 1usize..6,
        pool in 1usize..32,
    ) {
        check_campaign_parallelism_independence(seed, workers_a, workers_b, pool);
    }

    #[test]
    fn sampling_rule_bounds(seed in 0u64..10_000, min in 0usize..60, frac in 0.01f64..1.0) {
        check_sampling_rule_bounds(min, frac);
        let _ = seed;
    }
}

#[test]
fn smoke_audit_invariants_at_fixed_seeds() {
    for seed in [0u64, 2024, 9999] {
        check_audit_invariants(seed);
    }
}

#[test]
fn smoke_campaign_parallelism_independence() {
    check_campaign_parallelism_independence(7, 1, 5, 3);
}

#[test]
fn smoke_sampling_rule_bounds() {
    check_sampling_rule_bounds(0, 0.01);
    check_sampling_rule_bounds(30, 0.10);
    check_sampling_rule_bounds(59, 0.99);
}
