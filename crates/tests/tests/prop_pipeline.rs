//! Property-based integration tests: pipeline invariants that must hold
//! for *any* seed and scale, not just the calibrated defaults.

use caf_bqt::{Campaign, CampaignConfig, QueryTask};
use caf_core::{Audit, AuditConfig, ComplianceAnalysis, SamplingRule, ServiceabilityAnalysis};
use caf_geo::UsState;
use caf_synth::{SynthConfig, World};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs a full (small) pipeline
        .. ProptestConfig::default()
    })]

    /// For any seed, rates are probabilities, compliance never exceeds
    /// serviceability, and coverage accounting reconciles.
    #[test]
    fn audit_invariants_hold_for_any_seed(seed in 0u64..10_000) {
        let synth = SynthConfig { seed, scale: 80 };
        let world = World::generate_states(synth, &[UsState::Vermont]);
        let audit = Audit::new(AuditConfig {
            synth,
            campaign: CampaignConfig { seed, workers: 2, ..CampaignConfig::default() },
            rule: SamplingRule::paper(),
            resample_rounds: 1,
        });
        let dataset = audit.run(&world);
        prop_assume!(!dataset.rows.is_empty());

        let serviceability = ServiceabilityAnalysis::compute(&dataset);
        let compliance = ComplianceAnalysis::compute(&dataset);
        let s = serviceability.overall_rate();
        let c = compliance.overall_rate();
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(c <= s + 1e-9);

        let collected: usize = dataset.coverage.iter().map(|x| x.collected).sum();
        prop_assert_eq!(collected, dataset.rows.len());
        for cov in &dataset.coverage {
            prop_assert!(cov.collected <= cov.queried);
            prop_assert!(cov.queried <= cov.total);
        }
    }

    /// Campaign results are a pure function of (seed, tasks): worker count
    /// and proxy pool size never change outcomes.
    #[test]
    fn campaign_outcomes_independent_of_parallelism(
        seed in 0u64..10_000,
        workers_a in 1usize..6,
        workers_b in 1usize..6,
        pool in 1usize..32,
    ) {
        let synth = SynthConfig { seed, scale: 150 };
        let world = World::generate_states(synth, &[UsState::Utah]);
        let tasks: Vec<QueryTask> = world
            .states
            .iter()
            .flat_map(|sw| sw.usac.records.iter())
            .take(60)
            .map(|r| QueryTask { address: r.address.id, isp: r.isp })
            .collect();
        prop_assume!(!tasks.is_empty());
        let run = |workers: usize, pool: usize| {
            Campaign::new(CampaignConfig {
                seed,
                workers,
                max_attempts: 3,
                proxy_pool_size: pool,
                ..CampaignConfig::default()
            })
            .run(&world.truth, &tasks)
            .records
        };
        let a = run(workers_a, pool);
        let b = run(workers_b, 16);
        prop_assert_eq!(a, b);
    }

    /// Sampling never exceeds the CBG population and always hits the
    /// rule's floor when possible.
    #[test]
    fn sampling_rule_bounds(seed in 0u64..10_000, min in 0usize..60, frac in 0.01f64..1.0) {
        let rule = SamplingRule { min_per_cbg: min, fraction: frac };
        for n in [1usize, 5, 29, 30, 31, 299, 300, 301, 5_000] {
            let k = rule.sample_size(n);
            prop_assert!(k <= n);
            prop_assert!(k >= ((frac * n as f64).ceil() as usize).min(n));
            if n >= min {
                prop_assert!(k >= min.min(n));
            }
        }
        let _ = seed;
    }
}
