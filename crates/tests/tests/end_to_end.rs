//! Cross-crate integration: the full pipeline from synthetic world to
//! headline report, exercising caf-geo, caf-synth, caf-bqt, caf-core and
//! caf-dataframe together.

use caf_bqt::CampaignConfig;
use caf_core::{
    Audit, AuditConfig, ComplianceAnalysis, EfficacyReport, SamplingRule, ServiceabilityAnalysis,
};
use caf_dataframe::{Agg, AggSpec, DataFrame};
use caf_geo::UsState;
use caf_synth::{Isp, SynthConfig, World};

fn run_audit(seed: u64, scale: u32, states: &[UsState]) -> (World, caf_core::AuditDataset) {
    let synth = SynthConfig { seed, scale };
    let world = World::generate_states(synth, states);
    let audit = Audit::new(AuditConfig {
        synth,
        campaign: CampaignConfig {
            seed,
            workers: 3,
            ..CampaignConfig::default()
        },
        rule: SamplingRule::paper(),
        resample_rounds: 2,
    });
    let dataset = audit.run(&world);
    (world, dataset)
}

#[test]
fn pipeline_runs_end_to_end_and_reports() {
    let (_, dataset) = run_audit(1, 40, &[UsState::Alabama, UsState::Vermont]);
    let serviceability = ServiceabilityAnalysis::compute(&dataset);
    let compliance = ComplianceAnalysis::compute(&dataset);
    let report = EfficacyReport::assemble(&serviceability, &compliance, None);
    assert!(report.serviceability > 0.0 && report.serviceability < 1.0);
    assert!(report.compliance <= report.serviceability + 1e-9);
    assert!(report.per_isp.len() >= 3, "AL has AT&T/CL/Frontier + Cons");
    let text = report.render();
    assert!(text.contains("Serviceability rate"));
}

#[test]
fn audit_dataframe_supports_relational_reanalysis() {
    // The dataframe path must reproduce what the typed analysis computes:
    // group the audit rows by ISP and compare FractionTrue(served)
    // against a hand count.
    let (_, dataset) = run_audit(2, 40, &[UsState::Alabama]);
    let df = dataset.to_dataframe();
    let by_isp = df
        .group_by(
            &["isp"],
            &[
                AggSpec::new(Agg::Count, "n"),
                AggSpec::new(Agg::FractionTrue("served".into()), "rate"),
            ],
        )
        .expect("valid group-by");
    assert!(by_isp.n_rows() >= 3);
    for row in by_isp.rows() {
        let isp_name = row.str("isp").expect("isp column");
        let isp = Isp::from_name(&isp_name).expect("known isp");
        let expected_n = dataset.rows_for(isp).count();
        let expected_served = dataset.rows_for(isp).filter(|r| r.served).count();
        assert_eq!(row.i64("n").expect("count"), expected_n as i64);
        let rate = row.f64("rate").expect("rate");
        assert!((rate - expected_served as f64 / expected_n as f64).abs() < 1e-12);
    }
}

#[test]
fn audit_dataframe_round_trips_through_csv() {
    let (_, dataset) = run_audit(3, 60, &[UsState::Vermont]);
    let df = dataset.to_dataframe();
    let csv = df.to_csv();
    let back = DataFrame::from_csv(&csv).expect("csv parses");
    assert_eq!(back.n_rows(), df.n_rows());
    assert_eq!(back.names(), df.names());
    // Spot-check a served row's speed survives the trip.
    for i in 0..df.n_rows() {
        if df.row(i).bool("served") == Some(true) {
            assert_eq!(back.row(i).f64("max_down"), df.row(i).f64("max_down"));
            break;
        }
    }
}

#[test]
fn pipeline_is_deterministic_and_seed_sensitive() {
    let (_, a) = run_audit(4, 60, &[UsState::Utah]);
    let (_, b) = run_audit(4, 60, &[UsState::Utah]);
    let (_, c) = run_audit(5, 60, &[UsState::Utah]);
    let rate = |ds: &caf_core::AuditDataset| ServiceabilityAnalysis::compute(ds).overall_rate();
    assert_eq!(rate(&a), rate(&b), "same seed, same result");
    assert_eq!(a.rows.len(), b.rows.len());
    assert_ne!(rate(&a), rate(&c), "different seed, different draw");
}

#[test]
fn certified_speeds_always_pass_while_advertised_do_not() {
    // The paper's central discrepancy: the regulator-facing dataset is
    // 100 % compliant on paper, the consumer-facing one is not.
    let (world, dataset) = run_audit(6, 40, &[UsState::Alabama]);
    for sw in &world.states {
        for record in &sw.usac.records {
            assert!(record.certified_down_mbps >= 10.0);
            assert!(record.certified_up_mbps >= 1.0);
        }
    }
    let compliance = ComplianceAnalysis::compute(&dataset);
    assert!(
        compliance.overall_rate() < 0.9,
        "advertised reality must fall short of certified claims"
    );
}

#[test]
fn geography_identifiers_flow_through_the_whole_pipeline() {
    // A GEOID minted in caf-geo must arrive intact in the analysis rows.
    let (world, dataset) = run_audit(7, 60, &[UsState::NewHampshire]);
    let nh = world.state(UsState::NewHampshire).expect("generated");
    for row in &dataset.rows {
        assert_eq!(row.cbg.state().code(), 33, "NH FIPS is 33");
        // The CBG must exist in the generated geography.
        assert!(
            nh.geography.cbgs.iter().any(|c| c.id == row.cbg),
            "row references unknown CBG {}",
            row.cbg
        );
        // And the GEOID string round-trips through the display format.
        let parsed: caf_geo::BlockGroupId = row.cbg.to_string().parse().expect("GEOID parses");
        assert_eq!(parsed, row.cbg);
    }
}
