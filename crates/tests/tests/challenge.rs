//! The incremental-recompute determinism contract, exercised across
//! crates: folding a challenge delta stream into a live world with
//! [`IncrementalAudit::refresh`] must produce **byte-identical**
//! artifacts to regenerating the world and re-auditing it from scratch
//! at the same epoch — at any worker count, under any shard policy, and
//! for any batch decomposition of the stream.
//!
//! This is the property that lets `caf-serve` answer a historical-epoch
//! query by rebuilding from the delta log prefix, and lets `ci.sh`
//! byte-diff `challenge_replay --mode incremental` against
//! `--mode full`.

use caf_bqt::CampaignConfig;
use caf_core::{
    artifact, Audit, AuditConfig, AuditDataset, AuditIndex, ComplianceAnalysis, EngineConfig,
    IncrementalAudit, SamplingRule, ScenarioMeta, ServiceabilityAnalysis, ShardPolicy,
};
use caf_geo::UsState;
use caf_synth::{ChallengeDelta, Correction, SynthConfig, World};

const SEED: u64 = 0xCAF_2024;
const SCALE: u32 = 40;

fn states() -> [UsState; 4] {
    [
        UsState::Alabama,
        UsState::NewHampshire,
        UsState::Utah,
        UsState::Vermont,
    ]
}

fn audit_at(seed: u64) -> Audit {
    Audit::new(AuditConfig {
        synth: SynthConfig { seed, scale: SCALE },
        campaign: CampaignConfig {
            seed,
            workers: 8,
            ..CampaignConfig::default()
        },
        rule: SamplingRule::paper(),
        resample_rounds: 2,
    })
}

fn world_at(seed: u64) -> World {
    World::generate_states(SynthConfig { seed, scale: SCALE }, &states())
}

/// A delta stream touching every study state in the fixture, with both
/// correction kinds and a deliberate overwrite (last-writer-wins). ISPs
/// are resolved from the world's geography, since the cell -> ISP
/// assignment is RNG-dependent.
fn sample_stream(world: &World) -> Vec<ChallengeDelta> {
    let cell = |state: UsState, cbg: usize, correction: Correction| {
        let sw = world
            .states
            .iter()
            .find(|sw| sw.state == state)
            .expect("state in world");
        assert!(cbg < sw.geography.cbgs.len(), "cbg in range for {state:?}");
        ChallengeDelta {
            state,
            cbg,
            isp: sw.geography.cbgs[cbg].isp,
            correction,
        }
    };
    vec![
        cell(
            UsState::Alabama,
            0,
            Correction::Availability { rate_ppm: 90_000 },
        ),
        cell(
            UsState::Vermont,
            0,
            Correction::CertifiedTier {
                down_mbps: 25,
                up_mbps: 3,
            },
        ),
        cell(
            UsState::Utah,
            1,
            Correction::Availability { rate_ppm: 640_000 },
        ),
        cell(
            UsState::NewHampshire,
            0,
            Correction::Availability { rate_ppm: 10_000 },
        ),
        // Overwrites the first Alabama correction and composes a tier
        // correction onto the same cell.
        cell(
            UsState::Alabama,
            0,
            Correction::Availability { rate_ppm: 250_000 },
        ),
        cell(
            UsState::Alabama,
            0,
            Correction::CertifiedTier {
                down_mbps: 100,
                up_mbps: 10,
            },
        ),
    ]
}

/// The full canonical artifact bundle at the dataset's epoch: the exact
/// bytes `repro --artifacts`, `caf-serve`, and `challenge_replay` emit.
fn canonical_bundle(dataset: &AuditDataset, epoch: u64) -> String {
    let index = AuditIndex::build_at(dataset, epoch);
    assert_eq!(index.epoch(), epoch);
    let serviceability = ServiceabilityAnalysis::from_index(&index);
    let compliance = ComplianceAnalysis::from_index(dataset, &index);
    let meta = ScenarioMeta::new(SEED, SCALE).at_epoch(epoch);
    [
        artifact::serviceability(&serviceability, None),
        artifact::compliance(&compliance, dataset, None),
        artifact::table2(dataset),
    ]
    .into_iter()
    .map(|body| artifact::to_canonical_bytes(&meta.wrap(body)))
    .collect()
}

#[test]
fn incremental_refresh_matches_fresh_rebuild_across_engines() {
    // The from-scratch truth: regenerate the world, fold the whole
    // stream in one batch, audit everything.
    let audit = audit_at(SEED);
    let mut fresh_world = world_at(SEED);
    let deltas = sample_stream(&fresh_world);
    fresh_world
        .apply_deltas(&deltas)
        .expect("stream is valid against its own world");
    let expected_records = audit
        .run_with(&fresh_world, EngineConfig::serial())
        .records
        .clone();
    let expected = canonical_bundle(
        &audit.run_with(&fresh_world, EngineConfig::serial()),
        fresh_world.epoch,
    );

    for workers in [1usize, 2, 4] {
        for policy in [
            ShardPolicy::finest(),
            ShardPolicy::default_policy(),
            ShardPolicy::disabled(),
        ] {
            let engine = EngineConfig::with_workers(workers).with_shard_policy(policy);
            let mut world = world_at(SEED);
            let mut inc = IncrementalAudit::build(audit_at(SEED), &world, engine);
            let outcome = world.apply_deltas(&deltas).expect("valid stream");
            inc.refresh(&world, &outcome, engine);
            assert_eq!(world.epoch, fresh_world.epoch);

            let dataset = inc.dataset();
            assert_eq!(
                dataset.records, expected_records,
                "query records diverged at {workers} workers / {policy:?}"
            );
            assert_eq!(
                canonical_bundle(&dataset, world.epoch),
                expected,
                "artifact bytes diverged at {workers} workers / {policy:?}"
            );
        }
    }
}

#[test]
fn batch_decomposition_does_not_change_the_result() {
    let probe = world_at(SEED);
    let deltas = sample_stream(&probe);
    let engine = EngineConfig::with_workers(2);

    // Apply the same stream three ways: one batch, singleton batches,
    // and pairs. Same final epoch, same bytes.
    let bundles: Vec<(u64, String)> = [deltas.len(), 1, 2]
        .into_iter()
        .map(|batch| {
            let mut world = world_at(SEED);
            let mut inc = IncrementalAudit::build(audit_at(SEED), &world, engine);
            for chunk in deltas.chunks(batch) {
                let outcome = world.apply_deltas(chunk).expect("valid chunk");
                assert_eq!(outcome.applied, chunk.len());
                inc.refresh(&world, &outcome, engine);
            }
            assert_eq!(world.epoch, deltas.len() as u64);
            (world.epoch, canonical_bundle(&inc.dataset(), world.epoch))
        })
        .collect();
    assert_eq!(bundles[0], bundles[1], "singleton batches diverged");
    assert_eq!(bundles[0], bundles[2], "paired batches diverged");
}

#[test]
fn epoch_prefixes_replay_to_distinct_but_deterministic_views() {
    let probe = world_at(SEED);
    let deltas = sample_stream(&probe);
    let engine = EngineConfig::serial();

    // Walk the incremental world delta-by-delta, capturing each epoch's
    // bundle; every prefix rebuilt from scratch must land on the same
    // bytes (this is how caf-serve answers historical-epoch queries).
    let mut world = world_at(SEED);
    let mut inc = IncrementalAudit::build(audit_at(SEED), &world, engine);
    let mut walked = vec![canonical_bundle(&inc.dataset(), 0)];
    for delta in &deltas {
        let outcome = world
            .apply_deltas(std::slice::from_ref(delta))
            .expect("valid delta");
        inc.refresh(&world, &outcome, engine);
        walked.push(canonical_bundle(&inc.dataset(), world.epoch));
    }

    for epoch in [0usize, 1, 4, deltas.len()] {
        let mut prefix_world = world_at(SEED);
        if epoch > 0 {
            prefix_world
                .apply_deltas(&deltas[..epoch])
                .expect("valid prefix");
        }
        let dataset = audit_at(SEED).run_with(&prefix_world, engine);
        assert_eq!(
            canonical_bundle(&dataset, epoch as u64),
            walked[epoch],
            "epoch {epoch} prefix rebuild diverged from the walked view"
        );
    }

    // Distinct epochs are genuinely distinct views, not a no-op chain
    // (the availability corrections move rates, which moves artifacts).
    assert_ne!(walked[0], walked[deltas.len()]);
}
