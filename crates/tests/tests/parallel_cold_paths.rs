//! Cold-path determinism regression: world generation and bootstrap
//! resampling must produce **identical** output at any engine worker
//! count, mirroring what `determinism.rs` pins for the audit hot path.
//!
//! Both paths run on `caf_exec::map_units` shard plans with
//! entity-keyed randomness (per-CBG and per-block streams for world
//! generation, per-replicate streams for the bootstrap), so neither the
//! worker count nor the shard policy can move anything but wall-clock
//! time. The worker count for the parallel side is taken from the
//! `CAF_EQUIV_WORKERS` environment variable (default 4) so CI can
//! exercise two different pool shapes against the same pinned serial
//! fingerprint; the shard-policy matrix is pinned explicitly via
//! `EngineConfig::with_shard_policy`.

use caf_core::{EngineConfig, ServiceabilityAnalysis, ShardPolicy};
use caf_geo::UsState;
use caf_stats::{bootstrap_ci, bootstrap_ci_on, bootstrap_indices_ci, bootstrap_indices_ci_on};
use caf_synth::{SynthConfig, World};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

const SEED: u64 = 0xCAF_C01D;
const SCALE: u32 = 40;

/// Worker count for the parallel side of every equivalence check.
fn equiv_workers() -> usize {
    std::env::var("CAF_EQUIV_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn states() -> [UsState; 4] {
    [
        UsState::Alabama,
        UsState::Mississippi,
        UsState::NewHampshire,
        UsState::Vermont,
    ]
}

/// A content fingerprint of a generated world: the full Debug rendering
/// of every state (geography, USAC records, Q3 blocks) plus a truth
/// probe for every (address, ISP) pair the state worlds reference. The
/// truth table is a HashMap, so it is fingerprinted through keyed
/// lookups rather than iteration order.
fn world_fingerprint(world: &World) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{:?}", world.states).hash(&mut h);
    world.truth.len().hash(&mut h);
    for sw in &world.states {
        for r in &sw.usac.records {
            format!("{:?}", world.truth.get(r.address.id, r.isp)).hash(&mut h);
        }
        for block in &sw.q3.blocks {
            for a in &block.addresses {
                format!("{:?}", world.truth.get(a.address.id, block.caf_isp)).hash(&mut h);
            }
        }
    }
    h.finish()
}

#[test]
fn worker_count_does_not_change_generated_world() {
    let config = SynthConfig {
        seed: SEED,
        scale: SCALE,
    };
    let serial = World::generate_states(config, &states());
    let serial_print = world_fingerprint(&serial);

    let workers = equiv_workers();
    let parallel =
        World::generate_states_on(config, &states(), EngineConfig::with_workers(workers));
    assert_eq!(
        world_fingerprint(&parallel),
        serial_print,
        "world fingerprint diverged at {workers} workers"
    );

    // Guard against the degenerate explanation (a fingerprint blind to
    // its input would also be "deterministic").
    let other = World::generate_states(
        SynthConfig {
            seed: SEED ^ 0x5DEECE66D,
            scale: SCALE,
        },
        &states(),
    );
    assert_ne!(
        world_fingerprint(&other),
        serial_print,
        "distinct seeds must produce distinct worlds"
    );
}

#[test]
fn worker_count_does_not_change_bootstrap_cis() {
    let workers = equiv_workers();

    // Synthetic but non-trivial sample: a deterministic sawtooth with a
    // heavy tail, so the replicate means actually spread.
    let sample: Vec<f64> = (0..257)
        .map(|i| ((i * 37 % 101) as f64) + if i % 11 == 0 { 50.0 } else { 0.0 })
        .collect();
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;

    let serial = bootstrap_ci(&sample, mean, 500, 0.95, SEED).unwrap();
    for w in [1usize, workers] {
        let engine = EngineConfig::with_workers(w);
        let parallel = bootstrap_ci_on(engine, &sample, mean, 500, 0.95, SEED).unwrap();
        assert_eq!(serial, parallel, "bootstrap_ci diverged at {w} workers");
    }

    // The index variant shares the same replicate streams.
    let indexed = bootstrap_indices_ci(
        sample.len(),
        |idx| idx.iter().map(|&i| sample[i]).sum::<f64>() / idx.len() as f64,
        500,
        0.95,
        SEED,
    )
    .unwrap();
    assert_eq!(serial, indexed);
    let indexed_parallel = bootstrap_indices_ci_on(
        EngineConfig::with_workers(workers),
        sample.len(),
        |idx| idx.iter().map(|&i| sample[i]).sum::<f64>() / idx.len() as f64,
        500,
        0.95,
        SEED,
    )
    .unwrap();
    assert_eq!(serial, indexed_parallel);
}

/// Shard-policy bit-identity: world, audit, and bootstrap artifacts
/// must hash identically whether giant units are split to the bone
/// (one element per shard), split by the default cost threshold, or
/// not split at all — at every worker count. This is the acceptance
/// contract of the cost-aware scheduler: shard boundaries move wall
/// clock, never bytes.
#[test]
fn shard_policy_does_not_change_any_artifact() {
    let synth = SynthConfig { seed: 7, scale: 30 };
    let run = |engine: EngineConfig| {
        let world = World::generate_states_on(synth, &states()[..2], engine);
        let audit = caf_core::Audit::new(caf_core::AuditConfig {
            synth,
            campaign: caf_bqt::CampaignConfig {
                seed: synth.seed,
                workers: 2,
                ..caf_bqt::CampaignConfig::default()
            },
            rule: caf_core::SamplingRule::paper(),
            resample_rounds: 1,
        });
        let dataset = audit.run_with(&world, engine);
        let ci = ServiceabilityAnalysis::compute(&dataset)
            .overall_rate_ci_on(engine, 400, 0.95, 99)
            .unwrap();
        let mut h = DefaultHasher::new();
        world_fingerprint(&world).hash(&mut h);
        format!("{:?}", dataset.rows).hash(&mut h);
        format!("{:?}", dataset.records).hash(&mut h);
        format!("{ci:?}").hash(&mut h);
        h.finish()
    };
    let baseline = run(EngineConfig::serial().with_shard_policy(ShardPolicy::disabled()));
    for policy in [
        ShardPolicy::finest(),
        ShardPolicy::default_policy(),
        ShardPolicy::disabled(),
    ] {
        for workers in [1usize, 2, 4] {
            let hash = run(EngineConfig::with_workers(workers).with_shard_policy(policy));
            assert_eq!(
                hash, baseline,
                "artifacts diverged under {policy:?} at {workers} workers"
            );
        }
    }
}

#[test]
fn worker_count_does_not_change_pipeline_cis() {
    // End to end: the Q1 serviceability CI resamples real audit rows
    // through the engine-aware bootstrap. Serial and parallel runs of
    // the full world → audit → CI pipeline must agree to the bit.
    let workers = equiv_workers();
    let synth = SynthConfig { seed: 7, scale: 30 };
    let run = |engine: EngineConfig| {
        let world = World::generate_states_on(synth, &states()[..2], engine);
        let audit = caf_core::Audit::new(caf_core::AuditConfig {
            synth,
            campaign: caf_bqt::CampaignConfig {
                seed: synth.seed,
                workers: 2,
                ..caf_bqt::CampaignConfig::default()
            },
            rule: caf_core::SamplingRule::paper(),
            resample_rounds: 1,
        });
        let dataset = audit.run_with(&world, engine);
        let analysis = ServiceabilityAnalysis::compute(&dataset);
        analysis.overall_rate_ci_on(engine, 400, 0.95, 99).unwrap()
    };
    let serial = run(EngineConfig::serial());
    let parallel = run(EngineConfig::with_workers(workers));
    assert_eq!(
        serial, parallel,
        "pipeline CI diverged at {workers} workers"
    );
}
