//! Engine determinism regression: the audit must produce **identical**
//! output at any engine worker count — same analysis rows, same query
//! records, same coverage telemetry, and byte-identical CSV artifacts.
//!
//! This is the determinism contract of `caf_core::engine` exercised end
//! to end: per-state units share only the immutable truth store, every
//! random draw is entity-keyed, and partials merge in fixed state order,
//! so the worker count can only move wall-clock time, never bytes. The
//! CSV assertions replicate the `repro dump` artifact formats so a
//! regression here is exactly a regression in the shipped artifacts.

use caf_bqt::CampaignConfig;
use caf_core::{
    Audit, AuditConfig, AuditDataset, EngineConfig, SamplingRule, ServiceabilityAnalysis,
};
use caf_geo::UsState;
use caf_synth::{SynthConfig, World};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

const SEED: u64 = 0xCAF_2024;
const SCALE: u32 = 40;

fn states() -> [UsState; 4] {
    [
        UsState::Alabama,
        UsState::NewHampshire,
        UsState::Utah,
        UsState::Vermont,
    ]
}

fn audit_at(seed: u64) -> (World, Audit) {
    let synth = SynthConfig { seed, scale: SCALE };
    let world = World::generate_states(synth, &states());
    let audit = Audit::new(AuditConfig {
        synth,
        campaign: CampaignConfig {
            seed,
            workers: 8,
            ..CampaignConfig::default()
        },
        rule: SamplingRule::paper(),
        resample_rounds: 2,
    });
    (world, audit)
}

/// The `repro dump` artifact bundle, rebuilt from a dataset: the audit
/// row dataframe, the per-CBG serviceability CSV, and the query-record
/// CSV, concatenated. Formats mirror `crates/bench/src/bin/repro.rs`.
fn dump_csv(dataset: &AuditDataset) -> String {
    let mut out = dataset.to_dataframe().to_csv();

    out.push_str("isp,state,cbg,rate,weight,density,density_pct,n\n");
    let analysis = ServiceabilityAnalysis::compute(dataset);
    for r in &analysis.cbg_rates {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.isp.name(),
            r.state.abbrev(),
            r.cbg,
            r.rate,
            r.weight,
            r.density,
            r.density_pct,
            r.n
        ));
    }

    out.push_str("addr_id,isp,outcome,attempts,errors,duration_secs\n");
    for r in &dataset.records {
        out.push_str(&format!(
            "{},{},{},{},{},{:.3}\n",
            r.address.0,
            r.isp.name(),
            r.outcome.label(),
            r.attempts,
            r.errors.len(),
            r.duration_secs
        ));
    }
    out
}

fn hash_of(s: &str) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

#[test]
fn worker_count_does_not_change_audit_output() {
    let (world, audit) = audit_at(SEED);
    let serial = audit.run_with(&world, EngineConfig::serial());
    let serial_csv = dump_csv(&serial);
    let serial_hash = hash_of(&serial_csv);

    for workers in [2usize, 8] {
        let parallel = audit.run_with(&world, EngineConfig::with_workers(workers));

        // Structural equality on all three dataset components.
        assert_eq!(
            serial.records, parallel.records,
            "query records diverged at {workers} workers"
        );
        assert_eq!(
            serial.rows.len(),
            parallel.rows.len(),
            "row count diverged at {workers} workers"
        );
        let coverage = |d: &AuditDataset| -> Vec<_> {
            d.coverage
                .iter()
                .map(|c| (c.isp, c.cbg, c.total, c.queried, c.collected))
                .collect()
        };
        assert_eq!(
            coverage(&serial),
            coverage(&parallel),
            "coverage diverged at {workers} workers"
        );

        // Byte-identical artifacts: the dump CSVs — and therefore their
        // hashes — must not move.
        let csv = dump_csv(&parallel);
        assert_eq!(
            hash_of(&csv),
            serial_hash,
            "dump artifact hash diverged at {workers} workers"
        );
        assert_eq!(csv, serial_csv);
    }
}

#[test]
fn telemetry_does_not_change_audit_output() {
    // The caf-obs layer is observation-only: enabling it must not move a
    // byte of audit output, at any worker count. Run the same audit with
    // telemetry off and on, serial and parallel, and compare artifact
    // hashes. (The enabled flag is process-global; restore it before the
    // final assertions so a panic path can't leak state into other tests
    // in this binary — none of which read it.)
    let (world, audit) = audit_at(SEED);

    caf_obs::set_enabled(false);
    let baseline = hash_of(&dump_csv(&audit.run_with(&world, EngineConfig::serial())));

    let mut instrumented = Vec::new();
    caf_obs::set_enabled(true);
    for workers in [1usize, 4] {
        let dataset = audit.run_with(&world, EngineConfig::with_workers(workers));
        instrumented.push((workers, hash_of(&dump_csv(&dataset))));
    }
    caf_obs::set_enabled(false);

    for (workers, hash) in instrumented {
        assert_eq!(
            hash, baseline,
            "telemetry changed the audit artifact at {workers} workers"
        );
    }

    // The instrumented runs actually recorded telemetry — otherwise this
    // test would vacuously pass with a disabled registry.
    let spans = caf_obs::registry().span_snapshot();
    assert!(
        spans.iter().any(|(path, _)| path.contains("state.")),
        "instrumented audit recorded no per-state spans"
    );
}

#[test]
fn different_seeds_still_differ() {
    // Guard against the degenerate explanation for the test above (an
    // audit that ignores its inputs would also be "deterministic").
    let (world_a, audit_a) = audit_at(SEED);
    let (world_b, audit_b) = audit_at(SEED ^ 0x5DEECE66D);
    let a = audit_a.run_with(&world_a, EngineConfig::with_workers(4));
    let b = audit_b.run_with(&world_b, EngineConfig::with_workers(4));
    assert_ne!(
        hash_of(&dump_csv(&a)),
        hash_of(&dump_csv(&b)),
        "distinct seeds must produce distinct audit artifacts"
    );
}
