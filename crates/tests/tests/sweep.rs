//! Cross-crate determinism matrix for the policy sweep engine: every
//! scheduling shape — worker count × shard policy × steal on/off —
//! must emit byte-identical canonical JSON and CSV. This is the same
//! contract ci.sh proves end-to-end through the `caf-sweep` binary;
//! here it is pinned at the library layer across the full matrix.

use caf_core::artifact::to_canonical_bytes;
use caf_exec::ShardPolicy;
use caf_sweep::{results_artifact, results_table, SweepOptions, SweepRun, SweepSpec};

/// Two states at two scales so the plan has real cost skew (Vermont at
/// 1000 is four times New Hampshire at 2000) without debug-mode runs
/// getting expensive; two tiers and both subsidy rules exercise the
/// policy axes.
fn spec() -> SweepSpec {
    SweepSpec::from_json(
        r#"{
            "seed": 11,
            "states": ["VT", "NH"],
            "scales": [1000, 2000],
            "speed_tiers": ["10_1", "25_3"],
            "price_cap_multipliers": [0.75, 1.0],
            "subsidy_rules": ["status_quo", "full_buildout"]
        }"#,
    )
    .expect("matrix spec is valid")
}

#[test]
fn emissions_are_byte_identical_across_the_full_schedule_matrix() {
    let spec = spec();
    let reference = SweepRun::run(
        &spec,
        SweepOptions {
            workers: 1,
            steal: false,
            policy: ShardPolicy::disabled(),
        },
    );
    let reference_json = to_canonical_bytes(&results_artifact(&reference));
    let reference_csv = results_table(&reference).to_csv();
    assert_eq!(reference.results.len(), spec.cell_count());

    for workers in [1usize, 2, 4] {
        for steal in [false, true] {
            for (name, policy) in [
                ("finest", ShardPolicy::finest()),
                ("default", ShardPolicy::default_policy()),
                ("disabled", ShardPolicy::disabled()),
            ] {
                let run = SweepRun::run(
                    &spec,
                    SweepOptions {
                        workers,
                        steal,
                        policy,
                    },
                );
                let label = format!("workers={workers} steal={steal} policy={name}");
                assert_eq!(
                    to_canonical_bytes(&results_artifact(&run)),
                    reference_json,
                    "{label}"
                );
                assert_eq!(results_table(&run).to_csv(), reference_csv, "{label}");
            }
        }
    }
}

#[test]
fn committed_ci_spec_stays_valid() {
    // ci.sh runs the release binary over this committed file; a test
    // keeps the file honest without paying for a 48-cell debug run.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../testdata/sweep_spec.json"
    );
    let text = std::fs::read_to_string(path).expect("committed sweep spec exists");
    let spec = SweepSpec::from_json(&text).expect("committed sweep spec parses");
    assert_eq!(spec.cell_count(), 48);
    // Keys must be unique across the grid — the content-addressed
    // cache contract.
    let mut keys: Vec<_> = spec.cells().iter().map(|c| c.key(spec.seed)).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), 48);
}
