//! A versioned, checksummed binary snapshot container.
//!
//! `caf-snap` is the serialization substrate for persistent world
//! snapshots and the disk cache tier: a deliberately boring,
//! dependency-free binary format that favors *verifiability* over
//! compactness. Every value is fixed-width little-endian or
//! length-prefixed, every section carries its own checksum, and
//! the header carries a content hash over the whole section region —
//! a snapshot is either provably intact or it is rejected. Nothing in
//! this crate knows about worlds or audits; domain crates implement
//! [`Snap`] for their own types.
//!
//! ## Container layout
//!
//! ```text
//! magic            8 bytes   "CAFSNAP1"
//! format_version   u32       rejected unless == FORMAT_VERSION
//! seed             u64       scenario identity…
//! scale            u32       …rejected on mismatch by the loader
//! epoch            u64       challenge epoch the snapshot captures
//! section_count    u32
//! content_hash     u64       content_hash64 over the whole file minus this field
//! section*         repeated  tag u32 · len u64 · payload · content_hash64(payload) u64
//! ```
//!
//! Decoding is fully bounds-checked: a truncated or bit-flipped file
//! yields a [`SnapError`], never a panic and never silently wrong
//! bytes. That property is what lets `caf-serve` treat a bad snapshot
//! as "fall back to a cold build" instead of a crash loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Magic bytes every snapshot file starts with.
pub const MAGIC: [u8; 8] = *b"CAFSNAP1";

/// The container format version this crate reads and writes. Bumped on
/// any layout change; old files are rejected (cold rebuild), never
/// migrated in place.
pub const FORMAT_VERSION: u32 = 1;

/// Why a snapshot (or one of its sections) failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended before a fixed-width read completed.
    UnexpectedEof {
        /// Bytes the read needed.
        need: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// A section's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// Tag of the corrupt section.
        tag: u32,
    },
    /// The header's content hash does not match the section region.
    ContentHashMismatch,
    /// Bytes remained after the last declared section.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
    /// A decoded value violated a domain invariant (bad enum
    /// discriminant, out-of-range index, invalid UTF-8, …).
    Malformed(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::UnexpectedEof { need, have } => {
                write!(
                    f,
                    "unexpected end of snapshot: needed {need} bytes, had {have}"
                )
            }
            SnapError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {FORMAT_VERSION})"
            ),
            SnapError::ChecksumMismatch { tag } => {
                write!(f, "section {tag:#x} failed its checksum")
            }
            SnapError::ContentHashMismatch => write!(f, "snapshot content hash mismatch"),
            SnapError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after the last section")
            }
            SnapError::Malformed(message) => write!(f, "malformed snapshot value: {message}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// 64-bit FNV-1a, byte-at-a-time (the serving layer uses the same
/// function for ETags). The container itself checksums with
/// [`content_hash64`], which is an order of magnitude faster on the
/// megabyte-scale payloads snapshots carry.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The container's content hash: 8-byte little-endian chunks through an
/// xor-rotate-multiply mix. Checksum verification sits on the restore
/// hot path — a byte-at-a-time FNV walk over a megabyte snapshot costs
/// milliseconds where this costs hundreds of microseconds. Every step
/// of the chain is invertible (xor, rotate, multiply by an odd
/// constant), so any single-bit flip anywhere in the input changes the
/// final value; a trailing length mix keeps payloads that differ only
/// in trailing zero bytes from colliding through tail padding.
pub fn content_hash64(bytes: &[u8]) -> u64 {
    content_hash64_seeded(0x9e37_79b9_7f4a_7c15, bytes)
}

/// Continues a content hash over more bytes (for hashing disjoint
/// regions as one logical stream).
fn content_hash64_seeded(mut hash: u64, bytes: &[u8]) -> u64 {
    const M: u64 = 0x517c_c1b7_2722_0a95;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let v = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        hash = (hash.rotate_left(5) ^ v).wrapping_mul(M);
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut v = [0u8; 8];
        v[..tail.len()].copy_from_slice(tail);
        hash = (hash.rotate_left(5) ^ u64::from_le_bytes(v)).wrapping_mul(M);
    }
    (hash.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(M)
}

/// An append-only encoder over a growable byte buffer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern (byte-exact
    /// round-trips, including NaN payloads and signed zeros).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a `usize` as a `u64` (lossless on every supported
    /// target).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends raw bytes with no length prefix (caller-framed).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Encodes any [`Snap`] value.
    pub fn put<T: Snap>(&mut self, v: &T) {
        v.encode(self);
    }

    /// Encodes a slice as a length-prefixed sequence.
    pub fn put_seq<T: Snap>(&mut self, items: &[T]) {
        self.put_u64(items.len() as u64);
        for item in items {
            item.encode(self);
        }
    }
}

/// A bounds-checked decoder over a byte slice. Every read returns
/// `Err(SnapError::UnexpectedEof)` rather than panicking when the
/// stream is short.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::UnexpectedEof {
                need: n,
                have: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        let bytes = self.take(2)?;
        Ok(u16::from_le_bytes(bytes.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("len 8")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting any byte other than 0 or 1.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapError::Malformed(format!("bool byte {other}"))),
        }
    }

    /// Reads a `usize`, rejecting values that do not fit the target.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Malformed(format!("usize overflow: {v}")))
    }

    /// Reads a length prefix that must be coverable by the remaining
    /// bytes — the cheap way to reject absurd lengths from corrupt
    /// streams before allocating for them.
    pub fn len_prefix(&mut self) -> Result<usize, SnapError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(SnapError::UnexpectedEof {
                need: len,
                have: self.remaining(),
            });
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let len = self.len_prefix()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapError::Malformed("invalid UTF-8 in string".to_string()))
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.len_prefix()?;
        self.take(len)
    }

    /// Decodes any [`Snap`] value.
    pub fn get<T: Snap>(&mut self) -> Result<T, SnapError> {
        T::decode(self)
    }

    /// Decodes a length-prefixed sequence. Each element costs at least
    /// one byte, so the length prefix is validated against the
    /// remaining input before any allocation.
    pub fn get_seq<T: Snap>(&mut self) -> Result<Vec<T>, SnapError> {
        let len = self.len_prefix()?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(self)?);
        }
        Ok(items)
    }

    /// Fails unless every byte was consumed — the guard against a
    /// decoder that silently ignores half a corrupt payload.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }
}

/// A type with a canonical binary encoding. Implementations must
/// round-trip exactly: `decode(encode(v)) == v`, bit-for-bit for
/// floats. Decoders validate domain invariants and return
/// [`SnapError::Malformed`] instead of constructing invalid values.
pub trait Snap: Sized {
    /// Appends this value's canonical encoding.
    fn encode(&self, w: &mut Writer);
    /// Decodes one value, consuming exactly the bytes `encode` wrote.
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError>;
}

impl Snap for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.u8()
    }
}

impl Snap for u16 {
    fn encode(&self, w: &mut Writer) {
        w.put_u16(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.u16()
    }
}

impl Snap for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.u32()
    }
}

impl Snap for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.u64()
    }
}

impl Snap for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.usize()
    }
}

impl Snap for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.f64()
    }
}

impl Snap for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.bool()
    }
}

impl Snap for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.str()
    }
}

impl<T: Snap> Snap for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(SnapError::Malformed(format!("Option tag {other}"))),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_seq(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.get_seq()
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl Snap for std::ops::Range<usize> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.start);
        w.put_usize(self.end);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let start = r.usize()?;
        let end = r.usize()?;
        if start > end {
            return Err(SnapError::Malformed(format!(
                "inverted range {start}..{end}"
            )));
        }
        Ok(start..end)
    }
}

/// The scenario identity a snapshot was taken for. A loader compares
/// `seed`/`scale` against its own configuration and treats a mismatch
/// exactly like corruption: the snapshot is not for this world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Container format version ([`FORMAT_VERSION`] when written by
    /// this build).
    pub format_version: u32,
    /// World seed the snapshot captures.
    pub seed: u64,
    /// World downscale factor the snapshot captures.
    pub scale: u32,
    /// Challenge epoch of the snapshotted world.
    pub epoch: u64,
}

/// Builds a snapshot container: header + tagged, checksummed sections.
pub struct SnapshotBuilder {
    seed: u64,
    scale: u32,
    epoch: u64,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// A builder for the given scenario identity.
    pub fn new(seed: u64, scale: u32, epoch: u64) -> SnapshotBuilder {
        SnapshotBuilder {
            seed,
            scale,
            epoch,
            sections: Vec::new(),
        }
    }

    /// Appends a section; `fill` encodes the payload. Section order is
    /// preserved and hashed — two snapshots of identical state are
    /// byte-identical files.
    pub fn section(&mut self, tag: u32, fill: impl FnOnce(&mut Writer)) {
        let mut w = Writer::new();
        fill(&mut w);
        self.sections.push((tag, w.into_bytes()));
    }

    /// Serializes the container.
    pub fn finish(self) -> Vec<u8> {
        let mut region = Writer::new();
        for (tag, payload) in &self.sections {
            region.put_u32(*tag);
            region.put_u64(payload.len() as u64);
            region.put_raw(payload);
            region.put_u64(content_hash64(payload));
        }
        let region = region.into_bytes();

        let mut prefix = Writer::new();
        prefix.put_raw(&MAGIC);
        prefix.put_u32(FORMAT_VERSION);
        prefix.put_u64(self.seed);
        prefix.put_u32(self.scale);
        prefix.put_u64(self.epoch);
        prefix.put_u32(self.sections.len() as u32);
        let prefix = prefix.into_bytes();
        // The content hash covers everything except itself: header
        // identity fields included, so a bit flip in `seed` is as
        // detectable as one in a payload.
        let hash = content_hash64_seeded(content_hash64(&prefix), &region);

        let mut out = Writer::new();
        out.put_raw(&prefix);
        out.put_u64(hash);
        out.put_raw(&region);
        out.into_bytes()
    }
}

/// A parsed, fully verified snapshot container.
///
/// Sections are stored as byte ranges into the buffer handed to
/// [`Snapshot::parse`], so a caller that owns the buffer can lift a
/// range out with [`Snapshot::section_range`], drop the parse borrow,
/// and move the buffer elsewhere (e.g. to a background decode thread)
/// without copying the payload.
pub struct Snapshot<'a> {
    /// The verified header.
    pub header: SnapshotHeader,
    bytes: &'a [u8],
    sections: Vec<(u32, core::ops::Range<usize>)>,
}

/// Reads just the header, verifying magic and version but not the
/// content hash — cheap enough to run on every candidate file when
/// picking the newest compatible snapshot in a directory.
pub fn peek_header(bytes: &[u8]) -> Result<SnapshotHeader, SnapError> {
    let mut r = Reader::new(bytes);
    if r.take(MAGIC.len())? != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let format_version = r.u32()?;
    if format_version != FORMAT_VERSION {
        return Err(SnapError::UnsupportedVersion {
            found: format_version,
        });
    }
    Ok(SnapshotHeader {
        format_version,
        seed: r.u64()?,
        scale: r.u32()?,
        epoch: r.u64()?,
    })
}

impl<'a> Snapshot<'a> {
    /// Parses and verifies a container: magic, version, content hash,
    /// per-section checksums, and exact framing (no trailing bytes).
    pub fn parse(bytes: &'a [u8]) -> Result<Snapshot<'a>, SnapError> {
        let header = peek_header(bytes)?;
        let mut r = Reader::new(bytes);
        // The hashed prefix: magic through section_count inclusive.
        let prefix = r.take(MAGIC.len() + 4 + 8 + 4 + 8 + 4)?;
        let section_count =
            u32::from_le_bytes(prefix[prefix.len() - 4..].try_into().expect("len 4"));
        let content_hash = r.u64()?;
        let region = r.take(r.remaining())?;
        if content_hash64_seeded(content_hash64(prefix), region) != content_hash {
            return Err(SnapError::ContentHashMismatch);
        }

        let mut r = Reader::new(region);
        let mut sections = Vec::with_capacity(section_count as usize);
        for _ in 0..section_count {
            let tag = r.u32()?;
            let len = r.usize()?;
            let payload = r.take(len)?;
            let checksum = r.u64()?;
            if content_hash64(payload) != checksum {
                return Err(SnapError::ChecksumMismatch { tag });
            }
            // Offset arithmetic on pointers into the same allocation:
            // `payload` is a subslice of `bytes` by construction.
            let start = payload.as_ptr() as usize - bytes.as_ptr() as usize;
            sections.push((tag, start..start + payload.len()));
        }
        r.finish()?;
        Ok(Snapshot {
            header,
            bytes,
            sections,
        })
    }

    /// The payload of the first section with `tag`, if present.
    pub fn section(&self, tag: u32) -> Option<&'a [u8]> {
        self.section_range(tag).map(|range| &self.bytes[range])
    }

    /// The byte range of the first section with `tag` within the
    /// buffer passed to [`Snapshot::parse`], if present.
    pub fn section_range(&self, tag: u32) -> Option<core::ops::Range<usize>> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, range)| range.clone())
    }

    /// All section tags in file order.
    pub fn sections(&self) -> impl Iterator<Item = (u32, &'a [u8])> + '_ {
        self.sections
            .iter()
            .map(|(tag, range)| (*tag, &self.bytes[range.clone()]))
    }
}

/// Writes `bytes` to `path` atomically: a unique temp file in the same
/// directory, flushed, then renamed over the target. Readers never see
/// a partial file; a crash leaves at worst a `.tmp` that directory
/// scans ignore.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("snapshot");
    let tmp = dir.join(format!(".{}.{}.tmp", name, std::process::id()));
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put(&0xabu8);
        w.put(&0xbeefu16);
        w.put(&0xdead_beefu32);
        w.put(&0x0123_4567_89ab_cdefu64);
        w.put(&usize::MAX);
        w.put(&f64::NEG_INFINITY);
        w.put(&-0.0f64);
        w.put(&true);
        w.put(&"hé llo".to_string());
        w.put(&Some(7u32));
        w.put(&None::<u32>);
        w.put(&vec![1u64, 2, 3]);
        w.put(&(4u8, "x".to_string()));
        w.put(&(3usize..9));
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get::<u8>().unwrap(), 0xab);
        assert_eq!(r.get::<u16>().unwrap(), 0xbeef);
        assert_eq!(r.get::<u32>().unwrap(), 0xdead_beef);
        assert_eq!(r.get::<u64>().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.get::<usize>().unwrap(), usize::MAX);
        assert_eq!(r.get::<f64>().unwrap(), f64::NEG_INFINITY);
        assert_eq!(r.get::<f64>().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get::<bool>().unwrap());
        assert_eq!(r.get::<String>().unwrap(), "hé llo");
        assert_eq!(r.get::<Option<u32>>().unwrap(), Some(7));
        assert_eq!(r.get::<Option<u32>>().unwrap(), None);
        assert_eq!(r.get::<Vec<u64>>().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get::<(u8, String)>().unwrap(), (4, "x".to_string()));
        assert_eq!(r.get::<std::ops::Range<usize>>().unwrap(), 3..9);
        r.finish().unwrap();
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f64::from_bits(0x7ff8_dead_beef_cafe);
        let mut w = Writer::new();
        w.put(&weird);
        let bytes = w.into_bytes();
        let got = Reader::new(&bytes).get::<f64>().unwrap();
        assert_eq!(got.to_bits(), weird.to_bits());
    }

    #[test]
    fn short_reads_error_instead_of_panicking() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(matches!(
            r.u64(),
            Err(SnapError::UnexpectedEof { need: 8, have: 3 })
        ));
        // A corrupt length prefix (huge) is rejected before allocation.
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).get_seq::<u8>(),
            Err(SnapError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn malformed_values_are_rejected() {
        assert!(matches!(
            Reader::new(&[2]).bool(),
            Err(SnapError::Malformed(_))
        ));
        assert!(matches!(
            Reader::new(&[3, 0]).get::<Option<u8>>(),
            Err(SnapError::Malformed(_))
        ));
        let mut w = Writer::new();
        w.put_u64(1);
        w.put_raw(&[0xff]); // invalid UTF-8
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).str(),
            Err(SnapError::Malformed(_))
        ));
        let mut w = Writer::new();
        w.put_usize(9);
        w.put_usize(3);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).get::<std::ops::Range<usize>>(),
            Err(SnapError::Malformed(_))
        ));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let r = Reader::new(&[0; 4]);
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes { count: 4 }));
    }

    fn sample_container() -> Vec<u8> {
        let mut b = SnapshotBuilder::new(0xCAF, 150, 3);
        b.section(0x10, |w| w.put_str("world"));
        b.section(0x20, |w| w.put_seq(&[1u64, 2, 3]));
        b.finish()
    }

    #[test]
    fn container_round_trips_and_is_deterministic() {
        let bytes = sample_container();
        assert_eq!(bytes, sample_container(), "same state, same file bytes");
        let snap = Snapshot::parse(&bytes).unwrap();
        assert_eq!(
            snap.header,
            SnapshotHeader {
                format_version: FORMAT_VERSION,
                seed: 0xCAF,
                scale: 150,
                epoch: 3,
            }
        );
        assert_eq!(snap.sections().count(), 2);
        let mut r = Reader::new(snap.section(0x10).unwrap());
        assert_eq!(r.str().unwrap(), "world");
        let mut r = Reader::new(snap.section(0x20).unwrap());
        assert_eq!(r.get_seq::<u64>().unwrap(), vec![1, 2, 3]);
        assert!(snap.section(0x99).is_none());
    }

    #[test]
    fn header_peek_matches_full_parse() {
        let bytes = sample_container();
        let header = peek_header(&bytes).unwrap();
        assert_eq!(header, Snapshot::parse(&bytes).unwrap().header);
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = sample_container();
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::parse(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn any_flipped_bit_is_detected() {
        let bytes = sample_container();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(
                Snapshot::parse(&corrupt).is_err(),
                "flip at byte {i} must be rejected"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_specific_errors() {
        let bytes = sample_container();
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(peek_header(&bad_magic), Err(SnapError::BadMagic)));
        assert!(matches!(
            Snapshot::parse(&bad_magic),
            Err(SnapError::BadMagic)
        ));
        let mut bad_version = bytes.clone();
        bad_version[8] = 0xEE;
        assert!(matches!(
            peek_header(&bad_version),
            Err(SnapError::UnsupportedVersion { found }) if found != FORMAT_VERSION
        ));
        assert!(matches!(
            Snapshot::parse(&bad_version),
            Err(SnapError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn flipped_section_byte_reports_checksum_mismatch() {
        let bytes = sample_container();
        // Locate the "world" payload and flip a byte inside it — but
        // that also breaks the content hash, which is checked first.
        let pos = bytes
            .windows(5)
            .position(|w| w == b"world")
            .expect("payload present");
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x01;
        assert!(matches!(
            Snapshot::parse(&corrupt),
            Err(SnapError::ContentHashMismatch)
        ));
    }

    #[test]
    fn atomic_write_lands_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("caf-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.snap");
        let bytes = sample_container();
        write_atomic(&path, &bytes).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "no temp files after a clean write");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
