//! The §9.1 sampling-rate sensitivity analysis (Figure 9).
//!
//! To check that the max(30, 10 %) rule does not distort serviceability
//! estimates, the paper selects census block groups with more than 30
//! addresses, queries at least 75 % of each as ground truth, and then
//! measures the error of serviceability estimates computed from smaller
//! random samples at varying rates. Errors stay under 5 percentage points
//! at every rate, evidencing diminishing returns from extra queries.

use crate::engine::{map_slice, EngineConfig};
use caf_bqt::{Campaign, CampaignConfig, QueryTask};
use caf_geo::AddressId;
use caf_synth::rng::scoped_rng;
use caf_synth::{Isp, World};
use rand::seq::SliceRandom;
use std::ops::Range;

/// One sweep point: the mean absolute serviceability error at a sampling
/// rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Sampling rate in `(0, 1]`.
    pub rate: f64,
    /// Mean absolute error vs the ≥75 %-sample ground truth, in
    /// percentage points.
    pub mean_abs_error_pct: f64,
    /// Worst-case CBG error at this rate, in percentage points.
    pub max_abs_error_pct: f64,
}

/// The sensitivity analysis.
#[derive(Debug)]
pub struct SensitivityAnalysis {
    /// CBGs used (those with more than `min_size` addresses).
    pub cbgs_used: usize,
    /// One point per sampled rate.
    pub sweep: Vec<SweepPoint>,
}

impl SensitivityAnalysis {
    /// Runs the sweep for one ISP over the world's states.
    ///
    /// * `cbg_budget` — how many qualifying CBGs to use (paper: 46).
    /// * `rates` — sampling rates to evaluate (paper: 10–75 %).
    /// * `repeats` — random redraws per rate, errors averaged.
    pub fn run(
        world: &World,
        isp: Isp,
        campaign_config: CampaignConfig,
        cbg_budget: usize,
        rates: &[f64],
        repeats: usize,
    ) -> SensitivityAnalysis {
        Self::run_on(
            world,
            isp,
            campaign_config,
            cbg_budget,
            rates,
            repeats,
            EngineConfig::serial(),
        )
    }

    /// [`run`](SensitivityAnalysis::run) with the per-rate sweep fanned
    /// out across an engine worker pool. The sweep's redraws are keyed
    /// by `(rate index, CBG index, repeat)`, so the result is identical
    /// at any worker count; the ground-truth campaign itself runs once,
    /// before the sweep, on the campaign's own worker budget.
    #[allow(clippy::too_many_arguments)]
    pub fn run_on(
        world: &World,
        isp: Isp,
        campaign_config: CampaignConfig,
        cbg_budget: usize,
        rates: &[f64],
        repeats: usize,
        engine: EngineConfig,
    ) -> SensitivityAnalysis {
        assert!(repeats >= 1, "need at least one repeat");
        let campaign = Campaign::new(campaign_config);
        let seed = campaign_config.seed;

        // Qualifying CBGs: more than 30 addresses, the figure's premise.
        let mut cbg_addresses: Vec<Vec<AddressId>> = Vec::new();
        for sw in &world.states {
            for (cell_isp, _cbg, indices) in sw.usac.cbg_cells() {
                if cell_isp != isp || indices.len() <= 30 {
                    continue;
                }
                cbg_addresses.push(
                    indices
                        .iter()
                        .map(|&i| sw.usac.records[i].address.id)
                        .collect(),
                );
                if cbg_addresses.len() >= cbg_budget {
                    break;
                }
            }
            if cbg_addresses.len() >= cbg_budget {
                break;
            }
        }

        // Ground truth: query 75 % of each CBG (deterministic draw). The
        // per-CBG samples are concatenated into a single task list and
        // run as ONE campaign — outcomes are keyed by (seed, address,
        // ISP), so this yields exactly the records of the old
        // one-campaign-per-CBG loop while paying the campaign's
        // fan-out/teardown cost once. `ranges[ci]` slices CBG `ci`'s
        // records back out (the campaign preserves task order).
        let mut tasks: Vec<QueryTask> = Vec::new();
        let mut ranges: Vec<Range<usize>> = Vec::with_capacity(cbg_addresses.len());
        for (ci, addresses) in cbg_addresses.iter().enumerate() {
            let mut pool = addresses.clone();
            let mut rng = scoped_rng(seed, "sensitivity-truth", ci as u64);
            pool.shuffle(&mut rng);
            let take = ((pool.len() as f64) * 0.75).ceil() as usize;
            let start = tasks.len();
            tasks.extend(
                pool[..take.max(1)]
                    .iter()
                    .map(|&address| QueryTask { address, isp }),
            );
            ranges.push(start..tasks.len());
        }
        let result = campaign.run(&world.truth, &tasks);

        // Per-CBG truth rates plus a sorted per-CBG outcome table (the
        // sweep's lookup structure — binary-searched, no HashMap).
        let mut truth_rate: Vec<f64> = Vec::with_capacity(cbg_addresses.len());
        let mut cbg_outcomes: Vec<Vec<(AddressId, bool)>> = Vec::with_capacity(cbg_addresses.len());
        for range in &ranges {
            let mut served = 0usize;
            let mut definitive = 0usize;
            let mut outcomes: Vec<(AddressId, bool)> = Vec::new();
            for record in &result.records[range.clone()] {
                if let Some(s) = record.outcome.is_served() {
                    definitive += 1;
                    if s {
                        served += 1;
                    }
                    outcomes.push((record.address, s));
                }
            }
            outcomes.sort_unstable_by_key(|&(address, _)| address);
            cbg_outcomes.push(outcomes);
            truth_rate.push(if definitive == 0 {
                0.0
            } else {
                served as f64 / definitive as f64
            });
        }

        // Sweep: estimate serviceability from sub-samples *of the already
        // queried addresses* (re-querying would be free here but was not
        // in the paper; sub-sampling matches its method). Each rate is an
        // independent work unit — its redraws are keyed by
        // `(ri, ci, rep)`, never by a shared stream — so the sweep fans
        // out on the engine pool with byte-identical results.
        let sweep_workers = engine.for_units(rates.len()).workers;
        let sweep = map_slice(sweep_workers, rates, |ri, &rate| {
            let mut errors: Vec<f64> = Vec::new();
            for (ci, addresses) in cbg_addresses.iter().enumerate() {
                let outcomes = &cbg_outcomes[ci];
                let outcome_of = |a: AddressId| -> Option<bool> {
                    outcomes
                        .binary_search_by_key(&a, |&(address, _)| address)
                        .ok()
                        .map(|i| outcomes[i].1)
                };
                let queried: Vec<AddressId> = addresses
                    .iter()
                    .copied()
                    .filter(|&a| outcome_of(a).is_some())
                    .collect();
                if queried.is_empty() {
                    continue;
                }
                for rep in 0..repeats {
                    let mut pool = queried.clone();
                    let mut rng = scoped_rng(
                        seed,
                        "sensitivity-sweep",
                        (ri as u64) << 32 | (ci as u64) << 8 | rep as u64,
                    );
                    pool.shuffle(&mut rng);
                    let take = ((pool.len() as f64) * rate).ceil() as usize;
                    let sample = &pool[..take.max(1)];
                    let served = sample
                        .iter()
                        .filter(|&&a| outcome_of(a) == Some(true))
                        .count();
                    let estimate = served as f64 / sample.len() as f64;
                    errors.push(100.0 * (estimate - truth_rate[ci]).abs());
                }
            }
            let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
            let max = errors.iter().cloned().fold(0.0, f64::max);
            SweepPoint {
                rate,
                mean_abs_error_pct: mean,
                max_abs_error_pct: max,
            }
        });

        SensitivityAnalysis {
            cbgs_used: cbg_addresses.len(),
            sweep,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_geo::UsState;
    use caf_synth::SynthConfig;

    #[test]
    fn errors_shrink_with_rate_and_stay_bounded() {
        let synth = SynthConfig {
            seed: 88,
            scale: 30,
        };
        let world = World::generate_states(synth, &[UsState::Mississippi]);
        let analysis = SensitivityAnalysis::run(
            &world,
            Isp::Att,
            CampaignConfig {
                seed: synth.seed,
                workers: 4,
                ..CampaignConfig::default()
            },
            12,
            &[0.10, 0.30, 0.60],
            5,
        );
        assert!(analysis.cbgs_used > 5, "used {}", analysis.cbgs_used);
        assert_eq!(analysis.sweep.len(), 3);
        // Monotone-ish improvement: the densest sample beats the sparsest.
        let first = analysis.sweep.first().unwrap();
        let last = analysis.sweep.last().unwrap();
        assert!(
            last.mean_abs_error_pct <= first.mean_abs_error_pct + 1.0,
            "first {first:?} last {last:?}"
        );
        // Figure 9's claim: errors under ~5 points at modest rates. Allow
        // slack for the smaller synthetic CBGs.
        for point in &analysis.sweep {
            assert!(
                point.mean_abs_error_pct < 15.0,
                "rate {} error {}",
                point.rate,
                point.mean_abs_error_pct
            );
            assert!(point.max_abs_error_pct >= point.mean_abs_error_pct);
        }
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let synth = SynthConfig {
            seed: 88,
            scale: 25,
        };
        let world = World::generate_states(synth, &[UsState::Mississippi]);
        let config = CampaignConfig {
            seed: synth.seed,
            workers: 2,
            ..CampaignConfig::default()
        };
        let rates = [0.10, 0.30, 0.60];
        let serial = SensitivityAnalysis::run(&world, Isp::Att, config, 8, &rates, 3);
        let parallel = SensitivityAnalysis::run_on(
            &world,
            Isp::Att,
            config,
            8,
            &rates,
            3,
            EngineConfig::with_workers(4),
        );
        assert_eq!(serial.cbgs_used, parallel.cbgs_used);
        assert_eq!(serial.sweep, parallel.sweep);
    }

    #[test]
    #[should_panic(expected = "at least one repeat")]
    fn zero_repeats_rejected() {
        let synth = SynthConfig {
            seed: 1,
            scale: 100,
        };
        let world = World::generate_states(synth, &[UsState::Vermont]);
        SensitivityAnalysis::run(
            &world,
            Isp::Consolidated,
            CampaignConfig::default(),
            5,
            &[0.5],
            0,
        );
    }
}
