//! End-to-end audit orchestration: sample → query → resample → dataset.
//!
//! [`Audit::run`] executes the paper's data-collection loop for every
//! state in a [`World`]: draw the §3.1 sampling plan, run the BQT
//! campaign over the drawn addresses, and for addresses whose queries end
//! non-definitively (Unknown tracebacks, AT&T "Call to Order" pages) draw
//! replacements from the same census block group, up to a bounded number
//! of rounds (§3.2, §5). The output [`AuditDataset`] carries one analysis
//! row per definitive query plus the raw query records and per-CBG
//! coverage telemetry that Figures 7, 8, 11 and Table 2 consume.
//!
//! States are independent work units, so the loop runs on the
//! [`engine`](crate::engine) worker pool: [`Audit::run_with`] picks the
//! worker count, [`Audit::run_for`] restricts the audit to a state
//! subset, and both merge per-state partials in caller order — output is
//! byte-identical at any worker count (see the engine module's
//! determinism contract).

use caf_bqt::{Campaign, CampaignConfig, CampaignResult, QueryRecord, QueryTask};
use caf_dataframe::{Column, DataFrame};
use caf_geo::{AddressId, BlockGroupId, LatLon, UsState};
use caf_synth::{BroadbandPlan, Isp, StateWorld, SynthConfig, TruthTable, World};
use std::collections::HashMap;

use crate::engine::{map_units, CostHint, EngineConfig};
use crate::sampling::{SamplingPlan, SamplingRule};

/// Configuration of a full audit.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// The synthetic-world configuration (seed + scale).
    pub synth: SynthConfig,
    /// The BQT campaign configuration.
    pub campaign: CampaignConfig,
    /// The per-CBG sampling rule.
    pub rule: SamplingRule,
    /// How many replacement rounds to run for non-definitive queries.
    pub resample_rounds: u32,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        let synth = SynthConfig::default();
        AuditConfig {
            synth,
            campaign: CampaignConfig {
                seed: synth.seed,
                ..CampaignConfig::default()
            },
            rule: SamplingRule::paper(),
            resample_rounds: 2,
        }
    }
}

/// One analysis row: a definitive query outcome with its geography.
#[derive(Debug, Clone)]
pub struct AuditRow {
    /// The queried address.
    pub address: AddressId,
    /// The audited ISP.
    pub isp: Isp,
    /// The state.
    pub state: UsState,
    /// The census block group.
    pub cbg: BlockGroupId,
    /// Total CAF addresses in the CBG (the aggregation weight).
    pub cbg_total: usize,
    /// The CBG's population density (people per square mile).
    pub density: f64,
    /// The CBG's within-state density percentile.
    pub density_pct: f64,
    /// The CBG centroid (Figure 10 mapping).
    pub centroid: LatLon,
    /// Whether the ISP serves the address.
    pub served: bool,
    /// Maximum advertised download speed, if served and specified.
    pub max_down_mbps: Option<f64>,
    /// The maximum-tier plan, if served.
    pub max_plan: Option<BroadbandPlan>,
    /// Every advertised plan at the address (empty if unserved). The CAF
    /// conditions are met if *any* of them passes the speed and rate
    /// standards.
    pub plans: Vec<BroadbandPlan>,
    /// Whether the site showed an existing-subscriber flow.
    pub existing_subscriber: bool,
}

/// Per-(ISP, CBG) coverage telemetry for Figures 7 and 8.
#[derive(Debug, Clone, Copy)]
pub struct CbgCoverage {
    /// The ISP.
    pub isp: Isp,
    /// The CBG.
    pub cbg: BlockGroupId,
    /// Total CAF addresses in the CBG.
    pub total: usize,
    /// Addresses queried (primary + replacements used).
    pub queried: usize,
    /// Addresses with definitive outcomes ("collected").
    pub collected: usize,
}

impl CbgCoverage {
    /// Percent of the CBG's addresses queried (Figure 7's x-axis).
    pub fn queried_pct(&self) -> f64 {
        100.0 * self.queried as f64 / self.total.max(1) as f64
    }

    /// Percent of the CBG's addresses collected (Figure 8's x-axis).
    pub fn collected_pct(&self) -> f64 {
        100.0 * self.collected as f64 / self.total.max(1) as f64
    }
}

/// The audit output.
#[derive(Debug)]
pub struct AuditDataset {
    /// Analysis rows (definitive outcomes only).
    pub rows: Vec<AuditRow>,
    /// Every query record, including failures and resample rounds.
    pub records: Vec<QueryRecord>,
    /// Per-(ISP, CBG) coverage.
    pub coverage: Vec<CbgCoverage>,
}

impl AuditDataset {
    /// Rows for one ISP.
    pub fn rows_for(&self, isp: Isp) -> impl Iterator<Item = &AuditRow> {
        self.rows.iter().filter(move |r| r.isp == isp)
    }

    /// Converts the analysis rows to a dataframe: `addr_id, isp, state,
    /// cbg, cbg_total, density, density_pct, served, max_down, price,
    /// guaranteed`.
    pub fn to_dataframe(&self) -> DataFrame {
        let n = self.rows.len();
        let mut addr = Vec::with_capacity(n);
        let mut isp = Vec::with_capacity(n);
        let mut state = Vec::with_capacity(n);
        let mut cbg = Vec::with_capacity(n);
        let mut cbg_total = Vec::with_capacity(n);
        let mut density = Vec::with_capacity(n);
        let mut density_pct = Vec::with_capacity(n);
        let mut served = Vec::with_capacity(n);
        let mut max_down: Vec<Option<f64>> = Vec::with_capacity(n);
        let mut price: Vec<Option<f64>> = Vec::with_capacity(n);
        let mut guaranteed: Vec<Option<bool>> = Vec::with_capacity(n);
        for r in &self.rows {
            addr.push(r.address.0 as i64);
            isp.push(r.isp.name());
            state.push(r.state.abbrev());
            cbg.push(r.cbg.to_string());
            cbg_total.push(r.cbg_total as i64);
            density.push(r.density);
            density_pct.push(r.density_pct);
            served.push(r.served);
            max_down.push(r.max_down_mbps);
            price.push(r.max_plan.as_ref().map(|p| p.monthly_usd));
            guaranteed.push(r.max_plan.as_ref().map(|p| p.speed_guaranteed));
        }
        DataFrame::new(vec![
            ("addr_id", addr.into_iter().collect::<Column>()),
            ("isp", isp.into_iter().collect::<Column>()),
            ("state", state.into_iter().collect::<Column>()),
            ("cbg", cbg.into_iter().collect::<Column>()),
            ("cbg_total", cbg_total.into_iter().collect::<Column>()),
            ("density", density.into_iter().collect::<Column>()),
            ("density_pct", density_pct.into_iter().collect::<Column>()),
            ("served", served.into_iter().collect::<Column>()),
            ("max_down", Column::Float(max_down)),
            ("price", Column::Float(price)),
            ("guaranteed", Column::Bool(guaranteed)),
        ])
        .expect("columns constructed with equal lengths")
    }
}

/// The audit runner.
#[derive(Debug, Clone, Copy)]
pub struct Audit {
    config: AuditConfig,
}

impl Audit {
    /// Creates an audit with the given configuration.
    pub fn new(config: AuditConfig) -> Audit {
        Audit { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AuditConfig {
        &self.config
    }

    /// Runs the audit over every state in the world, on the default
    /// (auto-sized) engine. Equivalent to `run_with(world,
    /// EngineConfig::default())` — and, by the engine's determinism
    /// contract, to the sequential loop.
    pub fn run(&self, world: &World) -> AuditDataset {
        self.run_with(world, EngineConfig::default())
    }

    /// Runs the audit over every state in the world with an explicit
    /// engine configuration. Output is byte-identical at any worker
    /// count.
    pub fn run_with(&self, world: &World, engine: EngineConfig) -> AuditDataset {
        let units: Vec<&StateWorld> = world.states.iter().collect();
        self.run_units(&units, &world.truth, engine)
    }

    /// Runs the audit over a subset of the world's states, in the order
    /// given (states missing from the world are skipped). Because every
    /// unit is a pure function of `(seed, state)`, this reproduces
    /// exactly what a world generated from only those states would
    /// yield — ablations reuse one shared world instead of regenerating
    /// subset worlds.
    pub fn run_for(&self, world: &World, states: &[UsState], engine: EngineConfig) -> AuditDataset {
        let units: Vec<&StateWorld> = states
            .iter()
            .filter_map(|&state| world.state(state))
            .collect();
        self.run_units(&units, &world.truth, engine)
    }

    /// Runs the per-state units on the engine pool — sharded by
    /// contiguous (ISP, CBG) cell ranges when a state's estimated query
    /// volume dominates the per-worker share — and merges partials in
    /// unit order.
    ///
    /// Reassembly reproduces the unsharded record stream exactly: the
    /// full-state loop emits records *round-major* (all of round 0 in
    /// cell order, then round 1, ...), every query record is a pure
    /// function of (seed, address, ISP), and replacements are drawn
    /// per cell — so concatenating the shards' per-round groups within
    /// each round, rounds in order, is byte-identical to the whole-state
    /// run at any worker count or shard policy.
    fn run_units(
        &self,
        units: &[&StateWorld],
        truth: &TruthTable,
        engine: EngineConfig,
    ) -> AuditDataset {
        let hints = self.unit_hints(units);
        let plan = engine.plan(&hints);
        let configured = engine.workers;
        let engine = engine.for_plan(&plan);
        Self::record_plan_gauges(configured, engine.workers, units.len());
        let _audit_span = caf_obs::span("audit");
        let campaign = self.nested_campaign(&engine);
        let unit_partials = map_units(&plan, |shard| {
            self.audit_cells_each(&campaign, truth, units[shard.unit], shard.range.clone())
        });
        let _merge_span = caf_obs::span("merge");
        let mut rows = Vec::new();
        let mut records = Vec::new();
        let mut coverage = Vec::new();
        for shard_partials in unit_partials {
            // Shards arrive in ascending cell order, each holding one
            // partial per cell — flattening yields the unit's cells in
            // order, and the round-major merge reproduces the unsharded
            // record stream (see `audit_cells_each`).
            let merged = merge_round_major(shard_partials.into_iter().flatten().collect());
            flatten_partial(merged, &mut rows, &mut records, &mut coverage);
        }
        caf_obs::count("caf.core.audit.rows", rows.len() as u64);
        caf_obs::count("caf.core.audit.records", records.len() as u64);
        AuditDataset {
            rows,
            records,
            coverage,
        }
    }

    /// The per-unit cost hints `run_units` and the incremental audit
    /// plan with: a cell's cost is its primary sample size — the query
    /// volume the campaign will push through it.
    pub(crate) fn unit_hints(&self, units: &[&StateWorld]) -> Vec<CostHint> {
        units
            .iter()
            .map(|state_world| {
                CostHint::PerElement(
                    state_world
                        .usac
                        .cbg_cells()
                        .map(|(_, _, indices)| self.config.rule.sample_size(indices.len()) as u64)
                        .collect(),
                )
            })
            .collect()
    }

    /// The shared BQT campaign for a planned engine: the campaign's
    /// worker budget is divided across engine workers so state-level
    /// parallelism does not multiply thread counts (the campaign's
    /// results are worker-count independent).
    pub(crate) fn nested_campaign(&self, engine: &EngineConfig) -> Campaign {
        Campaign::new(
            self.config
                .campaign
                .with_workers(engine.nested_campaign_workers(self.config.campaign.workers)),
        )
    }

    /// Reports both sides of the worker clamp — `workers.configured` is
    /// what the caller asked for, `workers.effective` is what the shard
    /// count can actually keep busy.
    pub(crate) fn record_plan_gauges(configured: usize, effective: usize, units: usize) {
        caf_obs::gauge("caf.core.engine.workers.configured", configured as u64);
        caf_obs::gauge("caf.core.engine.workers.effective", effective as u64);
        caf_obs::gauge("caf.core.engine.units", units as u64);
    }

    /// One shard of a state's sample → query → resample loop, covering
    /// a contiguous (ISP, CBG) cell range — the whole state when the
    /// scheduler left the unit unsplit. Scheduling-independent by
    /// construction (every draw is keyed by seed + entity), with rows
    /// and records grouped **per cell, then per resample round**, so
    /// callers can reassemble the state's round-major stream across any
    /// shard decomposition *and* retain or replace individual cells
    /// (the incremental audit's unit of invalidation).
    ///
    /// Each cell's partial is independent of which shard computed it:
    /// sampling, querying, and resampling are per-cell (the replacement
    /// cursor never crosses cells), and within any round the shard's
    /// task stream is cell-major — so concatenating per-cell round
    /// groups in cell order reproduces the shard's record stream, and a
    /// cell recomputed alone differs from its in-shard computation only
    /// by absent trailing empty rounds, which the round-major merge
    /// erases.
    pub(crate) fn audit_cells_each(
        &self,
        campaign: &Campaign,
        truth: &TruthTable,
        state_world: &StateWorld,
        cells: std::ops::Range<usize>,
    ) -> Vec<StatePartial> {
        // On a pool worker the thread-local span stack is empty, so this
        // roots a per-state hierarchy (`state.VT/sample`, ...) no matter
        // which worker picked the unit (or shard) up.
        let _state_span = caf_obs::span_with(|| format!("state.{}", state_world.state.abbrev()));
        let plan = {
            let _span = caf_obs::span("sample");
            SamplingPlan::draw_cells(self.config.synth.seed, state_world, self.config.rule, cells)
        };

        // CBG metadata lookup for row construction.
        let mut cbg_meta: HashMap<(Isp, BlockGroupId), (usize, f64, f64, LatLon)> = HashMap::new();
        for cbg in &state_world.geography.cbgs {
            cbg_meta.insert(
                (cbg.isp, cbg.id),
                (
                    cbg.caf_addresses as usize,
                    cbg.density,
                    cbg.density_pct,
                    cbg.centroid,
                ),
            );
        }

        // Round 0: primaries. Later rounds: replacements for cells
        // with non-definitive outcomes.
        let mut partials: Vec<StatePartial> = plan
            .cells
            .iter()
            .map(|_| StatePartial {
                rows_by_round: Vec::new(),
                records_by_round: Vec::new(),
                coverage: Vec::new(),
            })
            .collect();
        let mut cell_of: HashMap<AddressId, usize> = HashMap::new();
        let mut tasks: Vec<QueryTask> = Vec::new();
        for (cell_idx, cell) in plan.cells.iter().enumerate() {
            for &addr in &cell.primary {
                cell_of.insert(addr, cell_idx);
                tasks.push(QueryTask {
                    address: addr,
                    isp: cell.isp,
                });
            }
        }
        let mut queried_per_cell: Vec<usize> = plan.cells.iter().map(|c| c.primary.len()).collect();
        let mut collected_per_cell: Vec<usize> = vec![0; plan.cells.len()];
        let mut replacement_cursor: Vec<usize> = vec![0; plan.cells.len()];

        let mut round = 0;
        while !tasks.is_empty() {
            let _round_span = caf_obs::span(if round == 0 { "campaign" } else { "resample" });
            let result: CampaignResult = campaign.run(truth, &tasks);
            for partial in &mut partials {
                partial.rows_by_round.push(Vec::new());
                partial.records_by_round.push(Vec::new());
            }
            let mut next_tasks: Vec<QueryTask> = Vec::new();
            for record in result.records {
                let cell_idx = cell_of[&record.address];
                let cell = &plan.cells[cell_idx];
                if record.outcome.is_definitive() {
                    collected_per_cell[cell_idx] += 1;
                    let (cbg_total, density, density_pct, centroid) =
                        cbg_meta[&(cell.isp, cell.cbg)];
                    let served = record.outcome.is_served().expect("definitive");
                    let (max_down, max_plan, all_plans, subscriber) = match &record.outcome {
                        caf_bqt::QueryOutcome::Serviceable {
                            plans,
                            existing_subscriber,
                        } => (
                            record.outcome.max_download_mbps(),
                            plans.first().cloned(),
                            plans.clone(),
                            *existing_subscriber,
                        ),
                        _ => (None, None, Vec::new(), false),
                    };
                    partials[cell_idx].rows_by_round[round].push(AuditRow {
                        address: record.address,
                        isp: cell.isp,
                        state: state_world.state,
                        cbg: cell.cbg,
                        cbg_total,
                        density,
                        density_pct,
                        centroid,
                        served,
                        max_down_mbps: max_down,
                        max_plan,
                        plans: all_plans,
                        existing_subscriber: subscriber,
                    });
                } else if (round as u32) < self.config.resample_rounds {
                    // Draw a replacement from the same CBG, if any left.
                    let cursor = &mut replacement_cursor[cell_idx];
                    if let Some(&replacement) = cell.replacements.get(*cursor) {
                        *cursor += 1;
                        queried_per_cell[cell_idx] += 1;
                        caf_obs::count("caf.core.audit.resampled", 1);
                        cell_of.insert(replacement, cell_idx);
                        next_tasks.push(QueryTask {
                            address: replacement,
                            isp: cell.isp,
                        });
                    }
                }
                partials[cell_idx].records_by_round[round].push(record);
            }
            tasks = next_tasks;
            round += 1;
        }

        for (cell_idx, cell) in plan.cells.iter().enumerate() {
            partials[cell_idx].coverage.push(CbgCoverage {
                isp: cell.isp,
                cbg: cell.cbg,
                total: cell.total_addresses,
                queried: queried_per_cell[cell_idx],
                collected: collected_per_cell[cell_idx],
            });
        }

        partials
    }
}

/// Merges per-cell (or per-shard) partials into one, preserving the
/// round-major stream order: within each round, partials contribute in
/// their given order; coverage concatenates in the same order. Partials
/// may have differing round counts — a partial without round `r` simply
/// contributes nothing to it, which is exactly how a cell that ran out
/// of resample work early behaves inside a bigger shard.
pub(crate) fn merge_round_major(mut partials: Vec<StatePartial>) -> StatePartial {
    let rounds = partials
        .iter()
        .map(|p| p.rows_by_round.len())
        .max()
        .unwrap_or(0);
    let mut rows_by_round: Vec<Vec<AuditRow>> = (0..rounds).map(|_| Vec::new()).collect();
    let mut records_by_round: Vec<Vec<QueryRecord>> = (0..rounds).map(|_| Vec::new()).collect();
    let mut coverage = Vec::new();
    for partial in &mut partials {
        for (round, rows) in partial.rows_by_round.iter_mut().enumerate() {
            rows_by_round[round].append(rows);
        }
        for (round, records) in partial.records_by_round.iter_mut().enumerate() {
            records_by_round[round].append(records);
        }
        coverage.append(&mut partial.coverage);
    }
    StatePartial {
        rows_by_round,
        records_by_round,
        coverage,
    }
}

/// Flattens one merged partial into dataset vectors: rounds in order
/// (the round-major stream), coverage appended as-is.
pub(crate) fn flatten_partial(
    partial: StatePartial,
    rows: &mut Vec<AuditRow>,
    records: &mut Vec<QueryRecord>,
    coverage: &mut Vec<CbgCoverage>,
) {
    for mut round_rows in partial.rows_by_round {
        rows.append(&mut round_rows);
    }
    for mut round_records in partial.records_by_round {
        records.append(&mut round_records);
    }
    coverage.extend(partial.coverage);
}

/// One cell's (or one merged shard's) output: rows and records grouped
/// by resample round (the unsharded stream is round-major, so partials
/// must be re-interleaved per round), coverage per cell in cell order.
/// Cloneable so the incremental audit can retain clean cells across
/// epochs and materialize datasets without recomputing them.
#[derive(Debug, Clone)]
pub(crate) struct StatePartial {
    pub(crate) rows_by_round: Vec<Vec<AuditRow>>,
    pub(crate) records_by_round: Vec<Vec<QueryRecord>>,
    pub(crate) coverage: Vec<CbgCoverage>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_audit() -> (World, AuditDataset) {
        let synth = SynthConfig {
            seed: 55,
            scale: 40,
        };
        let world = World::generate_states(synth, &[UsState::Vermont, UsState::Utah]);
        let audit = Audit::new(AuditConfig {
            synth,
            campaign: CampaignConfig {
                seed: synth.seed,
                workers: 2,
                ..CampaignConfig::default()
            },
            rule: SamplingRule::paper(),
            resample_rounds: 2,
        });
        let ds = audit.run(&world);
        (world, ds)
    }

    #[test]
    fn audit_produces_rows_and_coverage() {
        let (_, ds) = small_audit();
        assert!(!ds.rows.is_empty());
        assert!(!ds.coverage.is_empty());
        assert!(ds.records.len() >= ds.rows.len());
        // Every row is definitive by construction.
        for r in &ds.rows {
            if r.served {
                // Served rows may or may not specify a speed (Frontier's
                // Unknown Plan has none) but always carry a plan.
                assert!(r.max_plan.is_some());
            } else {
                assert!(r.max_plan.is_none());
                assert_eq!(r.max_down_mbps, None);
            }
        }
    }

    #[test]
    fn coverage_accounting_is_consistent() {
        let (_, ds) = small_audit();
        for cov in &ds.coverage {
            assert!(cov.collected <= cov.queried);
            assert!(cov.queried <= cov.total);
            assert!(cov.queried_pct() <= 100.0 + 1e-9);
            assert!(cov.collected_pct() <= cov.queried_pct() + 1e-9);
        }
        // Row counts reconcile with collected counts.
        let collected: usize = ds.coverage.iter().map(|c| c.collected).sum();
        assert_eq!(collected, ds.rows.len());
    }

    #[test]
    fn resampling_replaces_failures() {
        let (_, ds) = small_audit();
        // Some queries fail (Consolidated's high error rates), so some
        // cells must have queried more than their primary draw — visible
        // as records exceeding rows.
        assert!(
            ds.records.len() > ds.rows.len(),
            "expected non-definitive records triggering resamples"
        );
        // Replacement addresses are queried at most once each.
        let mut seen = std::collections::HashSet::new();
        for rec in &ds.records {
            assert!(seen.insert((rec.address, rec.isp)), "duplicate query");
        }
    }

    #[test]
    fn dataframe_export_matches_rows() {
        let (_, ds) = small_audit();
        let df = ds.to_dataframe();
        assert_eq!(df.n_rows(), ds.rows.len());
        let served_count = ds.rows.iter().filter(|r| r.served).count();
        let df_served = df.filter(|r| r.bool("served") == Some(true)).n_rows();
        assert_eq!(served_count, df_served);
    }

    #[test]
    fn audit_is_deterministic() {
        let (_, a) = small_audit();
        let (_, b) = small_audit();
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.address, y.address);
            assert_eq!(x.served, y.served);
            assert_eq!(x.max_down_mbps, y.max_down_mbps);
        }
    }

    fn datasets_equal(a: &AuditDataset, b: &AuditDataset) {
        assert_eq!(a.records, b.records);
        assert_eq!(a.to_dataframe().to_csv(), b.to_dataframe().to_csv());
        assert_eq!(a.coverage.len(), b.coverage.len());
        for (x, y) in a.coverage.iter().zip(&b.coverage) {
            assert_eq!(
                (x.isp, x.cbg, x.total, x.queried, x.collected),
                (y.isp, y.cbg, y.total, y.queried, y.collected)
            );
        }
    }

    #[test]
    fn engine_workers_do_not_change_output() {
        let synth = SynthConfig {
            seed: 55,
            scale: 40,
        };
        let world = World::generate_states(synth, &[UsState::Vermont, UsState::Utah]);
        let audit = Audit::new(AuditConfig {
            synth,
            campaign: CampaignConfig {
                seed: synth.seed,
                workers: 2,
                ..CampaignConfig::default()
            },
            rule: SamplingRule::paper(),
            resample_rounds: 2,
        });
        let serial = audit.run_with(&world, crate::engine::EngineConfig::serial());
        let parallel = audit.run_with(&world, crate::engine::EngineConfig::with_workers(4));
        datasets_equal(&serial, &parallel);
    }

    #[test]
    fn shard_policies_do_not_change_output() {
        use crate::engine::ShardPolicy;
        let synth = SynthConfig {
            seed: 55,
            scale: 40,
        };
        let world = World::generate_states(synth, &[UsState::Vermont, UsState::Utah]);
        let audit = Audit::new(AuditConfig {
            synth,
            campaign: CampaignConfig {
                seed: synth.seed,
                workers: 2,
                ..CampaignConfig::default()
            },
            rule: SamplingRule::paper(),
            resample_rounds: 2,
        });
        let baseline = audit.run_with(
            &world,
            crate::engine::EngineConfig::serial().with_shard_policy(ShardPolicy::disabled()),
        );
        for policy in [ShardPolicy::default_policy(), ShardPolicy::finest()] {
            for workers in [1usize, 4] {
                let sharded = audit.run_with(
                    &world,
                    crate::engine::EngineConfig::with_workers(workers).with_shard_policy(policy),
                );
                datasets_equal(&baseline, &sharded);
            }
        }
    }

    #[test]
    fn run_for_matches_a_subset_world() {
        let synth = SynthConfig {
            seed: 55,
            scale: 40,
        };
        let full = World::generate_states(synth, &[UsState::Vermont, UsState::Utah]);
        let subset = World::generate_states(synth, &[UsState::Utah]);
        let audit = Audit::new(AuditConfig {
            synth,
            campaign: CampaignConfig {
                seed: synth.seed,
                workers: 2,
                ..CampaignConfig::default()
            },
            rule: SamplingRule::paper(),
            resample_rounds: 2,
        });
        let via_run_for = audit.run_for(
            &full,
            &[UsState::Utah],
            crate::engine::EngineConfig::serial(),
        );
        let via_subset_world = audit.run(&subset);
        datasets_equal(&via_run_for, &via_subset_world);
        // Unknown states are skipped, not errors.
        let none = audit.run_for(
            &full,
            &[UsState::Georgia],
            crate::engine::EngineConfig::serial(),
        );
        assert!(none.rows.is_empty() && none.records.is_empty());
    }
}
