//! Q2 — the compliance analysis (§4.2).
//!
//! An address is *compliant* when the ISP actively serves it **and** the
//! best advertised plan satisfies the FCC's CAF conditions: a guaranteed
//! download speed of at least 10 Mbps (upload 1 Mbps where shown) at a
//! rate no higher than the FCC benchmark (≈$89/month for 10/1 service).
//! Plans with no speed commitment — AT&T's "Internet Air", Frontier's
//! "Frontier Internet" and its tier-less subscriber pages — are
//! non-compliant regardless of the numbers they display. The compliance
//! rate is aggregated with the same CBG weighting as serviceability.

use caf_geo::{BlockGroupId, UsState};
use caf_stats::weighted::WeightedSample;
use caf_stats::{weighted_mean, Summary};
use caf_synth::params::CalibrationParams;
use caf_synth::Isp;
use std::collections::HashMap;

use crate::audit::{AuditDataset, AuditRow};
use crate::engine::EngineConfig;
use crate::index::AuditIndex;

/// The advertised-speed band an address falls in, for Table 1's rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpeedBand {
    /// Unserved (advertised 0).
    Unserved,
    /// A named plan with no speed commitment (Internet Air / Frontier
    /// Internet).
    UnguaranteedPlan,
    /// Served, active subscriber, no tier displayed ("Unknown Plan").
    UnknownPlan,
    /// Guaranteed below 10 Mbps.
    Below10,
    /// Exactly the 10 Mbps floor.
    Exactly10,
    /// 11–99 Mbps.
    From11To99,
    /// 100–999 Mbps.
    From100To999,
    /// 1 Gbps and above.
    GigabitPlus,
}

impl SpeedBand {
    /// Table-1 row label.
    pub fn label(self) -> &'static str {
        match self {
            SpeedBand::Unserved => "0 (unserved)",
            SpeedBand::UnguaranteedPlan => "no-guarantee plan",
            SpeedBand::UnknownPlan => "Unknown Plan",
            SpeedBand::Below10 => "< 10",
            SpeedBand::Exactly10 => "10",
            SpeedBand::From11To99 => "11-99",
            SpeedBand::From100To999 => "100-999",
            SpeedBand::GigabitPlus => "1000+",
        }
    }

    /// All bands in display order.
    pub fn all() -> [SpeedBand; 8] {
        [
            SpeedBand::Unserved,
            SpeedBand::UnguaranteedPlan,
            SpeedBand::UnknownPlan,
            SpeedBand::Below10,
            SpeedBand::Exactly10,
            SpeedBand::From11To99,
            SpeedBand::From100To999,
            SpeedBand::GigabitPlus,
        ]
    }

    /// Classifies an audit row.
    pub fn of(row: &AuditRow) -> SpeedBand {
        if !row.served {
            return SpeedBand::Unserved;
        }
        let plan = row.max_plan.as_ref().expect("served rows carry a plan");
        if !plan.speed_guaranteed {
            return if plan.download_mbps.is_none() {
                SpeedBand::UnknownPlan
            } else {
                SpeedBand::UnguaranteedPlan
            };
        }
        match plan.download_mbps {
            None => SpeedBand::UnknownPlan,
            Some(d) if d < 10.0 => SpeedBand::Below10,
            Some(d) if d < 11.0 => SpeedBand::Exactly10,
            Some(d) if d < 100.0 => SpeedBand::From11To99,
            Some(d) if d < 1_000.0 => SpeedBand::From100To999,
            Some(_) => SpeedBand::GigabitPlus,
        }
    }
}

/// Whether an address complies with the FCC's CAF conditions: served,
/// with **some** advertised plan offering a guaranteed ≥ 10/1 Mbps at a
/// rate within the FCC benchmark. A household whose best offer is a
/// $180 5-Gbps fiber tier still complies through its cheaper mid tiers;
/// a household offered only "Internet Air" does not.
pub fn row_is_compliant(row: &AuditRow) -> bool {
    if !row.served {
        return false;
    }
    let (floor_down, floor_up) = CalibrationParams::fcc_speed_floor();
    let cap = CalibrationParams::fcc_rate_cap_usd();
    row.plans
        .iter()
        .any(|plan| plan.meets_service_standard(floor_down, floor_up) && plan.monthly_usd <= cap)
}

/// A CBG's compliance observation.
#[derive(Debug, Clone, Copy)]
pub struct CbgCompliance {
    /// The ISP.
    pub isp: Isp,
    /// The state.
    pub state: UsState,
    /// The CBG.
    pub cbg: BlockGroupId,
    /// Fraction of definitive queries that are served *and* compliant.
    pub rate: f64,
    /// The CBG's total CAF addresses.
    pub weight: f64,
    /// Definitive queries behind the rate.
    pub n: usize,
}

/// The compliance analysis over an audit dataset.
#[derive(Debug)]
pub struct ComplianceAnalysis {
    /// Per-(ISP, CBG) compliance rates.
    pub cbg_rates: Vec<CbgCompliance>,
    band_counts: HashMap<(Isp, SpeedBand), usize>,
    isp_totals: HashMap<Isp, usize>,
}

impl ComplianceAnalysis {
    /// Computes compliance rates and Table-1 band distributions by
    /// building a throwaway [`AuditIndex`]. Callers holding a shared
    /// index should use [`from_index`](ComplianceAnalysis::from_index).
    pub fn compute(dataset: &AuditDataset) -> ComplianceAnalysis {
        ComplianceAnalysis::from_index(dataset, &AuditIndex::build(dataset))
    }

    /// Computes the analysis off a pre-built index. Per-cell compliance
    /// counts walk the index's row ranges (compliance needs each row's
    /// plan list, which the cell table deliberately does not duplicate);
    /// the band tallies are order-independent counters over the raw rows.
    pub fn from_index(dataset: &AuditDataset, index: &AuditIndex) -> ComplianceAnalysis {
        index.check_dataset(dataset);
        let mut band_counts: HashMap<(Isp, SpeedBand), usize> = HashMap::new();
        let mut isp_totals: HashMap<Isp, usize> = HashMap::new();
        for row in &dataset.rows {
            *band_counts
                .entry((row.isp, SpeedBand::of(row)))
                .or_insert(0) += 1;
            *isp_totals.entry(row.isp).or_insert(0) += 1;
        }
        let cbg_rates: Vec<CbgCompliance> = index
            .cells()
            .iter()
            .map(|cell| {
                let compliant = index
                    .row_ids(cell)
                    .iter()
                    .filter(|&&i| row_is_compliant(&dataset.rows[i as usize]))
                    .count();
                CbgCompliance {
                    isp: cell.isp,
                    state: cell.state,
                    cbg: cell.cbg,
                    rate: compliant as f64 / cell.len() as f64,
                    weight: cell.weight,
                    n: cell.len(),
                }
            })
            .collect();
        ComplianceAnalysis {
            cbg_rates,
            band_counts,
            isp_totals,
        }
    }

    fn weighted(rates: impl Iterator<Item = (f64, f64)>) -> Option<f64> {
        let samples: Vec<WeightedSample> = rates.map(|(r, w)| WeightedSample::new(r, w)).collect();
        weighted_mean(&samples).ok()
    }

    /// The overall weighted compliance rate (§4.2: 33.03 %, abstract:
    /// 27.72 % — the paper reports both; see EXPERIMENTS.md).
    pub fn overall_rate(&self) -> f64 {
        Self::weighted(self.cbg_rates.iter().map(|r| (r.rate, r.weight)))
            .expect("analysis requires at least one CBG")
    }

    /// A bootstrap confidence interval on the overall compliance rate,
    /// resampling census block groups — the same clustering unit as the
    /// serviceability CI.
    pub fn overall_rate_ci(
        &self,
        replicates: usize,
        level: f64,
        seed: u64,
    ) -> Result<caf_stats::BootstrapCi, caf_stats::StatsError> {
        self.overall_rate_ci_on(EngineConfig::serial(), replicates, level, seed)
    }

    /// [`overall_rate_ci`](ComplianceAnalysis::overall_rate_ci) with the
    /// replicates chunked across an engine worker pool. Bit-identical to
    /// the serial variant at any worker count.
    pub fn overall_rate_ci_on(
        &self,
        engine: EngineConfig,
        replicates: usize,
        level: f64,
        seed: u64,
    ) -> Result<caf_stats::BootstrapCi, caf_stats::StatsError> {
        let rows: Vec<(f64, f64)> = self.cbg_rates.iter().map(|r| (r.rate, r.weight)).collect();
        caf_stats::bootstrap_indices_ci_on(
            engine,
            rows.len(),
            |idx| {
                let (num, den) = idx.iter().fold((0.0, 0.0), |(n, d), &i| {
                    (n + rows[i].0 * rows[i].1, d + rows[i].1)
                });
                if den > 0.0 {
                    num / den
                } else {
                    0.0
                }
            },
            replicates,
            level,
            seed,
        )
    }

    /// The weighted compliance rate for one ISP (§4.2: 16.58 % AT&T,
    /// 69.30 % CenturyLink, 15 % Frontier, 85.56 % Consolidated).
    pub fn rate_for_isp(&self, isp: Isp) -> Option<f64> {
        Self::weighted(
            self.cbg_rates
                .iter()
                .filter(|r| r.isp == isp)
                .map(|r| (r.rate, r.weight)),
        )
    }

    /// The weighted compliance rate for one state.
    pub fn rate_for_state(&self, state: UsState) -> Option<f64> {
        Self::weighted(
            self.cbg_rates
                .iter()
                .filter(|r| r.state == state)
                .map(|r| (r.rate, r.weight)),
        )
    }

    /// The distribution of CBG-level compliance rates for one ISP.
    pub fn distribution_for_isp(&self, isp: Isp) -> Option<Summary> {
        let rates: Vec<f64> = self
            .cbg_rates
            .iter()
            .filter(|r| r.isp == isp)
            .map(|r| r.rate)
            .collect();
        Summary::of(&rates).ok()
    }

    /// Table 1's advertised column for one ISP: the percentage of queried
    /// addresses in each speed band (unserved included, so columns sum to
    /// 100 %).
    pub fn advertised_band_percentages(&self, isp: Isp) -> Vec<(SpeedBand, f64)> {
        let total = self.isp_totals.get(&isp).copied().unwrap_or(0);
        if total == 0 {
            return Vec::new();
        }
        SpeedBand::all()
            .into_iter()
            .map(|band| {
                let count = self.band_counts.get(&(isp, band)).copied().unwrap_or(0);
                (band, 100.0 * count as f64 / total as f64)
            })
            .collect()
    }

    /// Price compliance (§4.2's rate analysis): among served rows that
    /// offer any guaranteed ≥ 10 Mbps plan, the fraction whose *cheapest*
    /// such plan sits at or below the FCC benchmark (the FCC's test is
    /// per-tier, so a premium gigabit price is irrelevant when a cheaper
    /// qualifying tier exists), plus the observed price range of
    /// guaranteed ~10 Mbps tiers.
    pub fn price_compliance(&self, dataset: &AuditDataset) -> (f64, Option<(f64, f64)>) {
        let (floor_down, floor_up) = CalibrationParams::fcc_speed_floor();
        let cap = CalibrationParams::fcc_rate_cap_usd();
        self.price_compliance_with(dataset, floor_down, floor_up, cap)
    }

    /// [`price_compliance`](ComplianceAnalysis::price_compliance) under
    /// explicit program rules — the policy-counterfactual path: the
    /// sweep's speed-tier axis moves the qualifying floor and its
    /// price-cap axis moves the benchmark, and eligibility/price-range
    /// reporting must follow both.
    pub fn price_compliance_under(
        &self,
        dataset: &AuditDataset,
        rules: &crate::program::ProgramRules,
    ) -> (f64, Option<(f64, f64)>) {
        self.price_compliance_with(
            dataset,
            rules.min_down_mbps,
            rules.min_up_mbps,
            rules.rate_cap_usd,
        )
    }

    fn price_compliance_with(
        &self,
        dataset: &AuditDataset,
        floor_down: f64,
        floor_up: f64,
        cap: f64,
    ) -> (f64, Option<(f64, f64)>) {
        // The observed-price window tracks the floor tier: ±10 % of the
        // qualifying download floor (9–11 Mbps under the CAF 10/1 rules).
        let (window_lo, window_hi) = (0.9 * floor_down, 1.1 * floor_down);
        let mut eligible = 0usize;
        let mut under_cap = 0usize;
        let mut ten_mbps_prices: Vec<f64> = Vec::new();
        for row in &dataset.rows {
            let cheapest_qualifying = row
                .plans
                .iter()
                .filter(|p| p.meets_service_standard(floor_down, floor_up))
                .map(|p| p.monthly_usd)
                .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.min(x))));
            if let Some(price) = cheapest_qualifying {
                eligible += 1;
                if price <= cap {
                    under_cap += 1;
                }
            }
            for plan in &row.plans {
                if let Some(d) = plan.download_mbps {
                    if plan.speed_guaranteed && (window_lo..=window_hi).contains(&d) {
                        ten_mbps_prices.push(plan.monthly_usd);
                    }
                }
            }
        }
        let fraction = if eligible == 0 {
            0.0
        } else {
            under_cap as f64 / eligible as f64
        };
        let range = if ten_mbps_prices.is_empty() {
            None
        } else {
            let lo = ten_mbps_prices
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min);
            let hi = ten_mbps_prices
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            Some((lo, hi))
        };
        (fraction, range)
    }

    /// Carriage values (advertised Mbps per dollar per month) of served
    /// rows for one ISP.
    pub fn carriage_values(&self, dataset: &AuditDataset, isp: Isp) -> Vec<f64> {
        dataset
            .rows_for(isp)
            .filter_map(|r| r.max_plan.as_ref().and_then(|p| p.carriage_value()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_geo::{AddressId, BlockGroupId, CountyId, LatLon, StateFips, TractId};
    use caf_synth::plans::PlanCatalog;

    fn cbg() -> BlockGroupId {
        let state = StateFips::new(39).unwrap();
        let county = CountyId::new(state, 1).unwrap();
        let tract = TractId::new(county, 1).unwrap();
        BlockGroupId::new(tract, 1).unwrap()
    }

    fn row_with_plan(i: u64, isp: Isp, tier_label: Option<&str>) -> AuditRow {
        let plan = tier_label.map(|label| {
            let cat = PlanCatalog::for_isp(isp);
            cat.plan_from_tier(cat.tier_labeled(label).unwrap())
        });
        AuditRow {
            address: AddressId(i),
            isp,
            state: UsState::Ohio,
            cbg: cbg(),
            cbg_total: 50,
            density: 100.0,
            density_pct: 0.5,
            centroid: LatLon::new(40.0, -82.0).unwrap(),
            served: plan.is_some(),
            max_down_mbps: plan.as_ref().and_then(|p| p.download_mbps),
            plans: plan.iter().cloned().collect(),
            max_plan: plan,
            existing_subscriber: false,
        }
    }

    fn dataset(rows: Vec<AuditRow>) -> AuditDataset {
        AuditDataset {
            rows,
            records: Vec::new(),
            coverage: Vec::new(),
        }
    }

    #[test]
    fn compliance_requires_service_guarantee_and_speed() {
        // Four Frontier addresses: unserved, Frontier Internet
        // (unguaranteed), Unknown Plan, and a compliant fiber tier.
        let rows = vec![
            row_with_plan(1, Isp::Frontier, None),
            row_with_plan(2, Isp::Frontier, Some("Frontier Internet")),
            row_with_plan(3, Isp::Frontier, Some("Unknown Plan")),
            row_with_plan(4, Isp::Frontier, Some("Fiber 500")),
        ];
        assert!(!row_is_compliant(&rows[0]));
        assert!(!row_is_compliant(&rows[1]));
        assert!(!row_is_compliant(&rows[2]));
        assert!(row_is_compliant(&rows[3]));
        let analysis = ComplianceAnalysis::compute(&dataset(rows));
        let rate = analysis.overall_rate();
        assert!((rate - 0.25).abs() < 1e-12, "got {rate}");
        assert_eq!(analysis.rate_for_isp(Isp::Frontier), Some(rate));
        assert_eq!(analysis.rate_for_state(UsState::Ohio), Some(rate));
    }

    #[test]
    fn speed_bands_classify_like_table_1() {
        let unserved = row_with_plan(1, Isp::Att, None);
        assert_eq!(SpeedBand::of(&unserved), SpeedBand::Unserved);
        let air = row_with_plan(2, Isp::Att, Some("AT&T Internet Air"));
        assert_eq!(SpeedBand::of(&air), SpeedBand::UnguaranteedPlan);
        let unknown = row_with_plan(3, Isp::Frontier, Some("Unknown Plan"));
        assert_eq!(SpeedBand::of(&unknown), SpeedBand::UnknownPlan);
        let dsl = row_with_plan(4, Isp::Att, Some("DSL 768k"));
        assert_eq!(SpeedBand::of(&dsl), SpeedBand::Below10);
        let ten = row_with_plan(5, Isp::Att, Some("Internet 10"));
        assert_eq!(SpeedBand::of(&ten), SpeedBand::Exactly10);
        let mid = row_with_plan(6, Isp::Att, Some("Internet 50"));
        assert_eq!(SpeedBand::of(&mid), SpeedBand::From11To99);
        let fiber = row_with_plan(7, Isp::Att, Some("Fiber 300"));
        assert_eq!(SpeedBand::of(&fiber), SpeedBand::From100To999);
        let gig = row_with_plan(8, Isp::Att, Some("Fiber 1000"));
        assert_eq!(SpeedBand::of(&gig), SpeedBand::GigabitPlus);
    }

    #[test]
    fn band_percentages_sum_to_100() {
        let rows = vec![
            row_with_plan(1, Isp::Att, None),
            row_with_plan(2, Isp::Att, Some("Internet 10")),
            row_with_plan(3, Isp::Att, Some("Fiber 1000")),
            row_with_plan(4, Isp::Att, Some("AT&T Internet Air")),
        ];
        let analysis = ComplianceAnalysis::compute(&dataset(rows));
        let bands = analysis.advertised_band_percentages(Isp::Att);
        let total: f64 = bands.iter().map(|(_, pct)| pct).sum();
        assert!((total - 100.0).abs() < 1e-9);
        let unserved = bands
            .iter()
            .find(|(b, _)| *b == SpeedBand::Unserved)
            .unwrap()
            .1;
        assert!((unserved - 25.0).abs() < 1e-9);
        assert!(analysis
            .advertised_band_percentages(Isp::Xfinity)
            .is_empty());
    }

    #[test]
    fn price_compliance_and_carriage() {
        let rows = vec![
            row_with_plan(1, Isp::CenturyLink, Some("Simply Internet 10")), // $50
            row_with_plan(2, Isp::CenturyLink, Some("Fiber 940")),          // $75
            row_with_plan(3, Isp::CenturyLink, None),
        ];
        let ds = dataset(rows);
        let analysis = ComplianceAnalysis::compute(&ds);
        let (fraction, range) = analysis.price_compliance(&ds);
        assert_eq!(fraction, 1.0); // all under the $89 cap
        let (lo, hi) = range.unwrap();
        assert_eq!((lo, hi), (50.0, 50.0)); // only the 10 Mbps tier counts
        let cvs = analysis.carriage_values(&ds, Isp::CenturyLink);
        assert_eq!(cvs.len(), 2);
        assert!(cvs.iter().any(|&v| (v - 940.0 / 75.0).abs() < 1e-9));
    }

    #[test]
    fn price_compliance_under_policy_rules() {
        let rows = vec![
            row_with_plan(1, Isp::CenturyLink, Some("Simply Internet 10")), // $50, 10/1
            row_with_plan(2, Isp::CenturyLink, Some("Fiber 940")),          // $75
        ];
        let ds = dataset(rows);
        let analysis = ComplianceAnalysis::compute(&ds);
        // The explicit CAF Phase II rules reproduce the calibrated default.
        let rules = crate::program::ProgramRules::caf_phase_ii();
        assert_eq!(
            analysis.price_compliance_under(&ds, &rules),
            analysis.price_compliance(&ds)
        );
        // Raising the floor to BEAD's 100/20 drops the 10 Mbps tier from
        // eligibility and moves the observed-price window to ~100 Mbps
        // tiers (none here).
        let bead = crate::program::ProgramRules::bead();
        let (fraction, range) = analysis.price_compliance_under(&ds, &bead);
        assert_eq!(fraction, 1.0); // fiber qualifies and sits under the cap
        assert!(range.is_none());
        // Tightening the cap below every price zeroes the fraction.
        let tight = rules.with_rate_cap_multiplier(0.1);
        let (fraction, _) = analysis.price_compliance_under(&ds, &tight);
        assert_eq!(fraction, 0.0);
    }

    #[test]
    fn weighting_matches_serviceability_scheme() {
        // One compliant CBG (weight 10), one non-compliant (weight 90).
        let mut r1 = row_with_plan(1, Isp::Att, Some("Fiber 1000"));
        r1.cbg_total = 10;
        let state = StateFips::new(39).unwrap();
        let county = CountyId::new(state, 2).unwrap();
        let tract = TractId::new(county, 1).unwrap();
        let other_cbg = BlockGroupId::new(tract, 1).unwrap();
        let mut r2 = row_with_plan(2, Isp::Att, None);
        r2.cbg = other_cbg;
        r2.cbg_total = 90;
        let analysis = ComplianceAnalysis::compute(&dataset(vec![r1, r2]));
        let rate = analysis.overall_rate();
        assert!((rate - 0.10).abs() < 1e-12, "got {rate}");
        assert!(analysis.distribution_for_isp(Isp::Att).unwrap().n == 2);
    }
}
