//! [`Snap`] codecs for audit results: the dataset rows the artifact
//! renderers read and the columnar [`AuditIndex`] over them.
//!
//! The index is the one structure decoded *without* a rebuilding
//! constructor — its flat `Vec` columns are snapshot-shaped by design —
//! so its decoder validates every structural invariant the analyses
//! rely on (row counts agree across columns, every range is in bounds)
//! before the value escapes. A snapshot that decodes is safe to drive
//! `from_index` analyses; one that doesn't is a clean cold-build
//! fallback.

use crate::audit::{AuditDataset, AuditRow, CbgCoverage};
use crate::index::{AuditIndex, CellMeta};
use crate::q3::{BlockComparison, BlockType, Q3Analysis};
use caf_snap::{Reader, Snap, SnapError, Writer};
use caf_synth::Isp;

impl Snap for AuditRow {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.address);
        w.put(&self.isp);
        w.put(&self.state);
        w.put(&self.cbg);
        w.put_usize(self.cbg_total);
        w.put_f64(self.density);
        w.put_f64(self.density_pct);
        w.put(&self.centroid);
        w.put_bool(self.served);
        w.put(&self.max_down_mbps);
        w.put(&self.max_plan);
        w.put_seq(&self.plans);
        w.put_bool(self.existing_subscriber);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(AuditRow {
            address: r.get()?,
            isp: r.get()?,
            state: r.get()?,
            cbg: r.get()?,
            cbg_total: r.usize()?,
            density: r.f64()?,
            density_pct: r.f64()?,
            centroid: r.get()?,
            served: r.bool()?,
            max_down_mbps: r.get()?,
            max_plan: r.get()?,
            plans: r.get_seq()?,
            existing_subscriber: r.bool()?,
        })
    }
}

impl Snap for CbgCoverage {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.isp);
        w.put(&self.cbg);
        w.put_usize(self.total);
        w.put_usize(self.queried);
        w.put_usize(self.collected);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(CbgCoverage {
            isp: r.get()?,
            cbg: r.get()?,
            total: r.usize()?,
            queried: r.usize()?,
            collected: r.usize()?,
        })
    }
}

impl Snap for AuditDataset {
    fn encode(&self, w: &mut Writer) {
        w.put_seq(&self.rows);
        w.put_seq(&self.records);
        w.put_seq(&self.coverage);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(AuditDataset {
            rows: r.get_seq()?,
            records: r.get_seq()?,
            coverage: r.get_seq()?,
        })
    }
}

impl Snap for CellMeta {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.isp);
        w.put(&self.state);
        w.put(&self.cbg);
        w.put_f64(self.weight);
        w.put_f64(self.density);
        w.put_f64(self.density_pct);
        w.put(&self.centroid);
        w.put(&self.range);
        w.put_usize(self.served_rows);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let meta = CellMeta {
            isp: r.get()?,
            state: r.get()?,
            cbg: r.get()?,
            weight: r.f64()?,
            density: r.f64()?,
            density_pct: r.f64()?,
            centroid: r.get()?,
            range: r.get()?,
            served_rows: r.usize()?,
        };
        if meta.served_rows > meta.range.len() {
            return Err(SnapError::Malformed(format!(
                "cell served_rows {} exceeds its {} rows",
                meta.served_rows,
                meta.range.len()
            )));
        }
        Ok(meta)
    }
}

impl Snap for AuditIndex {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.n_rows);
        w.put_u64(self.epoch);
        w.put_seq(&self.order);
        w.put_seq(&self.served);
        w.put_seq(&self.cells);
        w.put_seq(&self.isp_cells);
        w.put_seq(&self.state_cells);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let index = AuditIndex {
            n_rows: r.usize()?,
            epoch: r.u64()?,
            order: r.get_seq()?,
            served: r.get_seq()?,
            cells: r.get_seq()?,
            isp_cells: r.get_seq()?,
            state_cells: r.get_seq()?,
        };
        let structural = |detail: String| SnapError::Malformed(format!("audit index: {detail}"));
        if index.order.len() != index.n_rows || index.served.len() != index.n_rows {
            return Err(structural(format!(
                "column lengths (order {}, served {}) disagree with n_rows {}",
                index.order.len(),
                index.served.len(),
                index.n_rows
            )));
        }
        if let Some(&row) = index
            .order
            .iter()
            .find(|&&row| row as usize >= index.n_rows)
        {
            return Err(structural(format!("row id {row} out of {}", index.n_rows)));
        }
        for cell in &index.cells {
            if cell.range.end > index.n_rows {
                return Err(structural(format!(
                    "cell range {:?} exceeds {} rows",
                    cell.range, index.n_rows
                )));
            }
        }
        for (isp, range) in &index.isp_cells {
            if range.end > index.cells.len() {
                return Err(structural(format!(
                    "isp {isp:?} cell range {range:?} exceeds {} cells",
                    index.cells.len()
                )));
            }
        }
        for (state, cell_ids) in &index.state_cells {
            if let Some(&id) = cell_ids
                .iter()
                .find(|&&id| id as usize >= index.cells.len())
            {
                return Err(structural(format!(
                    "state {state:?} cell id {id} out of {}",
                    index.cells.len()
                )));
            }
        }
        Ok(index)
    }
}

impl Snap for BlockType {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            BlockType::A => 0,
            BlockType::B => 1,
            BlockType::C => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => BlockType::A,
            1 => BlockType::B,
            2 => BlockType::C,
            other => {
                return Err(SnapError::Malformed(format!(
                    "block type: unknown tag {other}"
                )))
            }
        })
    }
}

impl Snap for BlockComparison {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.block);
        w.put(&self.state);
        w.put(&self.caf_isp);
        w.put(&self.block_type);
        w.put_f64(self.caf_speed);
        w.put(&self.monopoly_speed);
        w.put(&self.competition_speed);
        w.put(&self.caf_carriage);
        w.put(&self.monopoly_carriage);
        w.put(&self.competition_carriage);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(BlockComparison {
            block: r.get()?,
            state: r.get()?,
            caf_isp: r.get()?,
            block_type: r.get()?,
            caf_speed: r.f64()?,
            monopoly_speed: r.get()?,
            competition_speed: r.get()?,
            caf_carriage: r.get()?,
            monopoly_carriage: r.get()?,
            competition_carriage: r.get()?,
        })
    }
}

impl Snap for Q3Analysis {
    fn encode(&self, w: &mut Writer) {
        w.put_seq(&self.blocks);
        w.put_usize(self.caf_queried);
        w.put_usize(self.non_caf_queried);
        w.put_usize(self.caf_served);
        w.put_usize(self.non_caf_served);
        w.put_usize(self.blocks_dropped);
        // The per-ISP tallies live in a HashMap; the canonical encoding
        // sorts them in registry order so identical analyses produce
        // identical bytes.
        let mut per_isp: Vec<(Isp, (usize, usize))> = self
            .queries_per_isp
            .iter()
            .map(|(&isp, &counts)| (isp, counts))
            .collect();
        let rank = |isp: Isp| Isp::all().iter().position(|&i| i == isp).expect("known");
        per_isp.sort_by_key(|&(isp, _)| rank(isp));
        w.put_seq(&per_isp);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Q3Analysis {
            blocks: r.get_seq()?,
            caf_queried: r.usize()?,
            non_caf_queried: r.usize()?,
            caf_served: r.usize()?,
            non_caf_served: r.usize()?,
            blocks_dropped: r.usize()?,
            queries_per_isp: r.get_seq::<(Isp, (usize, usize))>()?.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ComplianceAnalysis, ServiceabilityAnalysis};
    use caf_bqt::CampaignConfig;

    fn sample_dataset() -> AuditDataset {
        use crate::audit::{Audit, AuditConfig};
        use crate::engine::EngineConfig;
        use crate::sampling::SamplingRule;
        use caf_geo::UsState;
        use caf_synth::{SynthConfig, World};
        let synth = SynthConfig {
            seed: 0xCAF_2024,
            scale: 2000,
        };
        let audit = Audit::new(AuditConfig {
            synth,
            campaign: CampaignConfig::default().with_seed(0xCAF_2024),
            rule: SamplingRule::paper(),
            resample_rounds: 1,
        });
        let world = World::generate_states(synth, &UsState::study_states());
        audit.run_with(&world, EngineConfig::serial())
    }

    #[test]
    fn dataset_and_index_round_trip_byte_identically() {
        let dataset = sample_dataset();
        let index = AuditIndex::build_at(&dataset, 3);

        let mut w = Writer::new();
        w.put(&dataset);
        w.put(&index);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let dataset2: AuditDataset = r.get().unwrap();
        let index2: AuditIndex = r.get().unwrap();
        r.finish().unwrap();

        // Canonical re-encode.
        let mut w = Writer::new();
        w.put(&dataset2);
        w.put(&index2);
        assert_eq!(w.into_bytes(), bytes);

        // The decoded pair drives the same analyses to identical
        // artifact bytes — the property the serving layer relies on.
        let fresh = crate::artifact::table2(&dataset);
        let restored = crate::artifact::table2(&dataset2);
        assert_eq!(
            crate::artifact::to_canonical_bytes(&fresh),
            crate::artifact::to_canonical_bytes(&restored)
        );
        let s1 = ServiceabilityAnalysis::from_index(&index);
        let s2 = ServiceabilityAnalysis::from_index(&index2);
        assert_eq!(
            crate::artifact::to_canonical_bytes(&crate::artifact::serviceability(&s1, None)),
            crate::artifact::to_canonical_bytes(&crate::artifact::serviceability(&s2, None)),
        );
        let c1 = ComplianceAnalysis::from_index(&dataset, &index);
        let c2 = ComplianceAnalysis::from_index(&dataset2, &index2);
        assert_eq!(
            crate::artifact::to_canonical_bytes(&crate::artifact::compliance(&c1, &dataset, None)),
            crate::artifact::to_canonical_bytes(&crate::artifact::compliance(&c2, &dataset2, None)),
        );
        assert_eq!(index2.epoch(), 3);
    }

    #[test]
    fn q3_analysis_round_trips_byte_identically() {
        use caf_geo::UsState;
        use caf_synth::{SynthConfig, World};
        let world = World::generate_states(
            SynthConfig {
                seed: 0xCAF_2024,
                scale: 400,
            },
            &UsState::q3_states(),
        );
        let q3 = Q3Analysis::run(&world, CampaignConfig::default().with_seed(0xCAF_2024));

        let mut w = Writer::new();
        w.put(&q3);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let q3b: Q3Analysis = r.get().unwrap();
        r.finish().unwrap();

        // Canonical re-encode (HashMap iteration order must not leak).
        let mut w = Writer::new();
        w.put(&q3b);
        assert_eq!(w.into_bytes(), bytes);
        assert_eq!(
            crate::artifact::to_canonical_bytes(&crate::artifact::q3(&q3)),
            crate::artifact::to_canonical_bytes(&crate::artifact::q3(&q3b)),
        );
        assert!(matches!(
            Reader::new(&[9]).get::<BlockType>(),
            Err(SnapError::Malformed(_))
        ));
    }

    #[test]
    fn corrupt_index_structure_is_rejected() {
        let dataset = sample_dataset();
        let index = AuditIndex::build(&dataset);
        let mut w = Writer::new();
        w.put(&index);
        let good = w.into_bytes();

        // Claim one more row than the columns carry: the very first
        // structural check fires.
        let mut w = Writer::new();
        w.put_usize(index.len() + 1);
        w.put_raw(&good[8..]);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).get::<AuditIndex>(),
            Err(SnapError::Malformed(_)) | Err(SnapError::UnexpectedEof { .. })
        ));
    }
}
