//! The deterministic parallel execution engine — re-exported from
//! [`caf_exec`].
//!
//! [`Audit::run`](crate::Audit::run) decomposes into independent
//! per-state work units: each state draws its own sampling plan, runs
//! its own query campaign, and resamples its own failures. The engine
//! runs those units across a scoped worker pool and merges the partial
//! results **in fixed state order**, so the output is byte-identical at
//! any worker count.
//!
//! The implementation lives in the dependency-light `caf-exec` crate so
//! the layers *below* `caf-core` — per-state world generation in
//! `caf-synth`, chunked bootstrap resampling in `caf-stats` — share the
//! same pool and the same determinism contract (see the `caf_exec`
//! crate docs). This module re-exports the whole surface, so audit
//! callers keep importing `crate::engine::{map_slice, EngineConfig}`
//! exactly as before the extraction.

pub use caf_exec::{
    map_slice, map_units, state_seed, CostHint, EngineConfig, Shard, ShardPolicy, UnitPlan,
};
