//! The §3.1 address-selection strategy.
//!
//! Randomly sampling CAF addresses state-wide would over-sample a few
//! giant census block groups, so the paper samples *per CBG*: at least 30
//! addresses (for statistical significance of per-CBG aggregates) or 10 %
//! of the CBG's addresses, whichever is larger; CBGs with fewer than 30
//! addresses are queried exhaustively. Addresses not drawn initially form
//! the CBG's replacement pool, used when queries fail persistently
//! (§3.2: "we select a new address from the same census block group").

use caf_geo::{AddressId, BlockGroupId, UsState};
use caf_synth::rng::scoped_rng;
use caf_synth::{Isp, StateWorld};
use rand::seq::SliceRandom;

/// The sampling rule: `max(min_per_cbg, fraction · n)` per CBG, capped at
/// the CBG's size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingRule {
    /// Minimum addresses per CBG (paper: 30).
    pub min_per_cbg: usize,
    /// Fraction of the CBG's addresses (paper: 0.10).
    pub fraction: f64,
}

impl SamplingRule {
    /// The paper's rule: max(30, 10 %).
    pub fn paper() -> SamplingRule {
        SamplingRule {
            min_per_cbg: 30,
            fraction: 0.10,
        }
    }

    /// A pure-fraction rule (used by the Figure 9 sensitivity sweep and
    /// the sampling ablation).
    pub fn fraction_only(fraction: f64) -> SamplingRule {
        SamplingRule {
            min_per_cbg: 0,
            fraction,
        }
    }

    /// Sample size for a CBG with `n` addresses.
    pub fn sample_size(&self, n: usize) -> usize {
        let by_fraction = (self.fraction * n as f64).ceil() as usize;
        by_fraction.max(self.min_per_cbg).min(n)
    }
}

/// One CBG's sampled cell.
#[derive(Debug, Clone)]
pub struct SampledCbg {
    /// The ISP being audited in this CBG.
    pub isp: Isp,
    /// The CBG.
    pub cbg: BlockGroupId,
    /// Total CAF addresses in the CBG (the weighting denominator and
    /// Figures 7/8 denominator).
    pub total_addresses: usize,
    /// The addresses drawn for querying, in draw order.
    pub primary: Vec<AddressId>,
    /// Replacement pool: the addresses not drawn, in draw order.
    pub replacements: Vec<AddressId>,
}

/// A sampling plan over one state: every (ISP, CBG) cell with its drawn
/// addresses and replacement pools.
#[derive(Debug, Clone)]
pub struct SamplingPlan {
    /// The state.
    pub state: UsState,
    /// The rule used.
    pub rule: SamplingRule,
    /// Sampled cells, in deterministic (ISP, CBG) order.
    pub cells: Vec<SampledCbg>,
}

impl SamplingPlan {
    /// Draws the plan for a state world. Deterministic: the shuffle is
    /// keyed by (seed, CBG), so plans are stable across runs and
    /// independent of iteration order.
    pub fn draw(seed: u64, world: &StateWorld, rule: SamplingRule) -> SamplingPlan {
        Self::draw_cells(seed, world, rule, 0..Self::cell_count(world))
    }

    /// How many (ISP, CBG) cells [`SamplingPlan::draw`] would produce
    /// for this state — the index space of [`SamplingPlan::draw_cells`].
    pub fn cell_count(world: &StateWorld) -> usize {
        world.usac.cbg_cells().count()
    }

    /// Draws the plan restricted to a contiguous cell range (cells
    /// indexed in the deterministic (ISP, CBG) iteration order). Each
    /// cell's shuffle is keyed by (seed, CBG, ISP), never by position,
    /// so `draw_cells(.., lo..hi).cells` equals `draw(..).cells[lo..hi]`
    /// — the invariant that lets the audit engine shard a state by cell
    /// ranges without changing a single drawn address.
    pub fn draw_cells(
        seed: u64,
        world: &StateWorld,
        rule: SamplingRule,
        range: std::ops::Range<usize>,
    ) -> SamplingPlan {
        let mut cells = Vec::with_capacity(range.len());
        for (isp, cbg, indices) in world.usac.cbg_cells().skip(range.start).take(range.len()) {
            let mut addresses: Vec<AddressId> = indices
                .iter()
                .map(|&i| world.usac.records[i].address.id)
                .collect();
            let mut rng = scoped_rng(seed, "sampling", cbg.geoid() ^ isp.id());
            addresses.shuffle(&mut rng);
            let take = rule.sample_size(addresses.len());
            let replacements = addresses.split_off(take);
            cells.push(SampledCbg {
                isp,
                cbg,
                total_addresses: indices.len(),
                primary: addresses,
                replacements,
            });
        }
        SamplingPlan {
            state: world.state,
            rule,
            cells,
        }
    }

    /// Total primary addresses across cells.
    pub fn total_sampled(&self) -> usize {
        self.cells.iter().map(|c| c.primary.len()).sum()
    }

    /// The cells for one ISP.
    pub fn cells_for(&self, isp: Isp) -> impl Iterator<Item = &SampledCbg> {
        self.cells.iter().filter(move |c| c.isp == isp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_synth::{SynthConfig, World};

    #[test]
    fn rule_matches_the_paper_spec() {
        let rule = SamplingRule::paper();
        // Under 30: query all.
        assert_eq!(rule.sample_size(1), 1);
        assert_eq!(rule.sample_size(29), 29);
        // 30..=300: exactly 30 (10% is smaller).
        assert_eq!(rule.sample_size(30), 30);
        assert_eq!(rule.sample_size(299), 30);
        // Over 300: 10 %, rounded up.
        assert_eq!(rule.sample_size(301), 31);
        assert_eq!(rule.sample_size(5_000), 500);
    }

    #[test]
    fn fraction_only_rule() {
        let rule = SamplingRule::fraction_only(0.5);
        assert_eq!(rule.sample_size(10), 5);
        assert_eq!(rule.sample_size(3), 2); // ceil(1.5)
    }

    fn world() -> World {
        World::generate_states(
            SynthConfig {
                seed: 44,
                scale: 40,
            },
            &[UsState::NewHampshire],
        )
    }

    #[test]
    fn plan_partitions_each_cbg() {
        let w = world();
        let sw = w.state(UsState::NewHampshire).unwrap();
        let plan = SamplingPlan::draw(w.config.seed, sw, SamplingRule::paper());
        assert!(!plan.cells.is_empty());
        for cell in &plan.cells {
            assert_eq!(
                cell.primary.len() + cell.replacements.len(),
                cell.total_addresses
            );
            assert_eq!(
                cell.primary.len(),
                SamplingRule::paper().sample_size(cell.total_addresses)
            );
            // No duplicates across primary + replacements.
            let mut all: Vec<u64> = cell
                .primary
                .iter()
                .chain(&cell.replacements)
                .map(|a| a.0)
                .collect();
            all.sort_unstable();
            let n = all.len();
            all.dedup();
            assert_eq!(all.len(), n);
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let w = world();
        let sw = w.state(UsState::NewHampshire).unwrap();
        let a = SamplingPlan::draw(w.config.seed, sw, SamplingRule::paper());
        let b = SamplingPlan::draw(w.config.seed, sw, SamplingRule::paper());
        assert_eq!(a.total_sampled(), b.total_sampled());
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.primary, cb.primary);
        }
        // Different seed, different draw (almost surely).
        let c = SamplingPlan::draw(w.config.seed + 1, sw, SamplingRule::paper());
        let same = a
            .cells
            .iter()
            .zip(&c.cells)
            .filter(|(x, y)| x.primary == y.primary)
            .count();
        assert!(same < a.cells.len());
    }

    #[test]
    fn range_draws_are_slices_of_the_full_draw() {
        let w = world();
        let sw = w.state(UsState::NewHampshire).unwrap();
        let full = SamplingPlan::draw(w.config.seed, sw, SamplingRule::paper());
        let n = SamplingPlan::cell_count(sw);
        assert_eq!(full.cells.len(), n);
        for splits in [2usize, 5] {
            let chunk = n.div_ceil(splits);
            let mut cells = Vec::new();
            for s in 0..splits {
                let lo = (s * chunk).min(n);
                let hi = ((s + 1) * chunk).min(n);
                cells.extend(
                    SamplingPlan::draw_cells(w.config.seed, sw, SamplingRule::paper(), lo..hi)
                        .cells,
                );
            }
            assert_eq!(
                format!("{cells:?}"),
                format!("{:?}", full.cells),
                "splits = {splits}"
            );
        }
    }

    #[test]
    fn sampled_volume_tracks_table_3_scale() {
        // NH Consolidated at paper scale queried 7,229 addresses over 175
        // CBGs; at scale 40 that is ≈ 180. Block-splitting and the ≥30
        // floor make this approximate.
        let w = world();
        let sw = w.state(UsState::NewHampshire).unwrap();
        let plan = SamplingPlan::draw(w.config.seed, sw, SamplingRule::paper());
        let total = plan.total_sampled();
        assert!(
            (60..600).contains(&total),
            "sampled {total} not in expected ballpark"
        );
        assert!(plan.cells_for(Isp::Consolidated).count() > 0);
        assert_eq!(plan.cells_for(Isp::Att).count(), 0);
    }
}
