//! Q3 — regulated vs unregulated monopolies (§4.3).
//!
//! Within each census block served by a CAF-funded ISP, this analysis
//! compares the plans that same ISP advertises in three modes: at its
//! regulated **CAF** addresses, at non-CAF addresses where it is an
//! unregulated **monopoly**, and at non-CAF addresses where it faces
//! **competition**. Blocks are typed by the modes present — Type A
//! (CAF + monopoly), Type B (CAF + competition), Type C (all three) — and
//! per-block *average maximum download speeds* are compared per mode.
//!
//! The pipeline mirrors the paper's data flow: query every CAF and
//! non-CAF address against the incumbent; query non-CAF addresses against
//! each competitor with a Form-477 footprint claim; classify per-address
//! mode from the competitor outcomes; drop blocks with no served non-CAF
//! address; then compare block-level averages.

use caf_bqt::{Campaign, CampaignConfig, QueryTask};
use caf_geo::{BlockId, UsState};
use caf_synth::{Isp, World};
use std::collections::HashMap;

use crate::index::RecordIndex;

/// A block's derived type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockType {
    /// CAF + monopoly modes only.
    A,
    /// CAF + competition modes only.
    B,
    /// All three modes.
    C,
}

impl BlockType {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            BlockType::A => "Type A (CAF+Monopoly)",
            BlockType::B => "Type B (CAF+Competition)",
            BlockType::C => "Type C (all modes)",
        }
    }
}

/// Per-block mode averages.
#[derive(Debug, Clone)]
pub struct BlockComparison {
    /// The block.
    pub block: BlockId,
    /// The state.
    pub state: UsState,
    /// The incumbent CAF ISP.
    pub caf_isp: Isp,
    /// Derived type.
    pub block_type: BlockType,
    /// Average max download speed over served CAF addresses with a
    /// specified speed.
    pub caf_speed: f64,
    /// Average over monopoly-mode non-CAF addresses, if the mode occurs.
    pub monopoly_speed: Option<f64>,
    /// Average over competition-mode non-CAF addresses, if the mode
    /// occurs.
    pub competition_speed: Option<f64>,
    /// Average carriage value (Mbps per dollar per month) over served CAF
    /// addresses, where priced plans were advertised.
    pub caf_carriage: Option<f64>,
    /// Average carriage value over monopoly-mode addresses.
    pub monopoly_carriage: Option<f64>,
    /// Average carriage value over competition-mode addresses.
    pub competition_carriage: Option<f64>,
}

/// The relative outcome of a block comparison, with a tolerance for ties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComparisonOutcome {
    /// CAF addresses average strictly better.
    CafBetter,
    /// Within tolerance of each other.
    Tie,
    /// The comparison mode averages strictly better.
    OtherBetter,
}

/// Relative tolerance below which two block averages count as identical.
pub const TIE_TOLERANCE: f64 = 0.01;

/// Compares two averages.
pub fn compare_speeds(caf: f64, other: f64) -> ComparisonOutcome {
    let scale = caf.abs().max(other.abs()).max(1e-12);
    if (caf - other).abs() / scale <= TIE_TOLERANCE {
        ComparisonOutcome::Tie
    } else if caf > other {
        ComparisonOutcome::CafBetter
    } else {
        ComparisonOutcome::OtherBetter
    }
}

/// The Q3 analysis results.
#[derive(Debug)]
pub struct Q3Analysis {
    /// One comparison per surviving block.
    pub blocks: Vec<BlockComparison>,
    /// CAF addresses queried (before filtering).
    pub caf_queried: usize,
    /// Non-CAF addresses queried against the incumbent.
    pub non_caf_queried: usize,
    /// CAF addresses served (after filtering).
    pub caf_served: usize,
    /// Non-CAF addresses served by the incumbent.
    pub non_caf_served: usize,
    /// Blocks dropped because no non-CAF address was served by the
    /// incumbent.
    pub blocks_dropped: usize,
    /// Query records per (ISP): Table 4 accounting.
    pub queries_per_isp: HashMap<Isp, (usize, usize)>,
}

impl Q3Analysis {
    /// Runs the full Q3 pipeline over the world's Q3 blocks.
    pub fn run(world: &World, campaign_config: CampaignConfig) -> Q3Analysis {
        let campaign = Campaign::new(campaign_config);

        // Assemble the query task list: every address vs the incumbent;
        // non-CAF addresses additionally vs each footprint competitor.
        let mut tasks: Vec<QueryTask> = Vec::new();
        let mut caf_queried = 0usize;
        let mut non_caf_queried = 0usize;
        let mut queries_per_isp: HashMap<Isp, (usize, usize)> = HashMap::new();
        for sw in &world.states {
            for block in &sw.q3.blocks {
                for a in &block.addresses {
                    tasks.push(QueryTask {
                        address: a.address.id,
                        isp: block.caf_isp,
                    });
                    let slot = queries_per_isp.entry(block.caf_isp).or_insert((0, 0));
                    if a.is_caf {
                        caf_queried += 1;
                        slot.0 += 1;
                    } else {
                        non_caf_queried += 1;
                        slot.1 += 1;
                        for &comp in &block.competitors {
                            tasks.push(QueryTask {
                                address: a.address.id,
                                isp: comp,
                            });
                            queries_per_isp.entry(comp).or_insert((0, 0)).1 += 1;
                        }
                    }
                }
            }
        }

        let result = campaign.run(&world.truth, &tasks);
        // The per-(address, ISP) outcome lookup — Q3's analogue of the
        // audit's AuditIndex, binary-searched instead of hashed.
        let outcomes = RecordIndex::build(&result.records);

        // Classify blocks.
        let mut blocks = Vec::new();
        let mut blocks_dropped = 0usize;
        let mut caf_served = 0usize;
        let mut non_caf_served = 0usize;
        for sw in &world.states {
            for block in &sw.q3.blocks {
                let mut caf_speeds: Vec<f64> = Vec::new();
                let mut mono_speeds: Vec<f64> = Vec::new();
                let mut comp_speeds: Vec<f64> = Vec::new();
                let mut caf_cv: Vec<f64> = Vec::new();
                let mut mono_cv: Vec<f64> = Vec::new();
                let mut comp_cv: Vec<f64> = Vec::new();
                for a in &block.addresses {
                    let Some(record) = outcomes.get(&result.records, a.address.id, block.caf_isp)
                    else {
                        continue;
                    };
                    let served = matches!(record.outcome.is_served(), Some(true));
                    if !served {
                        continue;
                    }
                    let speed = record.outcome.max_download_mbps();
                    // Carriage value of the best-tier plan (§4.3 notes the
                    // carriage-value view "observed similar trends").
                    let carriage = match &record.outcome {
                        caf_bqt::QueryOutcome::Serviceable { plans, .. } => {
                            plans.first().and_then(|p| p.carriage_value())
                        }
                        _ => None,
                    };
                    if a.is_caf {
                        caf_served += 1;
                        if let Some(s) = speed {
                            caf_speeds.push(s);
                        }
                        if let Some(c) = carriage {
                            caf_cv.push(c);
                        }
                    } else {
                        non_caf_served += 1;
                        // Mode: competition iff any footprint competitor
                        // also serves this address.
                        let competitive = block.competitors.iter().any(|&comp| {
                            outcomes
                                .get(&result.records, a.address.id, comp)
                                .is_some_and(|r| r.outcome.is_served() == Some(true))
                        });
                        if let Some(s) = speed {
                            if competitive {
                                comp_speeds.push(s);
                            } else {
                                mono_speeds.push(s);
                            }
                        }
                        if let Some(c) = carriage {
                            if competitive {
                                comp_cv.push(c);
                            } else {
                                mono_cv.push(c);
                            }
                        }
                    }
                }

                // §4.3 filtering: need served CAF addresses and at least
                // one served non-CAF address.
                if caf_speeds.is_empty() || (mono_speeds.is_empty() && comp_speeds.is_empty()) {
                    blocks_dropped += 1;
                    continue;
                }
                let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
                let block_type = match (!mono_speeds.is_empty(), !comp_speeds.is_empty()) {
                    (true, false) => BlockType::A,
                    (false, true) => BlockType::B,
                    (true, true) => BlockType::C,
                    (false, false) => unreachable!("filtered above"),
                };
                let avg_opt = |xs: &[f64]| {
                    if xs.is_empty() {
                        None
                    } else {
                        Some(xs.iter().sum::<f64>() / xs.len() as f64)
                    }
                };
                blocks.push(BlockComparison {
                    block: block.id,
                    state: block.state,
                    caf_isp: block.caf_isp,
                    block_type,
                    caf_speed: avg(&caf_speeds),
                    monopoly_speed: avg_opt(&mono_speeds),
                    competition_speed: avg_opt(&comp_speeds),
                    caf_carriage: avg_opt(&caf_cv),
                    monopoly_carriage: avg_opt(&mono_cv),
                    competition_carriage: avg_opt(&comp_cv),
                });
            }
        }

        Q3Analysis {
            blocks,
            caf_queried,
            non_caf_queried,
            caf_served,
            non_caf_served,
            blocks_dropped,
            queries_per_isp,
        }
    }

    /// Blocks of one type.
    pub fn blocks_of(&self, block_type: BlockType) -> impl Iterator<Item = &BlockComparison> {
        self.blocks
            .iter()
            .filter(move |b| b.block_type == block_type)
    }

    /// Outcome fractions `(CAF better, tie, other better)` for Type-A
    /// blocks vs the monopoly mode (Figure 4a: 27 % / 54 % / 17 %).
    pub fn type_a_outcomes(&self) -> Option<[f64; 3]> {
        self.outcome_fractions(BlockType::A, |b| b.monopoly_speed)
    }

    /// Outcome fractions for Type-B blocks vs the competition mode
    /// (Figure 5a: 32.1 % / 37.2 % / 30.7 %).
    pub fn type_b_outcomes(&self) -> Option<[f64; 3]> {
        self.outcome_fractions(BlockType::B, |b| b.competition_speed)
    }

    /// Type-A outcome fractions measured on *carriage value* rather than
    /// speed — the alternative metric §4.3 reports as showing "similar
    /// trends".
    pub fn type_a_outcomes_by_carriage(&self) -> Option<[f64; 3]> {
        let mut counts = [0usize; 3];
        let mut total = 0usize;
        for b in self.blocks_of(BlockType::A) {
            let (Some(caf), Some(mono)) = (b.caf_carriage, b.monopoly_carriage) else {
                continue;
            };
            total += 1;
            match compare_speeds(caf, mono) {
                ComparisonOutcome::CafBetter => counts[0] += 1,
                ComparisonOutcome::Tie => counts[1] += 1,
                ComparisonOutcome::OtherBetter => counts[2] += 1,
            }
        }
        if total == 0 {
            return None;
        }
        Some([
            counts[0] as f64 / total as f64,
            counts[1] as f64 / total as f64,
            counts[2] as f64 / total as f64,
        ])
    }

    fn outcome_fractions<F>(&self, block_type: BlockType, other: F) -> Option<[f64; 3]>
    where
        F: Fn(&BlockComparison) -> Option<f64>,
    {
        let mut counts = [0usize; 3];
        let mut total = 0usize;
        for b in self.blocks_of(block_type) {
            let Some(other_speed) = other(b) else {
                continue;
            };
            total += 1;
            match compare_speeds(b.caf_speed, other_speed) {
                ComparisonOutcome::CafBetter => counts[0] += 1,
                ComparisonOutcome::Tie => counts[1] += 1,
                ComparisonOutcome::OtherBetter => counts[2] += 1,
            }
        }
        if total == 0 {
            return None;
        }
        Some([
            counts[0] as f64 / total as f64,
            counts[1] as f64 / total as f64,
            counts[2] as f64 / total as f64,
        ])
    }

    /// Percentage speed increases of CAF over monopoly in Type-A blocks
    /// where CAF wins (Figure 4c: median 75 %, p80 400 %).
    pub fn type_a_uplift_percents(&self) -> Vec<f64> {
        self.blocks_of(BlockType::A)
            .filter_map(|b| {
                let mono = b.monopoly_speed?;
                if compare_speeds(b.caf_speed, mono) == ComparisonOutcome::CafBetter && mono > 0.0 {
                    Some(100.0 * (b.caf_speed - mono) / mono)
                } else {
                    None
                }
            })
            .collect()
    }

    /// `(caf, monopoly)` average speeds for Type-A blocks where CAF wins
    /// (Figure 4b's two CDFs).
    pub fn type_a_winning_speeds(&self) -> Vec<(f64, f64)> {
        self.blocks_of(BlockType::A)
            .filter_map(|b| {
                let mono = b.monopoly_speed?;
                (compare_speeds(b.caf_speed, mono) == ComparisonOutcome::CafBetter)
                    .then_some((b.caf_speed, mono))
            })
            .collect()
    }

    /// `(caf, competition)` average speeds for Type-B blocks where CAF
    /// wins (Figure 5b).
    pub fn type_b_winning_speeds(&self) -> Vec<(f64, f64)> {
        self.blocks_of(BlockType::B)
            .filter_map(|b| {
                let comp = b.competition_speed?;
                (compare_speeds(b.caf_speed, comp) == ComparisonOutcome::CafBetter)
                    .then_some((b.caf_speed, comp))
            })
            .collect()
    }

    /// The fraction of surviving blocks whose CAF-address average meets
    /// a policy download floor (Mbps), or `None` when no blocks
    /// survived. The sweep engine scores this under each speed-tier
    /// axis value: attainment under 10/1 vs 25/3 vs 100/20 shows how
    /// much of the measured CAF deployment clears each era's bar.
    pub fn tier_attainment(&self, min_down_mbps: f64) -> Option<f64> {
        if self.blocks.is_empty() {
            return None;
        }
        let meeting = self
            .blocks
            .iter()
            .filter(|b| b.caf_speed >= min_down_mbps)
            .count();
        Some(meeting as f64 / self.blocks.len() as f64)
    }

    /// CAF speeds in Type-A vs Type-B blocks (Figure 6a's two CDFs).
    pub fn caf_speeds_by_type(&self) -> (Vec<f64>, Vec<f64>) {
        let a = self.blocks_of(BlockType::A).map(|b| b.caf_speed).collect();
        let b = self.blocks_of(BlockType::B).map(|b| b.caf_speed).collect();
        (a, b)
    }

    /// The Figure-6b style case study: the same-ISP (Type A, Type B) block
    /// pair with the largest CAF-speed contrast, preferring the requested
    /// state, falling back to any state.
    pub fn case_study(&self, prefer_state: UsState) -> Option<(BlockComparison, BlockComparison)> {
        let candidates = |state_filter: Option<UsState>| {
            let mut best: Option<(BlockComparison, BlockComparison)> = None;
            let mut best_gap = 0.0;
            for a in self.blocks_of(BlockType::A) {
                if state_filter.is_some_and(|s| a.state != s) {
                    continue;
                }
                for b in self.blocks_of(BlockType::B) {
                    if b.caf_isp != a.caf_isp || b.state != a.state {
                        continue;
                    }
                    let gap = b.caf_speed - a.caf_speed;
                    if gap > best_gap {
                        best_gap = gap;
                        best = Some((a.clone(), b.clone()));
                    }
                }
            }
            best
        };
        candidates(Some(prefer_state)).or_else(|| candidates(None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_synth::SynthConfig;

    fn analysis() -> Q3Analysis {
        let synth = SynthConfig {
            seed: 77,
            scale: 25,
        };
        let world = World::generate_states(synth, &[UsState::Ohio, UsState::California]);
        Q3Analysis::run(
            &world,
            CampaignConfig {
                seed: synth.seed,
                workers: 4,
                ..CampaignConfig::default()
            },
        )
    }

    #[test]
    fn compare_speeds_tolerance() {
        assert_eq!(compare_speeds(100.0, 100.0), ComparisonOutcome::Tie);
        assert_eq!(compare_speeds(100.0, 99.5), ComparisonOutcome::Tie);
        assert_eq!(compare_speeds(110.0, 100.0), ComparisonOutcome::CafBetter);
        assert_eq!(compare_speeds(90.0, 100.0), ComparisonOutcome::OtherBetter);
    }

    #[test]
    fn pipeline_produces_typed_blocks() {
        let q3 = analysis();
        assert!(!q3.blocks.is_empty());
        assert!(q3.caf_queried > 0 && q3.non_caf_queried > 0);
        assert!(q3.caf_served <= q3.caf_queried);
        // Type A dominates, per the paper's 8.76k/0.56k/0.10k mix.
        let a = q3.blocks_of(BlockType::A).count();
        let b = q3.blocks_of(BlockType::B).count();
        assert!(a > b, "A {a} should outnumber B {b}");
        // Some blocks get dropped by the no-served-non-CAF filter.
        assert!(q3.blocks_dropped > 0);
    }

    #[test]
    fn type_consistency_with_mode_speeds() {
        let q3 = analysis();
        for b in &q3.blocks {
            match b.block_type {
                BlockType::A => {
                    assert!(b.monopoly_speed.is_some());
                    assert!(b.competition_speed.is_none());
                }
                BlockType::B => {
                    assert!(b.monopoly_speed.is_none());
                    assert!(b.competition_speed.is_some());
                }
                BlockType::C => {
                    assert!(b.monopoly_speed.is_some());
                    assert!(b.competition_speed.is_some());
                }
            }
            assert!(b.caf_speed > 0.0);
        }
    }

    #[test]
    fn type_a_outcomes_shape() {
        let q3 = analysis();
        let [better, tie, worse] = q3.type_a_outcomes().expect("type A blocks exist");
        assert!((better + tie + worse - 1.0).abs() < 1e-9);
        // Tie is the modal outcome; CAF-better beats CAF-worse (§4.3).
        assert!(
            tie > better && tie > worse,
            "tie {tie} better {better} worse {worse}"
        );
        assert!(better > worse, "better {better} vs worse {worse}");
    }

    #[test]
    fn uplift_is_substantial_where_caf_wins() {
        let q3 = analysis();
        let mut uplifts = q3.type_a_uplift_percents();
        assert!(!uplifts.is_empty());
        uplifts.sort_by(|a, b| a.total_cmp(b));
        let median = uplifts[uplifts.len() / 2];
        // Figure 4c: median ≈ 75 %. Allow generous slack at small scale.
        assert!((25.0..250.0).contains(&median), "median uplift {median}");
        assert!(uplifts.iter().all(|&u| u > 0.0));
    }

    #[test]
    fn winning_speeds_are_ordered() {
        let q3 = analysis();
        for (caf, mono) in q3.type_a_winning_speeds() {
            assert!(caf > mono);
        }
        for (caf, comp) in q3.type_b_winning_speeds() {
            assert!(caf > comp);
        }
    }

    #[test]
    fn tier_attainment_is_monotone_in_the_floor() {
        let q3 = analysis();
        let caf = q3.tier_attainment(10.0).expect("blocks exist");
        let fcc = q3.tier_attainment(25.0).unwrap();
        let bead = q3.tier_attainment(100.0).unwrap();
        for rate in [caf, fcc, bead] {
            assert!((0.0..=1.0).contains(&rate));
        }
        assert!(caf >= fcc && fcc >= bead, "caf {caf} fcc {fcc} bead {bead}");
        // A zero floor is attained by every surviving block.
        assert_eq!(q3.tier_attainment(0.0), Some(1.0));
        let empty = Q3Analysis {
            blocks: Vec::new(),
            caf_queried: 0,
            non_caf_queried: 0,
            caf_served: 0,
            non_caf_served: 0,
            blocks_dropped: 0,
            queries_per_isp: HashMap::new(),
        };
        assert_eq!(empty.tier_attainment(10.0), None);
    }

    #[test]
    fn case_study_finds_a_contrast_pair() {
        let q3 = analysis();
        if let Some((a, b)) = q3.case_study(UsState::Georgia) {
            assert_eq!(a.caf_isp, b.caf_isp);
            assert_eq!(a.state, b.state);
            assert_eq!(a.block_type, BlockType::A);
            assert_eq!(b.block_type, BlockType::B);
            assert!(b.caf_speed > a.caf_speed);
        }
        // (Absence is acceptable at tiny scales; presence is checked in
        // the integration suite at larger scale.)
    }
}
