//! Epoch-versioned incremental recompute over the audit.
//!
//! A challenge delta batch ([`World::apply_deltas`]) invalidates a
//! handful of (state, CBG, ISP) cells; everything else in the audited
//! world is untouched. Rerunning [`Audit::run_with`] from scratch after
//! every batch would redo all of that clean work, so [`IncrementalAudit`]
//! keeps the audit's per-cell partial results resident and recomputes
//! **only the invalidated cells**, splicing the refreshed partials into
//! the retained ones.
//!
//! This is deliberately a refactor of the existing engine, not a second
//! one: cells were already the audit's scheduling element
//! ([`Audit::audit_cells_each`] computes them independently inside any
//! shard), so delta invalidation reduces to planning a shard schedule
//! over the dirty element runs — [`EngineConfig::plan_subset`] — and
//! running the same per-cell loop over it. The same LPT dispatch,
//! nested-campaign worker budgeting, and positional reassembly apply.
//!
//! ## Determinism contract
//!
//! [`IncrementalAudit::dataset`] at epoch `e` is **byte-identical** to a
//! from-scratch [`Audit::run_with`] over a world rebuilt at epoch `e`,
//! at any worker count and shard policy on either side, and under any
//! batch decomposition of the delta stream. Three facts carry it:
//!
//! 1. Cell partials are pure functions of `(seed, cell state)` — the
//!    campaign's query outcomes are entity-keyed and the resample
//!    cursor never crosses cells.
//! 2. [`World::apply_deltas`] rebuilds touched cells content-addressed
//!    (seed baseline + effective corrections), so the cell state a
//!    refresh sees equals what a fresh world at the same epoch holds.
//! 3. Dataset assembly is the same cell-order, round-major merge the
//!    batch path uses ([`merge_round_major`]), so retained and
//!    refreshed partials interleave exactly as a full run would emit
//!    them.
//!
//! The contract is pinned by `crates/tests/tests/challenge.rs` across
//! worker counts × shard policies × batch splits.

use caf_geo::{BlockGroupId, UsState};
use caf_synth::challenge::DeltaOutcome;
use caf_synth::{Isp, StateWorld, World};
use std::collections::HashMap;
use std::ops::Range;

use crate::audit::{flatten_partial, merge_round_major, Audit, AuditDataset, StatePartial};
use crate::engine::{map_units, EngineConfig};

/// Resident per-cell audit state for one state: one [`StatePartial`]
/// per (ISP, CBG) cell, in the state's canonical cell order
/// (`usac.cbg_cells()` — sorted by `(Isp, BlockGroupId)`).
#[derive(Debug, Clone)]
struct StateCells {
    state: UsState,
    cells: Vec<StatePartial>,
}

/// The audit as a live, epoch-versioned system of record: full compute
/// once, then cell-granular refreshes as challenge deltas arrive.
#[derive(Debug, Clone)]
pub struct IncrementalAudit {
    audit: Audit,
    epoch: u64,
    states: Vec<StateCells>,
}

impl IncrementalAudit {
    /// Runs the full audit over `world`, keeping per-cell partials
    /// resident. Equivalent in cost to one [`Audit::run_with`], plus
    /// the retained partials' memory.
    pub fn build(audit: Audit, world: &World, engine: EngineConfig) -> IncrementalAudit {
        let _span = caf_obs::span("audit.incremental.build");
        let units: Vec<&StateWorld> = world.states.iter().collect();
        let hints = audit.unit_hints(&units);
        let plan = engine.plan(&hints);
        let configured = engine.workers;
        let engine = engine.for_plan(&plan);
        Audit::record_plan_gauges(configured, engine.workers, units.len());
        let campaign = audit.nested_campaign(&engine);
        let unit_partials = map_units(&plan, |shard| {
            audit.audit_cells_each(
                &campaign,
                &world.truth,
                units[shard.unit],
                shard.range.clone(),
            )
        });
        let states = unit_partials
            .into_iter()
            .zip(&world.states)
            .map(|(shard_groups, sw)| StateCells {
                state: sw.state,
                cells: shard_groups.into_iter().flatten().collect(),
            })
            .collect();
        IncrementalAudit {
            audit,
            epoch: world.epoch,
            states,
        }
    }

    /// The epoch the resident partials reflect.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The audit configuration driving (re)computation.
    pub fn audit(&self) -> &Audit {
        &self.audit
    }

    /// Total resident cells across all states.
    pub fn cell_count(&self) -> usize {
        self.states.iter().map(|s| s.cells.len()).sum()
    }

    /// Recomputes the cells a delta batch invalidated, against the
    /// already-advanced `world`. `outcome` must be the result of the
    /// [`World::apply_deltas`] call (or the last of a series of calls —
    /// pass accumulated touched sets if refreshing less often than
    /// applying) that brought `world` to its current epoch.
    ///
    /// Dirty (state, CBG) addresses arrive in *geography enumeration*
    /// coordinates (the challenge wire format) and are translated to
    /// audit cell positions (`usac.cbg_cells()` order) here; contiguous
    /// dirty positions coalesce into runs so the subset plan shards
    /// them like any other cost-hinted range.
    pub fn refresh(&mut self, world: &World, outcome: &DeltaOutcome, engine: EngineConfig) {
        assert_eq!(
            world.epoch, outcome.epoch,
            "refresh must see the world the outcome describes"
        );
        assert!(
            self.epoch <= outcome.epoch,
            "cannot refresh backwards (resident epoch {}, outcome {})",
            self.epoch,
            outcome.epoch
        );
        let _span = caf_obs::span("audit.incremental.refresh");
        let units: Vec<&StateWorld> = world.states.iter().collect();
        assert_eq!(
            units.len(),
            self.states.len(),
            "world shape changed under the incremental audit"
        );

        // Translate dirty geography indices to audit cell runs.
        let mut runs: Vec<Vec<Range<usize>>> = vec![Vec::new(); units.len()];
        let mut dirty_cells = 0u64;
        for (state, geo_indices) in &outcome.touched {
            let unit = world
                .states
                .iter()
                .position(|s| s.state == *state)
                .expect("touched state present in world");
            debug_assert_eq!(self.states[unit].state, *state);
            let sw = &world.states[unit];
            let pos_of: HashMap<(Isp, BlockGroupId), usize> = sw
                .usac
                .cbg_cells()
                .enumerate()
                .map(|(pos, (isp, cbg, _))| ((isp, cbg), pos))
                .collect();
            let mut positions: Vec<usize> = geo_indices
                .iter()
                .map(|&i| {
                    let cbg = &sw.geography.cbgs[i];
                    pos_of[&(cbg.isp, cbg.id)]
                })
                .collect();
            positions.sort_unstable();
            positions.dedup();
            dirty_cells += positions.len() as u64;
            for &pos in &positions {
                match runs[unit].last_mut() {
                    Some(run) if run.end == pos => run.end = pos + 1,
                    _ => runs[unit].push(pos..pos + 1),
                }
            }
        }

        let hints = self.audit.unit_hints(&units);
        let plan = engine.plan_subset(&hints, &runs);
        caf_obs::count("caf.core.audit.cells_refreshed", dirty_cells);
        caf_obs::observe("caf.core.audit.dirty_shards", plan.shard_count() as u64);
        let engine = engine.for_plan(&plan);
        let audit = self.audit;
        let campaign = audit.nested_campaign(&engine);
        let refreshed = map_units(&plan, |shard| {
            audit.audit_cells_each(
                &campaign,
                &world.truth,
                units[shard.unit],
                shard.range.clone(),
            )
        });

        // Splice refreshed partials into the retained cells: shard
        // groups arrive in ascending range order, covering exactly the
        // dirty runs in order.
        for (unit, (shard_groups, unit_runs)) in refreshed.into_iter().zip(&runs).enumerate() {
            let new_partials: Vec<StatePartial> = shard_groups.into_iter().flatten().collect();
            let positions: Vec<usize> = unit_runs.iter().flat_map(|r| r.clone()).collect();
            debug_assert_eq!(new_partials.len(), positions.len());
            for (pos, partial) in positions.into_iter().zip(new_partials) {
                self.states[unit].cells[pos] = partial;
            }
        }
        self.epoch = outcome.epoch;
        caf_obs::gauge("caf.core.audit.epoch", self.epoch);
    }

    /// Materializes the full [`AuditDataset`] at the resident epoch —
    /// byte-identical to a from-scratch [`Audit::run_with`] over a
    /// world at the same epoch (see the module docs).
    pub fn dataset(&self) -> AuditDataset {
        let _span = caf_obs::span("audit.incremental.dataset");
        let mut rows = Vec::new();
        let mut records = Vec::new();
        let mut coverage = Vec::new();
        for state_cells in &self.states {
            let merged = merge_round_major(state_cells.cells.clone());
            flatten_partial(merged, &mut rows, &mut records, &mut coverage);
        }
        AuditDataset {
            rows,
            records,
            coverage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditConfig;
    use crate::sampling::SamplingRule;
    use caf_bqt::CampaignConfig;
    use caf_synth::challenge::{ChallengeDelta, Correction};
    use caf_synth::SynthConfig;

    fn fixture() -> (World, Audit) {
        let synth = SynthConfig {
            seed: 55,
            scale: 40,
        };
        let world = World::generate_states(synth, &[UsState::Vermont, UsState::Utah]);
        let audit = Audit::new(AuditConfig {
            synth,
            campaign: CampaignConfig {
                seed: synth.seed,
                workers: 2,
                ..CampaignConfig::default()
            },
            rule: SamplingRule::paper(),
            resample_rounds: 2,
        });
        (world, audit)
    }

    fn datasets_equal(a: &AuditDataset, b: &AuditDataset) {
        assert_eq!(a.records, b.records);
        assert_eq!(a.to_dataframe().to_csv(), b.to_dataframe().to_csv());
        assert_eq!(a.coverage.len(), b.coverage.len());
        for (x, y) in a.coverage.iter().zip(&b.coverage) {
            assert_eq!(
                (x.isp, x.cbg, x.total, x.queried, x.collected),
                (y.isp, y.cbg, y.total, y.queried, y.collected)
            );
        }
    }

    #[test]
    fn build_matches_batch_audit_and_refresh_tracks_deltas() {
        let (mut world, audit) = fixture();
        let engine = EngineConfig::with_workers(2);
        let mut inc = IncrementalAudit::build(audit, &world, engine);
        assert_eq!(inc.epoch(), 0);
        datasets_equal(&inc.dataset(), &audit.run_with(&world, engine));

        // Apply a batch touching two Vermont cells and refresh.
        let vt = world.state(UsState::Vermont).unwrap();
        let deltas = vec![
            ChallengeDelta {
                state: UsState::Vermont,
                cbg: 2,
                isp: vt.geography.cbgs[2].isp,
                correction: Correction::Availability { rate_ppm: 80_000 },
            },
            ChallengeDelta {
                state: UsState::Vermont,
                cbg: 4,
                isp: vt.geography.cbgs[4].isp,
                correction: Correction::CertifiedTier {
                    down_mbps: 25,
                    up_mbps: 3,
                },
            },
        ];
        let outcome = world.apply_deltas(&deltas).expect("valid deltas");
        inc.refresh(&world, &outcome, engine);
        assert_eq!(inc.epoch(), 2);

        // The refreshed dataset equals a from-scratch audit of the
        // mutated world.
        datasets_equal(&inc.dataset(), &audit.run_with(&world, engine));
    }
}
