//! Extension: advertised vs experienced service quality.
//!
//! §5 of the paper flags that BQT data "does not always reflect the
//! experienced service quality" and leaves bridging that gap to future
//! work. This module implements that bridge over the synthetic
//! crowdsourced speed tests of [`caf_synth::speedtest`]: it joins
//! measurements onto the audit rows and asks how many addresses that
//! *look* compliant from advertised plans would still clear the FCC's
//! 10 Mbps floor on *measured* throughput.

use caf_stats::{median, quantile};
use caf_synth::params::CalibrationParams;
use caf_synth::speedtest::SpeedTest;
use caf_synth::usac::Technology;
use caf_synth::Isp;
use std::collections::HashMap;

use crate::index::group_ranges;

/// Per-address experienced-quality aggregation.
#[derive(Debug, Clone)]
pub struct ExperiencedAddress {
    /// The ISP.
    pub isp: Isp,
    /// Advertised download speed, Mbps.
    pub advertised_mbps: f64,
    /// Median measured download speed across the address's tests, Mbps.
    pub median_measured_mbps: f64,
    /// Number of tests.
    pub tests: usize,
    /// Last-mile technology.
    pub technology: Technology,
}

impl ExperiencedAddress {
    /// Measured-over-advertised ratio.
    pub fn delivery_ratio(&self) -> f64 {
        if self.advertised_mbps <= 0.0 {
            0.0
        } else {
            self.median_measured_mbps / self.advertised_mbps
        }
    }
}

/// The experienced-quality analysis.
#[derive(Debug)]
pub struct ExperiencedAnalysis {
    /// One row per measured address.
    pub addresses: Vec<ExperiencedAddress>,
}

impl ExperiencedAnalysis {
    /// Aggregates raw speed tests per address (median of each address's
    /// tests, so heavy testers don't dominate). Grouping uses the shared
    /// sort-based [`group_ranges`] primitive, so the result is fully
    /// deterministic down to tie order.
    pub fn compute(tests: &[SpeedTest]) -> ExperiencedAnalysis {
        let grouped = group_ranges(tests, |t| (t.address.0, t.isp));
        let mut addresses: Vec<ExperiencedAddress> = grouped
            .iter()
            .map(|(_, rows)| {
                let measured: Vec<f64> = rows
                    .iter()
                    .map(|&i| tests[i as usize].measured_mbps)
                    .collect();
                let first = &tests[rows[0] as usize];
                ExperiencedAddress {
                    isp: first.isp,
                    advertised_mbps: first.advertised_mbps,
                    median_measured_mbps: median(&measured).expect("group is non-empty"),
                    tests: rows.len(),
                    technology: first.technology,
                }
            })
            .collect();
        addresses.sort_by(|a, b| {
            (a.isp, a.advertised_mbps.to_bits()).cmp(&(b.isp, b.advertised_mbps.to_bits()))
        });
        ExperiencedAnalysis { addresses }
    }

    /// Fraction of measured addresses whose *advertised* speed clears the
    /// FCC floor but whose *measured* speed does not — the optimism gap
    /// in a BQT-only audit.
    pub fn optimism_gap(&self) -> f64 {
        let (floor, _) = CalibrationParams::fcc_speed_floor();
        let advertised_ok: Vec<&ExperiencedAddress> = self
            .addresses
            .iter()
            .filter(|a| a.advertised_mbps >= floor)
            .collect();
        if advertised_ok.is_empty() {
            return 0.0;
        }
        let fail = advertised_ok
            .iter()
            .filter(|a| a.median_measured_mbps < floor)
            .count();
        fail as f64 / advertised_ok.len() as f64
    }

    /// Median delivery ratio per ISP.
    pub fn delivery_ratio_by_isp(&self) -> Vec<(Isp, f64)> {
        let mut by_isp: HashMap<Isp, Vec<f64>> = HashMap::new();
        for a in &self.addresses {
            by_isp.entry(a.isp).or_default().push(a.delivery_ratio());
        }
        let mut out: Vec<(Isp, f64)> = by_isp
            .into_iter()
            .map(|(isp, ratios)| (isp, median(&ratios).expect("non-empty")))
            .collect();
        out.sort_by_key(|(isp, _)| *isp);
        out
    }

    /// Median delivery ratio per technology (the DSL-under-delivery
    /// finding of the paper's reference \[44\]).
    pub fn delivery_ratio_by_technology(&self) -> Vec<(Technology, f64)> {
        let mut by_tech: HashMap<Technology, Vec<f64>> = HashMap::new();
        for a in &self.addresses {
            by_tech
                .entry(a.technology)
                .or_default()
                .push(a.delivery_ratio());
        }
        let mut out: Vec<(Technology, f64)> = by_tech
            .into_iter()
            .map(|(tech, ratios)| (tech, median(&ratios).expect("non-empty")))
            .collect();
        out.sort_by_key(|(t, _)| t.label());
        out
    }

    /// `(advertised, measured)` percentile pairs for a CDF-style figure.
    pub fn speed_percentiles(&self, levels: &[f64]) -> Vec<(f64, f64, f64)> {
        let advertised: Vec<f64> = self.addresses.iter().map(|a| a.advertised_mbps).collect();
        let measured: Vec<f64> = self
            .addresses
            .iter()
            .map(|a| a.median_measured_mbps)
            .collect();
        levels
            .iter()
            .filter_map(|&p| {
                Some((
                    p,
                    quantile(&advertised, p).ok()?,
                    quantile(&measured, p).ok()?,
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_geo::AddressId;

    fn test(addr: u64, advertised: f64, measured: f64, tech: Technology) -> SpeedTest {
        SpeedTest {
            address: AddressId(addr),
            isp: Isp::Frontier,
            advertised_mbps: advertised,
            measured_mbps: measured,
            hour: 12,
            technology: tech,
        }
    }

    #[test]
    fn per_address_median_aggregation() {
        let tests = vec![
            test(1, 100.0, 80.0, Technology::Fiber),
            test(1, 100.0, 60.0, Technology::Fiber),
            test(1, 100.0, 90.0, Technology::Fiber),
            test(2, 10.0, 4.0, Technology::Dsl),
        ];
        let analysis = ExperiencedAnalysis::compute(&tests);
        assert_eq!(analysis.addresses.len(), 2);
        let addr1 = analysis
            .addresses
            .iter()
            .find(|a| a.advertised_mbps == 100.0)
            .expect("address 1 present");
        assert_eq!(addr1.median_measured_mbps, 80.0);
        assert_eq!(addr1.tests, 3);
        assert!((addr1.delivery_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn optimism_gap_counts_advertised_pass_measured_fail() {
        let tests = vec![
            test(1, 10.0, 6.0, Technology::Dsl), // advertised ok, measured fails
            test(2, 10.0, 12.0, Technology::Dsl), // both ok (over-delivery)
            test(3, 25.0, 20.0, Technology::Dsl), // both ok
            test(4, 5.0, 3.0, Technology::Dsl),  // advertised already fails: excluded
        ];
        let analysis = ExperiencedAnalysis::compute(&tests);
        let gap = analysis.optimism_gap();
        assert!((gap - 1.0 / 3.0).abs() < 1e-12, "gap {gap}");
    }

    #[test]
    fn ratios_by_isp_and_technology() {
        let tests = vec![
            test(1, 100.0, 50.0, Technology::Dsl),
            test(2, 100.0, 95.0, Technology::Fiber),
        ];
        let analysis = ExperiencedAnalysis::compute(&tests);
        let by_isp = analysis.delivery_ratio_by_isp();
        assert_eq!(by_isp.len(), 1);
        let by_tech = analysis.delivery_ratio_by_technology();
        assert_eq!(by_tech.len(), 2);
        let dsl = by_tech
            .iter()
            .find(|(t, _)| *t == Technology::Dsl)
            .expect("dsl present")
            .1;
        let fiber = by_tech
            .iter()
            .find(|(t, _)| *t == Technology::Fiber)
            .expect("fiber present")
            .1;
        assert!(fiber > dsl);
    }

    #[test]
    fn percentile_pairs() {
        let tests = vec![
            test(1, 10.0, 6.0, Technology::Dsl),
            test(2, 100.0, 90.0, Technology::Fiber),
            test(3, 1000.0, 950.0, Technology::Fiber),
        ];
        let analysis = ExperiencedAnalysis::compute(&tests);
        let pairs = analysis.speed_percentiles(&[0.0, 0.5, 1.0]);
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0], (0.0, 10.0, 6.0));
        assert_eq!(pairs[2], (1.0, 1000.0, 950.0));
        // Measured sits below advertised at every level here.
        for (_, adv, meas) in pairs {
            assert!(meas <= adv);
        }
    }

    #[test]
    fn empty_input_is_graceful() {
        let analysis = ExperiencedAnalysis::compute(&[]);
        assert!(analysis.addresses.is_empty());
        assert_eq!(analysis.optimism_gap(), 0.0);
        assert!(analysis.delivery_ratio_by_isp().is_empty());
        assert!(analysis.speed_percentiles(&[0.5]).is_empty());
    }
}
