//! Extension: the §7 competition counterfactual.
//!
//! The paper's takeaway for policymakers is that "competition is most
//! effective at improving consumer value" and that they "should consider
//! ways to foster competition in monopoly-served regions". This module
//! quantifies that recommendation with the audit's own data: given the
//! measured CAF speed distributions in Type A (no competition) and
//! Type B (competition) blocks, it estimates the speed households would
//! gain if a fraction of Type A blocks acquired a competitor — a simple
//! potential-outcomes calculation under the assumption that induced
//! competition shifts a block's distribution from the A-population to
//! the B-population (which is what Figure 6a measures observationally).

use caf_stats::{median, quantile};

use crate::q3::{BlockType, Q3Analysis};

/// A subsidy-reallocation rule: how a policy counterfactual redirects
/// CAF support toward fostering competition in monopoly-served (Type A)
/// blocks. Each rule resolves to the fraction of Type A blocks treated
/// in the §7 potential-outcomes mixture — the sweep engine's third
/// policy axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubsidyRule {
    /// No reallocation: support stays with the incumbent (fraction 0).
    StatusQuo,
    /// Half of the support is redirected to seeding a competitor in
    /// Type A blocks (fraction 0.5).
    ReallocateHalf,
    /// All Type A blocks gain a competitor (fraction 1).
    FullBuildout,
}

impl SubsidyRule {
    /// Parses a grid label: `"status_quo"`, `"reallocate_half"`, or
    /// `"full_buildout"` — the vocabulary shared by sweep spec files and
    /// `/v1/sweep` query strings.
    pub fn parse(label: &str) -> Option<SubsidyRule> {
        match label {
            "status_quo" => Some(SubsidyRule::StatusQuo),
            "reallocate_half" => Some(SubsidyRule::ReallocateHalf),
            "full_buildout" => Some(SubsidyRule::FullBuildout),
            _ => None,
        }
    }

    /// The grid label [`SubsidyRule::parse`] accepts for this rule.
    pub fn label(self) -> &'static str {
        match self {
            SubsidyRule::StatusQuo => "status_quo",
            SubsidyRule::ReallocateHalf => "reallocate_half",
            SubsidyRule::FullBuildout => "full_buildout",
        }
    }

    /// All rules, in treated-fraction order.
    pub fn all() -> [SubsidyRule; 3] {
        [
            SubsidyRule::StatusQuo,
            SubsidyRule::ReallocateHalf,
            SubsidyRule::FullBuildout,
        ]
    }

    /// The fraction of Type A blocks this rule treats.
    pub fn treated_fraction(self) -> f64 {
        match self {
            SubsidyRule::StatusQuo => 0.0,
            SubsidyRule::ReallocateHalf => 0.5,
            SubsidyRule::FullBuildout => 1.0,
        }
    }
}

/// One point of the counterfactual sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterfactualPoint {
    /// Fraction of Type A blocks given a competitor.
    pub treated_fraction: f64,
    /// Expected mean CAF speed across (previously) Type A blocks, Mbps.
    pub mean_caf_speed: f64,
    /// Expected median CAF speed, Mbps.
    pub median_caf_speed: f64,
}

/// The competition counterfactual over a Q3 analysis.
#[derive(Debug)]
pub struct CompetitionCounterfactual {
    /// Baseline (untreated) Type A CAF speeds.
    pub type_a_speeds: Vec<f64>,
    /// Treated-population (Type B) CAF speeds.
    pub type_b_speeds: Vec<f64>,
}

impl CompetitionCounterfactual {
    /// Builds the counterfactual from a Q3 analysis, or `None` if either
    /// block population is empty.
    pub fn from_q3(analysis: &Q3Analysis) -> Option<CompetitionCounterfactual> {
        let type_a: Vec<f64> = analysis
            .blocks_of(BlockType::A)
            .map(|b| b.caf_speed)
            .collect();
        let type_b: Vec<f64> = analysis
            .blocks_of(BlockType::B)
            .map(|b| b.caf_speed)
            .collect();
        if type_a.is_empty() || type_b.is_empty() {
            return None;
        }
        Some(CompetitionCounterfactual {
            type_a_speeds: type_a,
            type_b_speeds: type_b,
        })
    }

    /// The expected outcome if `fraction` of Type A blocks gain a
    /// competitor: a mixture of the A and B populations.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn at(&self, fraction: f64) -> CounterfactualPoint {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "treated fraction is a probability"
        );
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let mean_a = mean(&self.type_a_speeds);
        let mean_b = mean(&self.type_b_speeds);
        // Mixture mean is exact; the mixture median needs the pooled
        // weighted distribution.
        let mixture_mean = (1.0 - fraction) * mean_a + fraction * mean_b;
        let mixture_median = mixture_quantile(
            &self.type_a_speeds,
            1.0 - fraction,
            &self.type_b_speeds,
            fraction,
            0.5,
        );
        CounterfactualPoint {
            treated_fraction: fraction,
            mean_caf_speed: mixture_mean,
            median_caf_speed: mixture_median,
        }
    }

    /// A sweep over treatment fractions.
    pub fn sweep(&self, fractions: &[f64]) -> Vec<CounterfactualPoint> {
        fractions.iter().map(|&f| self.at(f)).collect()
    }

    /// The expected outcome under a named subsidy-reallocation rule —
    /// [`CompetitionCounterfactual::at`] the rule's treated fraction.
    pub fn under_rule(&self, rule: SubsidyRule) -> CounterfactualPoint {
        self.at(rule.treated_fraction())
    }

    /// The relative mean-speed gain from full treatment.
    pub fn full_treatment_gain(&self) -> f64 {
        let base = self.at(0.0).mean_caf_speed;
        let full = self.at(1.0).mean_caf_speed;
        if base > 0.0 {
            full / base - 1.0
        } else {
            0.0
        }
    }
}

/// The `p`-quantile of a two-component mixture with component weights
/// `wa`, `wb` (need not be normalized).
fn mixture_quantile(a: &[f64], wa: f64, b: &[f64], wb: f64, p: f64) -> f64 {
    // Normalize per-observation weights so each component contributes its
    // mixture weight regardless of sample size.
    let mut weighted: Vec<(f64, f64)> = Vec::with_capacity(a.len() + b.len());
    if wa > 0.0 {
        let w = wa / a.len() as f64;
        weighted.extend(a.iter().map(|&x| (x, w)));
    }
    if wb > 0.0 {
        let w = wb / b.len() as f64;
        weighted.extend(b.iter().map(|&x| (x, w)));
    }
    weighted.sort_by(|x, y| x.0.total_cmp(&y.0));
    let total: f64 = weighted.iter().map(|(_, w)| w).sum();
    let threshold = p * total;
    let mut cum = 0.0;
    for (x, w) in &weighted {
        cum += w;
        if cum >= threshold {
            return *x;
        }
    }
    weighted.last().map(|(x, _)| *x).unwrap_or(0.0)
}

/// Convenience: quartiles of a speed population, for display.
pub fn speed_quartiles(xs: &[f64]) -> Option<(f64, f64, f64)> {
    Some((
        quantile(xs, 0.25).ok()?,
        median(xs).ok()?,
        quantile(xs, 0.75).ok()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cf() -> CompetitionCounterfactual {
        CompetitionCounterfactual {
            type_a_speeds: vec![10.0, 10.0, 20.0, 20.0],
            type_b_speeds: vec![100.0, 100.0],
        }
    }

    #[test]
    fn endpoints_match_populations() {
        let cf = cf();
        let at0 = cf.at(0.0);
        assert!((at0.mean_caf_speed - 15.0).abs() < 1e-12);
        assert!((at0.median_caf_speed - 10.0).abs() < 1e-9);
        let at1 = cf.at(1.0);
        assert!((at1.mean_caf_speed - 100.0).abs() < 1e-12);
        assert!((at1.median_caf_speed - 100.0).abs() < 1e-9);
    }

    #[test]
    fn mixture_mean_is_linear() {
        let cf = cf();
        let half = cf.at(0.5);
        assert!((half.mean_caf_speed - (0.5 * 15.0 + 0.5 * 100.0)).abs() < 1e-12);
        // Median jumps once the treated mass crosses 50 %.
        assert!(half.median_caf_speed >= 20.0);
        let sweep = cf.sweep(&[0.0, 0.25, 0.5, 1.0]);
        assert_eq!(sweep.len(), 4);
        for pair in sweep.windows(2) {
            assert!(pair[1].mean_caf_speed >= pair[0].mean_caf_speed);
        }
    }

    #[test]
    fn full_treatment_gain() {
        let cf = cf();
        assert!((cf.full_treatment_gain() - (100.0 / 15.0 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn quartiles_helper() {
        let (q1, med, q3) = speed_quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!((q1, med, q3), (2.0, 3.0, 4.0));
        assert!(speed_quartiles(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "treated fraction")]
    fn fraction_out_of_range_panics() {
        cf().at(1.5);
    }

    #[test]
    fn subsidy_rule_labels_round_trip() {
        for rule in SubsidyRule::all() {
            assert_eq!(SubsidyRule::parse(rule.label()), Some(rule));
        }
        assert_eq!(SubsidyRule::parse("status quo"), None);
        assert_eq!(SubsidyRule::parse(""), None);
    }

    #[test]
    fn rules_map_onto_mixture_points() {
        let cf = cf();
        assert_eq!(cf.under_rule(SubsidyRule::StatusQuo), cf.at(0.0));
        assert_eq!(cf.under_rule(SubsidyRule::ReallocateHalf), cf.at(0.5));
        assert_eq!(cf.under_rule(SubsidyRule::FullBuildout), cf.at(1.0));
        // More reallocation never lowers the expected mean speed.
        let means: Vec<f64> = SubsidyRule::all()
            .iter()
            .map(|&r| cf.under_rule(r).mean_caf_speed)
            .collect();
        assert!(means.windows(2).all(|w| w[1] >= w[0]));
    }
}
