//! Q1 — the serviceability analysis (§4.1).
//!
//! The serviceability rate of a census block group is the fraction of its
//! definitively-queried addresses the ISP actively serves. Aggregates at
//! coarser granularity (ISP, state, state-ISP pair, national) weight each
//! CBG's rate by the CBG's *total* CAF address count, so the varying
//! per-CBG sampling rates of §3.1 cannot skew the result.
//!
//! The per-(ISP, CBG) grouping is read straight off a shared
//! [`AuditIndex`] — [`ServiceabilityAnalysis::from_index`] is a cheap
//! projection of the index's cell table, and [`compute`]
//! (ServiceabilityAnalysis::compute) stays as the one-shot convenience
//! that builds a throwaway index.

use caf_geo::{BlockGroupId, LatLon, UsState};
use caf_stats::weighted::WeightedSample;
use caf_stats::{pearson, spearman, weighted_mean, Summary};
use caf_synth::Isp;

use crate::audit::AuditDataset;
use crate::engine::EngineConfig;
use crate::index::AuditIndex;

/// A CBG's serviceability observation.
#[derive(Debug, Clone, Copy)]
pub struct CbgRate {
    /// The ISP.
    pub isp: Isp,
    /// The state.
    pub state: UsState,
    /// The CBG.
    pub cbg: BlockGroupId,
    /// Fraction of definitive queries that were served.
    pub rate: f64,
    /// The CBG's total CAF addresses (aggregation weight).
    pub weight: f64,
    /// CBG density (people per square mile).
    pub density: f64,
    /// CBG within-state density percentile.
    pub density_pct: f64,
    /// CBG centroid.
    pub centroid: LatLon,
    /// Definitive queries behind the rate.
    pub n: usize,
}

/// The serviceability analysis over an audit dataset.
#[derive(Debug)]
pub struct ServiceabilityAnalysis {
    /// Per-(ISP, CBG) rates.
    pub cbg_rates: Vec<CbgRate>,
}

impl ServiceabilityAnalysis {
    /// Computes per-CBG rates from the audit rows by building a
    /// throwaway [`AuditIndex`]. Callers holding a shared index (the
    /// bench fixture, the repro harness) should use [`from_index`]
    /// (ServiceabilityAnalysis::from_index) instead.
    pub fn compute(dataset: &AuditDataset) -> ServiceabilityAnalysis {
        ServiceabilityAnalysis::from_index(&AuditIndex::build(dataset))
    }

    /// Projects the analysis off a pre-built index. The index's cell
    /// table already carries every per-(ISP, CBG) aggregate Q1 needs, so
    /// this is a single pass with no re-grouping; cell order is the old
    /// `(isp, cbg)` sort order, byte-identical to the HashMap path.
    pub fn from_index(index: &AuditIndex) -> ServiceabilityAnalysis {
        let cbg_rates: Vec<CbgRate> = index
            .cells()
            .iter()
            .map(|cell| CbgRate {
                isp: cell.isp,
                state: cell.state,
                cbg: cell.cbg,
                rate: cell.serviceability_rate(),
                weight: cell.weight,
                density: cell.density,
                density_pct: cell.density_pct,
                centroid: cell.centroid,
                n: cell.len(),
            })
            .collect();
        ServiceabilityAnalysis { cbg_rates }
    }

    fn weighted(rates: impl Iterator<Item = (f64, f64)>) -> Option<f64> {
        let samples: Vec<WeightedSample> = rates
            .map(|(rate, weight)| WeightedSample::new(rate, weight))
            .collect();
        weighted_mean(&samples).ok()
    }

    /// The overall weighted serviceability rate (the paper's 55.45 %).
    pub fn overall_rate(&self) -> f64 {
        Self::weighted(self.cbg_rates.iter().map(|r| (r.rate, r.weight)))
            .expect("analysis requires at least one CBG")
    }

    /// A bootstrap confidence interval on the overall rate, resampling
    /// *census block groups* (the unit of clustering — resampling
    /// addresses would understate the uncertainty the CBG design induces).
    pub fn overall_rate_ci(
        &self,
        replicates: usize,
        level: f64,
        seed: u64,
    ) -> Result<caf_stats::BootstrapCi, caf_stats::StatsError> {
        self.overall_rate_ci_on(EngineConfig::serial(), replicates, level, seed)
    }

    /// [`overall_rate_ci`](ServiceabilityAnalysis::overall_rate_ci) with
    /// the replicates chunked across an engine worker pool. Bit-identical
    /// to the serial variant at any worker count (the bootstrap keys each
    /// replicate's stream by its index).
    pub fn overall_rate_ci_on(
        &self,
        engine: EngineConfig,
        replicates: usize,
        level: f64,
        seed: u64,
    ) -> Result<caf_stats::BootstrapCi, caf_stats::StatsError> {
        let rows: Vec<(f64, f64)> = self.cbg_rates.iter().map(|r| (r.rate, r.weight)).collect();
        caf_stats::bootstrap_indices_ci_on(
            engine,
            rows.len(),
            |idx| {
                let (num, den) = idx.iter().fold((0.0, 0.0), |(n, d), &i| {
                    (n + rows[i].0 * rows[i].1, d + rows[i].1)
                });
                if den > 0.0 {
                    num / den
                } else {
                    0.0
                }
            },
            replicates,
            level,
            seed,
        )
    }

    /// The weighted rate for one ISP (§4.1: 31.53 % AT&T, 90.42 %
    /// CenturyLink, 70.71 % Frontier, 83.95 % Consolidated).
    pub fn rate_for_isp(&self, isp: Isp) -> Option<f64> {
        Self::weighted(
            self.cbg_rates
                .iter()
                .filter(|r| r.isp == isp)
                .map(|r| (r.rate, r.weight)),
        )
    }

    /// The weighted rate for one state.
    pub fn rate_for_state(&self, state: UsState) -> Option<f64> {
        Self::weighted(
            self.cbg_rates
                .iter()
                .filter(|r| r.state == state)
                .map(|r| (r.rate, r.weight)),
        )
    }

    /// The weighted rate for a (state, ISP) pair.
    pub fn rate_for_pair(&self, state: UsState, isp: Isp) -> Option<f64> {
        Self::weighted(
            self.cbg_rates
                .iter()
                .filter(|r| r.state == state && r.isp == isp)
                .map(|r| (r.rate, r.weight)),
        )
    }

    /// The distribution of CBG-level rates for one ISP (Figure 2a's
    /// box-plot series).
    pub fn distribution_for_isp(&self, isp: Isp) -> Option<Summary> {
        let rates: Vec<f64> = self
            .cbg_rates
            .iter()
            .filter(|r| r.isp == isp)
            .map(|r| r.rate)
            .collect();
        Summary::of(&rates).ok()
    }

    /// The distribution of CBG-level rates for one state (Figure 2b).
    pub fn distribution_for_state(&self, state: UsState) -> Option<Summary> {
        let rates: Vec<f64> = self
            .cbg_rates
            .iter()
            .filter(|r| r.state == state)
            .map(|r| r.rate)
            .collect();
        Summary::of(&rates).ok()
    }

    /// The distribution for a (state, ISP) pair (Figure 2c's AT&T rows).
    pub fn distribution_for_pair(&self, state: UsState, isp: Isp) -> Option<Summary> {
        let rates: Vec<f64> = self
            .cbg_rates
            .iter()
            .filter(|r| r.state == state && r.isp == isp)
            .map(|r| r.rate)
            .collect();
        Summary::of(&rates).ok()
    }

    /// Pearson and Spearman correlation between CBG population density
    /// (log-scaled, matching Figure 3's log axis — raw density is
    /// lognormal-skewed and would dilute Pearson) and serviceability for
    /// an (ISP, state). Returns `None` with fewer than three CBGs or
    /// degenerate variance.
    pub fn density_correlation(&self, isp: Isp, state: UsState) -> Option<(f64, f64)> {
        let pairs: Vec<(f64, f64)> = self
            .cbg_rates
            .iter()
            .filter(|r| r.isp == isp && r.state == state)
            .map(|r| (r.density.max(1e-6).ln(), r.rate))
            .collect();
        if pairs.len() < 3 {
            return None;
        }
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        match (pearson(&xs, &ys), spearman(&xs, &ys)) {
            (Ok(r), Ok(rho)) => Some((r, rho)),
            _ => None,
        }
    }

    /// Density-decile means for Figure 3's trend series: ten
    /// `(mean density, mean rate)` points for an (ISP, state).
    pub fn density_decile_series(&self, isp: Isp, state: UsState) -> Vec<(f64, f64)> {
        let mut rows: Vec<&CbgRate> = self
            .cbg_rates
            .iter()
            .filter(|r| r.isp == isp && r.state == state)
            .collect();
        rows.sort_by(|a, b| a.density.total_cmp(&b.density));
        if rows.is_empty() {
            return Vec::new();
        }
        let per = (rows.len() / 10).max(1);
        rows.chunks(per)
            .take(10)
            .map(|chunk| {
                let d = chunk.iter().map(|r| r.density).sum::<f64>() / chunk.len() as f64;
                let s = chunk.iter().map(|r| r.rate).sum::<f64>() / chunk.len() as f64;
                (d, s)
            })
            .collect()
    }

    /// A geospatial grid of mean serviceability for an (ISP, state) —
    /// Figure 10's map, as `rows × cols` cells of `Option<mean rate>`.
    pub fn geospatial_grid(
        &self,
        isp: Isp,
        state: UsState,
        grid_rows: usize,
        grid_cols: usize,
    ) -> Vec<Vec<Option<f64>>> {
        let bbox = state.bbox();
        let mut sums = vec![vec![0.0; grid_cols]; grid_rows];
        let mut counts = vec![vec![0usize; grid_cols]; grid_rows];
        for r in self
            .cbg_rates
            .iter()
            .filter(|r| r.isp == isp && r.state == state)
        {
            if let Some((row, col)) = bbox.locate(grid_rows, grid_cols, r.centroid) {
                sums[row][col] += r.rate;
                counts[row][col] += 1;
            }
        }
        sums.into_iter()
            .zip(counts)
            .map(|(srow, crow)| {
                srow.into_iter()
                    .zip(crow)
                    .map(|(s, c)| if c > 0 { Some(s / c as f64) } else { None })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditRow;
    use caf_geo::{BlockGroupId, CountyId, StateFips, TractId};
    use caf_synth::plans::PlanCatalog;

    /// Hand-built audit rows: two CBGs with known rates and weights.
    fn hand_dataset() -> AuditDataset {
        let state = StateFips::new(50).unwrap();
        let county = CountyId::new(state, 1).unwrap();
        let tract = TractId::new(county, 1).unwrap();
        let cbg_a = BlockGroupId::new(tract, 1).unwrap();
        let cbg_b = BlockGroupId::new(tract, 2).unwrap();
        let cat = PlanCatalog::for_isp(Isp::Consolidated);
        let plan = cat.plan_from_tier(cat.tier_near(50.0));
        let mk = |i: u64, cbg: BlockGroupId, total: usize, served: bool, dens: f64| AuditRow {
            address: caf_geo::AddressId(i),
            isp: Isp::Consolidated,
            state: UsState::Vermont,
            cbg,
            cbg_total: total,
            density: dens,
            density_pct: dens / 1_000.0,
            centroid: LatLon::new(44.0, -72.5).unwrap(),
            served,
            max_down_mbps: if served { Some(50.0) } else { None },
            plans: if served {
                vec![plan.clone()]
            } else {
                Vec::new()
            },
            max_plan: if served { Some(plan.clone()) } else { None },
            existing_subscriber: false,
        };
        AuditDataset {
            rows: vec![
                // CBG A (weight 100): 2 of 2 served → rate 1.0.
                mk(1, cbg_a, 100, true, 900.0),
                mk(2, cbg_a, 100, true, 900.0),
                // CBG B (weight 300): 0 of 2 served → rate 0.0.
                mk(3, cbg_b, 300, false, 20.0),
                mk(4, cbg_b, 300, false, 20.0),
            ],
            records: Vec::new(),
            coverage: Vec::new(),
        }
    }

    #[test]
    fn weighted_aggregation_matches_hand_computation() {
        let analysis = ServiceabilityAnalysis::compute(&hand_dataset());
        assert_eq!(analysis.cbg_rates.len(), 2);
        // Weighted: (1.0·100 + 0.0·300) / 400 = 0.25 — NOT the unweighted
        // 0.5. This is exactly the §4.1 weighting rule.
        let overall = analysis.overall_rate();
        assert!((overall - 0.25).abs() < 1e-12, "got {overall}");
        assert_eq!(analysis.rate_for_isp(Isp::Consolidated).unwrap(), overall);
        assert_eq!(analysis.rate_for_isp(Isp::Att), None);
        assert!((analysis.rate_for_state(UsState::Vermont).unwrap() - 0.25).abs() < 1e-12);
        assert!(
            (analysis
                .rate_for_pair(UsState::Vermont, Isp::Consolidated)
                .unwrap()
                - 0.25)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn distributions_are_over_cbgs_not_addresses() {
        let analysis = ServiceabilityAnalysis::compute(&hand_dataset());
        let summary = analysis.distribution_for_isp(Isp::Consolidated).unwrap();
        assert_eq!(summary.n, 2); // two CBGs
        assert_eq!(summary.min, 0.0);
        assert_eq!(summary.max, 1.0);
        assert_eq!(summary.median, 0.5);
    }

    #[test]
    fn density_correlation_positive_in_hand_data() {
        // Served CBG is dense, unserved is sparse: perfect correlation.
        let analysis = ServiceabilityAnalysis::compute(&hand_dataset());
        // Only two CBGs → below the 3-CBG floor.
        assert_eq!(
            analysis.density_correlation(Isp::Consolidated, UsState::Vermont),
            None
        );
        let series = analysis.density_decile_series(Isp::Consolidated, UsState::Vermont);
        assert_eq!(series.len(), 2);
        assert!(series[0].0 < series[1].0);
        assert!(series[0].1 < series[1].1);
    }

    #[test]
    fn geospatial_grid_buckets_cbgs() {
        let analysis = ServiceabilityAnalysis::compute(&hand_dataset());
        let grid = analysis.geospatial_grid(Isp::Consolidated, UsState::Vermont, 4, 4);
        let filled: usize = grid.iter().flatten().filter(|c| c.is_some()).count();
        assert_eq!(filled, 1, "both CBGs share one centroid cell");
        let value = grid.iter().flatten().flatten().next().copied().unwrap();
        assert!((value - 0.5).abs() < 1e-12); // mean of 1.0 and 0.0
    }
}
