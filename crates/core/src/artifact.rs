//! Stable JSON artifacts for query-serving and golden-file gates.
//!
//! The repro harness historically exited through human-readable tables;
//! a *serving* layer needs machine-readable results whose bytes are a
//! pure function of the scenario. This module renders the four
//! queryable analyses — serviceability (Q1), compliance (Q2), the Q3
//! monopoly comparison, and the Table-2 traceback error matrix — as
//! [`Json`] trees with **sorted object keys** and deterministic float
//! formatting (Rust's shortest-round-trip `Display`).
//!
//! Both producers share these functions byte-for-byte:
//!
//! * `repro --artifacts DIR` writes `<experiment>.json` golden files;
//! * `caf-serve` returns the same bytes over HTTP.
//!
//! That extends the engine's determinism contract across the network
//! boundary: for a fixed [`ScenarioMeta`], an HTTP response at any
//! server or engine worker count is byte-identical to the repro golden
//! (`ci.sh`'s serve gate diffs the two).

use std::collections::BTreeMap;

use caf_obs::json::Json;
use caf_stats::{median, quantile};
use caf_synth::params::ErrorCategory;
use caf_synth::Isp;

use crate::audit::AuditDataset;
use crate::compliance::ComplianceAnalysis;
use crate::q3::Q3Analysis;
use crate::serviceability::ServiceabilityAnalysis;

/// The scenario identity an artifact was computed under. Everything that
/// can change result *bytes* is here; knobs that only move wall-clock
/// (worker counts, shard policy) are deliberately absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioMeta {
    /// The run seed.
    pub seed: u64,
    /// The Q1/Q2 world scale (1:`scale`).
    pub scale: u32,
    /// The Q3 world scale.
    pub q3_scale: u32,
    /// The challenge epoch the world was audited at (0 = pristine,
    /// pre-challenge). Epochs change result bytes — a corrected cell
    /// yields different rows — so the epoch is scenario identity.
    pub epoch: u64,
}

impl ScenarioMeta {
    /// The `repro` defaults for a given seed/scale (`q3_scale` follows
    /// `repro --scale`'s `scale.max(8)` derivation), at epoch 0.
    pub fn new(seed: u64, scale: u32) -> ScenarioMeta {
        ScenarioMeta {
            seed,
            scale,
            q3_scale: scale.max(8),
            epoch: 0,
        }
    }

    /// The same scenario viewed at a later challenge epoch.
    pub fn at_epoch(self, epoch: u64) -> ScenarioMeta {
        ScenarioMeta { epoch, ..self }
    }

    /// Wraps an artifact body in the canonical envelope:
    /// `{"artifact": <body>,
    ///   "scenario": {"epoch", "q3_scale", "scale", "seed"}}`.
    pub fn wrap(&self, body: Json) -> Json {
        Json::Obj(vec![
            ("artifact".to_string(), body),
            (
                "scenario".to_string(),
                Json::Obj(vec![
                    ("epoch".to_string(), Json::UInt(self.epoch)),
                    ("q3_scale".to_string(), Json::UInt(u64::from(self.q3_scale))),
                    ("scale".to_string(), Json::UInt(u64::from(self.scale))),
                    ("seed".to_string(), Json::UInt(self.seed)),
                ]),
            ),
        ])
    }
}

/// Renders a wrapped artifact to its canonical byte form: pretty-printed
/// JSON plus a trailing newline. This exact string is what `repro
/// --artifacts` writes and what `caf-serve` returns.
pub fn to_canonical_bytes(wrapped: &Json) -> String {
    let mut out = wrapped.to_pretty();
    out.push('\n');
    out
}

fn num(value: f64) -> Json {
    Json::Num(value)
}

/// The audited ISPs in name-sorted order (stable artifact key order).
fn isps_sorted(filter: Option<Isp>) -> Vec<Isp> {
    let mut isps: Vec<Isp> = Isp::audited()
        .into_iter()
        .filter(|isp| filter.is_none() || filter == Some(*isp))
        .collect();
    isps.sort_by_key(|isp| isp.name());
    isps
}

/// The Q1 serviceability artifact: per-ISP weighted rates and CBG-rate
/// distributions, per-state weighted rates, and the overall weighted
/// rate. `isp` restricts the `"isps"` section (the `?isp=` query
/// parameter); the overall rate and state rows always cover the full
/// analysis so a filtered response stays comparable to the headline.
pub fn serviceability(analysis: &ServiceabilityAnalysis, isp: Option<Isp>) -> Json {
    let isp_entries: Vec<(String, Json)> = isps_sorted(isp)
        .into_iter()
        .filter_map(|isp| {
            let rate = analysis.rate_for_isp(isp)?;
            let d = analysis.distribution_for_isp(isp)?;
            Some((
                isp.name().to_string(),
                Json::Obj(vec![
                    (
                        "distribution".to_string(),
                        Json::Obj(vec![
                            ("max".to_string(), num(d.max)),
                            ("median".to_string(), num(d.median)),
                            ("min".to_string(), num(d.min)),
                            ("q1".to_string(), num(d.q1)),
                            ("q3".to_string(), num(d.q3)),
                        ]),
                    ),
                    ("rate".to_string(), num(rate)),
                ]),
            ))
        })
        .collect();
    // States present in the analysis, key-sorted by abbreviation.
    let mut state_rates: BTreeMap<&'static str, f64> = BTreeMap::new();
    for row in &analysis.cbg_rates {
        if let Some(rate) = analysis.rate_for_state(row.state) {
            state_rates.entry(row.state.abbrev()).or_insert(rate);
        }
    }
    Json::Obj(vec![
        (
            "cbgs".to_string(),
            Json::UInt(analysis.cbg_rates.len() as u64),
        ),
        (
            "experiment".to_string(),
            Json::Str("serviceability".to_string()),
        ),
        ("isps".to_string(), Json::Obj(isp_entries)),
        ("overall_rate".to_string(), num(analysis.overall_rate())),
        (
            "states".to_string(),
            Json::Obj(
                state_rates
                    .into_iter()
                    .map(|(abbrev, rate)| (abbrev.to_string(), num(rate)))
                    .collect(),
            ),
        ),
    ])
}

/// The Q2 compliance artifact: per-ISP weighted compliance rates and
/// Table-1 advertised speed-band percentages, the §4.2 price-compliance
/// stats, and the overall weighted rate. `isp` restricts the per-ISP
/// sections, mirroring [`serviceability`].
pub fn compliance(analysis: &ComplianceAnalysis, dataset: &AuditDataset, isp: Option<Isp>) -> Json {
    let band_entries: Vec<(String, Json)> = isps_sorted(isp)
        .into_iter()
        .filter(|&isp| !analysis.advertised_band_percentages(isp).is_empty())
        .map(|isp| {
            let mut bands: Vec<(String, f64)> = analysis
                .advertised_band_percentages(isp)
                .into_iter()
                .map(|(band, pct)| (band.label().to_string(), pct))
                .collect();
            bands.sort_by(|a, b| a.0.cmp(&b.0));
            (
                isp.name().to_string(),
                Json::Obj(bands.into_iter().map(|(k, v)| (k, num(v))).collect()),
            )
        })
        .collect();
    let isp_entries: Vec<(String, Json)> = isps_sorted(isp)
        .into_iter()
        .filter_map(|isp| {
            let rate = analysis.rate_for_isp(isp)?;
            Some((
                isp.name().to_string(),
                Json::Obj(vec![("rate".to_string(), num(rate))]),
            ))
        })
        .collect();
    let (price_fraction, price_range) = analysis.price_compliance(dataset);
    let mut price = vec![("fraction".to_string(), num(price_fraction))];
    if let Some((lo, hi)) = price_range {
        price.push(("max".to_string(), num(hi)));
        price.push(("min".to_string(), num(lo)));
    }
    Json::Obj(vec![
        ("bands".to_string(), Json::Obj(band_entries)),
        (
            "cbgs".to_string(),
            Json::UInt(analysis.cbg_rates.len() as u64),
        ),
        (
            "experiment".to_string(),
            Json::Str("compliance".to_string()),
        ),
        ("isps".to_string(), Json::Obj(isp_entries)),
        ("overall_rate".to_string(), num(analysis.overall_rate())),
        ("price".to_string(), Json::Obj(price)),
    ])
}

fn outcome_split(split: Option<[f64; 3]>) -> Json {
    match split {
        Some([better, tie, worse]) => Json::Obj(vec![
            ("caf_better".to_string(), num(better)),
            ("other_better".to_string(), num(worse)),
            ("tie".to_string(), num(tie)),
        ]),
        None => Json::Null,
    }
}

/// The Q3 artifact: query accounting, the Type-A and Type-B outcome
/// splits, and the Type-A uplift distribution.
pub fn q3(analysis: &Q3Analysis) -> Json {
    let uplifts = analysis.type_a_uplift_percents();
    let uplift = if uplifts.is_empty() {
        Json::Null
    } else {
        Json::Obj(vec![
            (
                "median_pct".to_string(),
                num(median(&uplifts).expect("non-empty")),
            ),
            ("n".to_string(), Json::UInt(uplifts.len() as u64)),
            (
                "p80_pct".to_string(),
                num(quantile(&uplifts, 0.8).expect("non-empty")),
            ),
        ])
    };
    Json::Obj(vec![
        (
            "blocks".to_string(),
            Json::UInt(analysis.blocks.len() as u64),
        ),
        (
            "blocks_dropped".to_string(),
            Json::UInt(analysis.blocks_dropped as u64),
        ),
        (
            "caf_queried".to_string(),
            Json::UInt(analysis.caf_queried as u64),
        ),
        (
            "caf_served".to_string(),
            Json::UInt(analysis.caf_served as u64),
        ),
        ("experiment".to_string(), Json::Str("q3".to_string())),
        (
            "non_caf_queried".to_string(),
            Json::UInt(analysis.non_caf_queried as u64),
        ),
        (
            "non_caf_served".to_string(),
            Json::UInt(analysis.non_caf_served as u64),
        ),
        (
            "type_a".to_string(),
            outcome_split(analysis.type_a_outcomes()),
        ),
        (
            "type_b".to_string(),
            outcome_split(analysis.type_b_outcomes()),
        ),
        ("uplift".to_string(), uplift),
    ])
}

/// The Table-2 artifact: traceback error-event counts per ISP per error
/// category (the serve gate's byte-diff target — small, fully integer,
/// and exercised by the cheapest experiment the fixture supports).
pub fn table2(dataset: &AuditDataset) -> Json {
    let isp_entries: Vec<(String, Json)> = isps_sorted(None)
        .into_iter()
        .map(|isp| {
            let mut total = 0u64;
            let mut categories: Vec<(String, u64)> = ErrorCategory::all()
                .into_iter()
                .map(|category| (category.label().to_string(), 0u64))
                .collect();
            categories.sort_by(|a, b| a.0.cmp(&b.0));
            for record in dataset.records.iter().filter(|r| r.isp == isp) {
                for &error in &record.errors {
                    total += 1;
                    let label = error.label();
                    if let Some(slot) = categories.iter_mut().find(|(k, _)| k == label) {
                        slot.1 += 1;
                    }
                }
            }
            (
                isp.name().to_string(),
                Json::Obj(vec![
                    (
                        "errors".to_string(),
                        Json::Obj(
                            categories
                                .into_iter()
                                .map(|(k, v)| (k, Json::UInt(v)))
                                .collect(),
                        ),
                    ),
                    ("total".to_string(), Json::UInt(total)),
                ]),
            )
        })
        .collect();
    Json::Obj(vec![
        ("experiment".to_string(), Json::Str("table2".to_string())),
        ("isps".to_string(), Json::Obj(isp_entries)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sorted_keys(value: &Json, path: &str) {
        if let Json::Obj(entries) = value {
            for pair in entries.windows(2) {
                assert!(
                    pair[0].0 < pair[1].0,
                    "{path}: {:?} before {:?}",
                    pair[0].0,
                    pair[1].0
                );
            }
            for (key, child) in entries {
                assert_sorted_keys(child, &format!("{path}.{key}"));
            }
        }
        if let Json::Arr(items) = value {
            for (i, item) in items.iter().enumerate() {
                assert_sorted_keys(item, &format!("{path}[{i}]"));
            }
        }
    }

    #[test]
    fn scenario_meta_derives_q3_scale_like_repro() {
        assert_eq!(ScenarioMeta::new(1, 30).q3_scale, 30);
        assert_eq!(ScenarioMeta::new(1, 3).q3_scale, 8);
    }

    #[test]
    fn envelope_and_artifacts_have_sorted_keys_everywhere() {
        let dataset = crate::Audit::new(crate::AuditConfig {
            synth: caf_synth::SynthConfig {
                seed: 7,
                scale: 200,
            },
            campaign: caf_bqt::CampaignConfig {
                seed: 7,
                ..caf_bqt::CampaignConfig::default()
            },
            rule: crate::SamplingRule::paper(),
            resample_rounds: 1,
        })
        .run(&caf_synth::World::generate_states(
            caf_synth::SynthConfig {
                seed: 7,
                scale: 200,
            },
            &[caf_geo::UsState::Vermont],
        ));
        let index = crate::AuditIndex::build(&dataset);
        let s = ServiceabilityAnalysis::from_index(&index);
        let c = ComplianceAnalysis::from_index(&dataset, &index);
        let meta = ScenarioMeta::new(7, 200);
        for body in [
            serviceability(&s, None),
            serviceability(&s, Some(Isp::Consolidated)),
            compliance(&c, &dataset, None),
            table2(&dataset),
        ] {
            let wrapped = meta.wrap(body);
            assert_sorted_keys(&wrapped, "root");
            // Canonical bytes parse back to the same tree.
            let bytes = to_canonical_bytes(&wrapped);
            assert!(bytes.ends_with('\n'));
            let reparsed = caf_obs::json::parse(bytes.trim_end()).expect("canonical bytes parse");
            assert_sorted_keys(&reparsed, "reparsed");
        }
    }

    #[test]
    fn isp_filter_restricts_the_isps_section() {
        let entries = isps_sorted(Some(Isp::Att));
        assert_eq!(entries, vec![Isp::Att]);
        assert_eq!(isps_sorted(None).len(), Isp::audited().len());
    }
}
