//! Extension: a model of USAC's existing oversight, for contrast.
//!
//! §2.3–2.4 of the paper describe how USAC actually verifies CAF
//! compliance: ISPs self-certify; USAC re-checks a *random sample* of
//! certified locations, accepting documentary evidence such as
//! "screenshots of a public-facing availability tool … subscriber bills,
//! or internal emails", and runs speed tests only "from the premises of
//! active subscribers". The paper argues this framework under-detects
//! non-compliance. This module simulates that oversight process over the
//! same latent world the BQT audit sees, so the two can be compared
//! head-to-head — quantifying §2.4's "limits of existing oversight".
//!
//! Model of the verification biases:
//!
//! * **Sample size** — USAC audits a small fraction of locations.
//! * **Evidence bias** — documentary evidence is ISP-produced; a
//!   genuinely unserved location still passes with probability
//!   `evidence_acceptance` (stale screenshots, 10-day-service claims).
//! * **Subscriber-only testing** — speed compliance is only ever tested
//!   at active subscribers, who by construction have working service, so
//!   unserved locations can never fail a speed test.

use caf_bqt::{Campaign, CampaignConfig, QueryTask};
use caf_geo::AddressId;
use caf_synth::rng::scoped_rng;
use caf_synth::{Isp, World};
use rand::seq::SliceRandom;
use rand::Rng;

/// Parameters of the simulated USAC verification.
#[derive(Debug, Clone, Copy)]
pub struct OversightConfig {
    /// Fraction of certified locations USAC samples for verification.
    pub sample_fraction: f64,
    /// Probability that ISP-produced documentary evidence passes review
    /// for a location that is in fact unserved.
    pub evidence_acceptance: f64,
    /// Seed for the verification sample.
    pub seed: u64,
}

impl Default for OversightConfig {
    fn default() -> OversightConfig {
        OversightConfig {
            sample_fraction: 0.05,
            evidence_acceptance: 0.70,
            seed: 0xCAF_2024,
        }
    }
}

/// The outcome of the simulated USAC review, next to the BQT ground
/// estimate over the same sampled locations.
#[derive(Debug, Clone)]
pub struct OversightComparison {
    /// Locations USAC sampled.
    pub sampled: usize,
    /// The compliance gap USAC's process reports (fraction of sampled
    /// locations it flags).
    pub usac_reported_gap: f64,
    /// The gap a BQT-style external audit finds on the same sample
    /// (fraction not genuinely served).
    pub bqt_estimated_gap: f64,
    /// Detection ratio: USAC-reported over BQT-estimated (1.0 = parity).
    pub detection_ratio: f64,
}

/// Runs the head-to-head comparison for one ISP over a world.
pub fn compare_oversight(
    world: &World,
    isp: Isp,
    config: OversightConfig,
    campaign_config: CampaignConfig,
) -> OversightComparison {
    assert!(
        (0.0..=1.0).contains(&config.sample_fraction),
        "sample fraction is a probability"
    );
    assert!(
        (0.0..=1.0).contains(&config.evidence_acceptance),
        "evidence acceptance is a probability"
    );
    // USAC samples locations uniformly from the certified list.
    let mut certified: Vec<AddressId> = world
        .states
        .iter()
        .flat_map(|sw| sw.usac.records.iter())
        .filter(|r| r.isp == isp)
        .map(|r| r.address.id)
        .collect();
    let mut rng = scoped_rng(config.seed, "usac-oversight", isp.id());
    certified.shuffle(&mut rng);
    let take = ((certified.len() as f64 * config.sample_fraction).ceil() as usize)
        .clamp(1.min(certified.len()), certified.len());
    let sample = &certified[..take];

    // The external (BQT) estimate over the identical sample: query each
    // address; gap = fraction with a definitive not-served outcome.
    let campaign = Campaign::new(campaign_config);
    let tasks: Vec<QueryTask> = sample
        .iter()
        .map(|&address| QueryTask { address, isp })
        .collect();
    let result = campaign.run(&world.truth, &tasks);
    let mut definitive = 0usize;
    let mut unserved = 0usize;
    let mut flagged_by_usac = 0usize;
    for record in &result.records {
        let genuinely_served = match record.outcome.is_served() {
            Some(served) => {
                definitive += 1;
                if !served {
                    unserved += 1;
                }
                served
            }
            // USAC reviews locations BQT could not resolve too; treat the
            // latent state via the documentary-evidence channel below
            // using the definitive signal it would have had (none).
            None => true,
        };
        // USAC's process: served locations always produce acceptable
        // evidence (a real screenshot exists); unserved locations pass
        // with probability evidence_acceptance; speed testing happens
        // only at subscribers, so it flags nothing extra here.
        if !genuinely_served {
            let mut evidence_rng = scoped_rng(config.seed, "usac-evidence", record.address.0);
            if !evidence_rng.gen_bool(config.evidence_acceptance) {
                flagged_by_usac += 1;
            }
        }
    }

    let usac_gap = flagged_by_usac as f64 / sample.len().max(1) as f64;
    let bqt_gap = if definitive == 0 {
        0.0
    } else {
        unserved as f64 / definitive as f64
    };
    OversightComparison {
        sampled: sample.len(),
        usac_reported_gap: usac_gap,
        bqt_estimated_gap: bqt_gap,
        detection_ratio: if bqt_gap > 0.0 {
            usac_gap / bqt_gap
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_geo::UsState;
    use caf_synth::SynthConfig;

    fn world() -> World {
        World::generate_states(
            SynthConfig {
                seed: 17,
                scale: 30,
            },
            &[UsState::Mississippi],
        )
    }

    fn campaign() -> CampaignConfig {
        CampaignConfig {
            seed: 17,
            workers: 4,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn usac_process_underdetects_the_gap() {
        let world = world();
        let comparison = compare_oversight(
            &world,
            Isp::Att,
            OversightConfig {
                seed: 17,
                ..OversightConfig::default()
            },
            campaign(),
        );
        assert!(comparison.sampled > 100);
        // AT&T Mississippi: ~62 % genuinely unserved; BQT sees most of it.
        assert!(
            comparison.bqt_estimated_gap > 0.4,
            "bqt gap {}",
            comparison.bqt_estimated_gap
        );
        // USAC's evidence channel accepts ~70 % of unserved locations, so
        // its reported gap is a fraction of the real one.
        assert!(
            comparison.usac_reported_gap < comparison.bqt_estimated_gap * 0.6,
            "usac {} vs bqt {}",
            comparison.usac_reported_gap,
            comparison.bqt_estimated_gap
        );
        assert!(comparison.detection_ratio < 0.6);
    }

    #[test]
    fn perfect_evidence_review_closes_the_gap() {
        let world = world();
        let comparison = compare_oversight(
            &world,
            Isp::Att,
            OversightConfig {
                sample_fraction: 0.10,
                evidence_acceptance: 0.0, // reviewer rejects all bogus evidence
                seed: 17,
            },
            campaign(),
        );
        // With no evidence bias, USAC's gap approaches the BQT estimate
        // (small residue: the Unknown-outcome locations USAC still passes).
        assert!(
            comparison.usac_reported_gap > comparison.bqt_estimated_gap * 0.7,
            "usac {} vs bqt {}",
            comparison.usac_reported_gap,
            comparison.bqt_estimated_gap
        );
    }

    #[test]
    fn deterministic() {
        let world = world();
        let a = compare_oversight(&world, Isp::Att, OversightConfig::default(), campaign());
        let b = compare_oversight(&world, Isp::Att, OversightConfig::default(), campaign());
        assert_eq!(a.sampled, b.sampled);
        assert_eq!(a.usac_reported_gap, b.usac_reported_gap);
        assert_eq!(a.bqt_estimated_gap, b.bqt_estimated_gap);
    }
}
