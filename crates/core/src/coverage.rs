//! Campaign coverage telemetry (Figures 7 and 8).
//!
//! Figure 7 plots, per ISP, the CDF over CBGs of the *percentage of
//! addresses queried*; Figure 8 the percentage *collected* (definitive
//! outcomes) after filtering repeated errors. Both read directly off the
//! per-CBG [`crate::audit::CbgCoverage`] counters the audit maintains.

use caf_stats::Ecdf;
use caf_synth::Isp;

use crate::audit::AuditDataset;

/// Coverage series for one ISP.
#[derive(Debug, Clone)]
pub struct CoverageSeries {
    /// The ISP.
    pub isp: Isp,
    /// Per-CBG queried percentages.
    pub queried_pct: Vec<f64>,
    /// Per-CBG collected percentages.
    pub collected_pct: Vec<f64>,
}

impl CoverageSeries {
    /// Extracts the series for `isp` from an audit dataset, or `None` if
    /// the ISP has no audited CBGs.
    pub fn extract(dataset: &AuditDataset, isp: Isp) -> Option<CoverageSeries> {
        let queried: Vec<f64> = dataset
            .coverage
            .iter()
            .filter(|c| c.isp == isp)
            .map(|c| c.queried_pct())
            .collect();
        if queried.is_empty() {
            return None;
        }
        let collected: Vec<f64> = dataset
            .coverage
            .iter()
            .filter(|c| c.isp == isp)
            .map(|c| c.collected_pct())
            .collect();
        Some(CoverageSeries {
            isp,
            queried_pct: queried,
            collected_pct: collected,
        })
    }

    /// ECDF of queried percentages (Figure 7's curve for this ISP).
    pub fn queried_ecdf(&self) -> Ecdf {
        Ecdf::new(&self.queried_pct).expect("extract guarantees non-empty")
    }

    /// ECDF of collected percentages (Figure 8's curve).
    pub fn collected_ecdf(&self) -> Ecdf {
        Ecdf::new(&self.collected_pct).expect("extract guarantees non-empty")
    }

    /// Fraction of CBGs where at least `pct` percent of addresses were
    /// collected — the §5 "10 % per CBG" goal check.
    pub fn fraction_meeting(&self, pct: f64) -> f64 {
        let met = self.collected_pct.iter().filter(|&&p| p >= pct).count();
        met as f64 / self.collected_pct.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::CbgCoverage;
    use caf_geo::{BlockGroupId, CountyId, StateFips, TractId};

    fn cbg(n: u8) -> BlockGroupId {
        let state = StateFips::new(17).unwrap();
        let county = CountyId::new(state, 1).unwrap();
        let tract = TractId::new(county, 1).unwrap();
        BlockGroupId::new(tract, n).unwrap()
    }

    fn dataset() -> AuditDataset {
        AuditDataset {
            rows: Vec::new(),
            records: Vec::new(),
            coverage: vec![
                CbgCoverage {
                    isp: Isp::Att,
                    cbg: cbg(1),
                    total: 100,
                    queried: 30,
                    collected: 25,
                },
                CbgCoverage {
                    isp: Isp::Att,
                    cbg: cbg(2),
                    total: 20,
                    queried: 20,
                    collected: 4,
                },
                CbgCoverage {
                    isp: Isp::Frontier,
                    cbg: cbg(3),
                    total: 50,
                    queried: 30,
                    collected: 30,
                },
            ],
        }
    }

    #[test]
    fn series_extracts_per_isp() {
        let ds = dataset();
        let att = CoverageSeries::extract(&ds, Isp::Att).unwrap();
        assert_eq!(att.queried_pct, vec![30.0, 100.0]);
        assert_eq!(att.collected_pct, vec![25.0, 20.0]);
        assert!(CoverageSeries::extract(&ds, Isp::CenturyLink).is_none());
    }

    #[test]
    fn ecdfs_and_goal_fraction() {
        let ds = dataset();
        let att = CoverageSeries::extract(&ds, Isp::Att).unwrap();
        let ecdf = att.queried_ecdf();
        assert_eq!(ecdf.eval(30.0), 0.5);
        assert_eq!(ecdf.eval(100.0), 1.0);
        // Both CBGs collected ≥ 10 %; only one collected ≥ 25 %.
        assert_eq!(att.fraction_meeting(10.0), 1.0);
        assert_eq!(att.fraction_meeting(25.0), 0.5);
        let frontier = CoverageSeries::extract(&ds, Isp::Frontier).unwrap();
        assert_eq!(frontier.collected_ecdf().eval(60.0), 1.0);
    }
}
