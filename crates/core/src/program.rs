//! Extension: parameterized program rules — applying the audit to BEAD.
//!
//! §7 of the paper argues its post-hoc evaluation framework "could be
//! readily applied to the BEAD program". This module makes that claim
//! concrete: program rules (speed floor, rate benchmark) become data, so
//! the same audit dataset can be scored under CAF-II's 10/1 Mbps
//! standard, BEAD's 100/20 Mbps standard, or the FCC's 25/3 broadband
//! definition — showing how the compliance picture changes as the bar
//! moves.

use caf_stats::weighted::WeightedSample;
use caf_stats::weighted_mean;
use caf_synth::Isp;

use crate::audit::{AuditDataset, AuditRow};
use crate::index::{AuditIndex, CellMeta};

/// The rate-and-service conditions of a subsidy program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramRules {
    /// Program display name.
    pub name: &'static str,
    /// Minimum guaranteed download speed, Mbps.
    pub min_down_mbps: f64,
    /// Minimum upload speed, Mbps.
    pub min_up_mbps: f64,
    /// Maximum monthly rate for the qualifying tier, dollars.
    pub rate_cap_usd: f64,
}

impl ProgramRules {
    /// The CAF Phase II model rules the paper audits: 10/1 Mbps at the
    /// FCC's ≈$89 urban-comparability benchmark.
    pub fn caf_phase_ii() -> ProgramRules {
        ProgramRules {
            name: "CAF II (10/1)",
            min_down_mbps: 10.0,
            min_up_mbps: 1.0,
            rate_cap_usd: 89.0,
        }
    }

    /// The FCC's 25/3 Mbps fixed-broadband definition (the benchmark the
    /// paper's related work measures coverage against).
    pub fn fcc_25_3() -> ProgramRules {
        ProgramRules {
            name: "FCC 25/3",
            min_down_mbps: 25.0,
            min_up_mbps: 3.0,
            rate_cap_usd: 89.0,
        }
    }

    /// BEAD's 100/20 Mbps standard (§7's $42 B follow-on program).
    pub fn bead() -> ProgramRules {
        ProgramRules {
            name: "BEAD (100/20)",
            min_down_mbps: 100.0,
            min_up_mbps: 20.0,
            rate_cap_usd: 89.0,
        }
    }

    /// Looks up a speed-threshold tier by its grid label: `"10_1"` (CAF
    /// Phase II), `"25_3"` (the FCC broadband definition), or `"100_20"`
    /// (BEAD). The sweep engine's speed-tier axis parses through here so
    /// spec files and `/v1/sweep` query strings share one vocabulary.
    pub fn tier(label: &str) -> Option<ProgramRules> {
        match label {
            "10_1" => Some(ProgramRules::caf_phase_ii()),
            "25_3" => Some(ProgramRules::fcc_25_3()),
            "100_20" => Some(ProgramRules::bead()),
            _ => None,
        }
    }

    /// The grid labels accepted by [`ProgramRules::tier`], in ascending
    /// stringency order.
    pub fn tier_labels() -> [&'static str; 3] {
        ["10_1", "25_3", "100_20"]
    }

    /// These rules with the rate cap scaled by `multiplier` — the
    /// price-cap counterfactual axis (what if the FCC benchmark were 20 %
    /// tighter, or 50 % looser?).
    ///
    /// # Panics
    ///
    /// Panics when `multiplier` is not a positive finite number.
    pub fn with_rate_cap_multiplier(self, multiplier: f64) -> ProgramRules {
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "rate-cap multiplier must be positive and finite"
        );
        ProgramRules {
            rate_cap_usd: self.rate_cap_usd * multiplier,
            ..self
        }
    }

    /// Whether an audited address complies with these rules: served, with
    /// some advertised plan at a guaranteed speed ≥ the floor and a price
    /// ≤ the cap.
    pub fn row_complies(&self, row: &AuditRow) -> bool {
        row.served
            && row.plans.iter().any(|plan| {
                plan.meets_service_standard(self.min_down_mbps, self.min_up_mbps)
                    && plan.monthly_usd <= self.rate_cap_usd
            })
    }

    /// CBG-weighted compliance rate of an audit dataset under these
    /// rules, via a throwaway [`AuditIndex`]. Callers scoring several
    /// rule sets over the same dataset (the BEAD extension does) should
    /// build the index once and use
    /// [`compliance_rate_indexed`](ProgramRules::compliance_rate_indexed).
    pub fn compliance_rate(&self, dataset: &AuditDataset) -> Option<f64> {
        self.compliance_rate_indexed(dataset, &AuditIndex::build(dataset), None)
    }

    /// CBG-weighted compliance rate for one ISP under these rules.
    pub fn compliance_rate_for(&self, dataset: &AuditDataset, isp: Isp) -> Option<f64> {
        self.compliance_rate_indexed(dataset, &AuditIndex::build(dataset), Some(isp))
    }

    /// CBG-weighted compliance rate off a pre-built index, optionally
    /// restricted to one ISP. Returns `None` when no cell matches the
    /// filter (mirroring the empty-sample behaviour of the old grouping).
    pub fn compliance_rate_indexed(
        &self,
        dataset: &AuditDataset,
        index: &AuditIndex,
        isp: Option<Isp>,
    ) -> Option<f64> {
        index.check_dataset(dataset);
        let cells: &[CellMeta] = match isp {
            Some(isp) => index.cells_for(isp),
            None => index.cells(),
        };
        let samples: Vec<WeightedSample> = cells
            .iter()
            .map(|cell| {
                let ok = index
                    .row_ids(cell)
                    .iter()
                    .filter(|&&i| self.row_complies(&dataset.rows[i as usize]))
                    .count();
                WeightedSample::new(ok as f64 / cell.len() as f64, cell.weight)
            })
            .collect();
        weighted_mean(&samples).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_geo::{AddressId, BlockGroupId, CountyId, LatLon, StateFips, TractId, UsState};
    use caf_synth::plans::PlanCatalog;

    fn row(i: u64, tier_label: Option<&str>) -> AuditRow {
        let isp = Isp::CenturyLink;
        let plan = tier_label.map(|label| {
            let cat = PlanCatalog::for_isp(isp);
            cat.plan_from_tier(cat.tier_labeled(label).expect("tier exists"))
        });
        let state = StateFips::new(39).unwrap();
        let county = CountyId::new(state, 1).unwrap();
        let tract = TractId::new(county, 1).unwrap();
        AuditRow {
            address: AddressId(i),
            isp,
            state: UsState::Ohio,
            cbg: BlockGroupId::new(tract, 1).unwrap(),
            cbg_total: 50,
            density: 100.0,
            density_pct: 0.5,
            centroid: LatLon::new(40.0, -82.0).unwrap(),
            served: plan.is_some(),
            max_down_mbps: plan.as_ref().and_then(|p| p.download_mbps),
            plans: plan.iter().cloned().collect(),
            max_plan: plan,
            existing_subscriber: false,
        }
    }

    fn dataset(rows: Vec<AuditRow>) -> AuditDataset {
        AuditDataset {
            rows,
            records: Vec::new(),
            coverage: Vec::new(),
        }
    }

    #[test]
    fn rules_tighten_monotonically() {
        // 10 Mbps DSL passes CAF but fails 25/3 and BEAD; 200 Mbps fiber
        // passes all three; 40 Mbps passes CAF and 25/3 but not BEAD.
        let ds = dataset(vec![
            row(1, Some("Simply Internet 10")),
            row(2, Some("Fiber 200")),
            row(3, Some("Simply Internet 40")),
            row(4, None),
        ]);
        let caf = ProgramRules::caf_phase_ii().compliance_rate(&ds).unwrap();
        let fcc = ProgramRules::fcc_25_3().compliance_rate(&ds).unwrap();
        let bead = ProgramRules::bead().compliance_rate(&ds).unwrap();
        assert!((caf - 0.75).abs() < 1e-12, "caf {caf}");
        // The 40/5 tier passes 25/3 but fails BEAD's 100/20.
        assert!((fcc - 0.5).abs() < 1e-12, "fcc {fcc}");
        assert!((bead - 0.25).abs() < 1e-12, "bead {bead}");
        assert!(caf >= fcc && fcc >= bead);
    }

    #[test]
    fn rate_cap_is_enforced() {
        let mut rules = ProgramRules::caf_phase_ii();
        rules.rate_cap_usd = 40.0; // below every CL tier price ≥ $50
        let ds = dataset(vec![row(1, Some("Fiber 940"))]);
        assert_eq!(rules.compliance_rate(&ds), Some(0.0));
    }

    #[test]
    fn per_isp_filter() {
        let ds = dataset(vec![row(1, Some("Fiber 200"))]);
        let rules = ProgramRules::bead();
        assert_eq!(rules.compliance_rate_for(&ds, Isp::CenturyLink), Some(1.0));
        assert_eq!(rules.compliance_rate_for(&ds, Isp::Att), None);
    }

    #[test]
    fn program_names_for_display() {
        assert_eq!(ProgramRules::bead().name, "BEAD (100/20)");
        assert_eq!(ProgramRules::caf_phase_ii().name, "CAF II (10/1)");
    }

    #[test]
    fn tier_labels_round_trip() {
        for label in ProgramRules::tier_labels() {
            assert!(ProgramRules::tier(label).is_some(), "label {label}");
        }
        assert_eq!(
            ProgramRules::tier("10_1").unwrap(),
            ProgramRules::caf_phase_ii()
        );
        assert_eq!(
            ProgramRules::tier("25_3").unwrap(),
            ProgramRules::fcc_25_3()
        );
        assert_eq!(ProgramRules::tier("100_20").unwrap(), ProgramRules::bead());
        assert!(ProgramRules::tier("10/1").is_none());
        assert!(ProgramRules::tier("").is_none());
    }

    #[test]
    fn rate_cap_multiplier_scales_the_cap_only() {
        let base = ProgramRules::caf_phase_ii();
        let loose = base.with_rate_cap_multiplier(1.5);
        assert!((loose.rate_cap_usd - 133.5).abs() < 1e-12);
        assert_eq!(loose.min_down_mbps, base.min_down_mbps);
        assert_eq!(loose.min_up_mbps, base.min_up_mbps);
        // A tighter cap can only lower compliance.
        let ds = dataset(vec![row(1, Some("Simply Internet 10"))]);
        let tight = base.with_rate_cap_multiplier(0.25); // cap $22.25 < $50
        assert_eq!(base.compliance_rate(&ds), Some(1.0));
        assert_eq!(tight.compliance_rate(&ds), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "rate-cap multiplier")]
    fn rate_cap_multiplier_rejects_nonpositive() {
        let _ = ProgramRules::caf_phase_ii().with_rate_cap_multiplier(0.0);
    }
}
