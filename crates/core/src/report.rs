//! The headline efficacy report (§7).
//!
//! Collects the numbers the paper's conclusion leads with: the weighted
//! serviceability and compliance rates, their complements ("44.55 % of
//! addresses … remain unserved", "66.97 % … falls short"), and the Q3
//! outcome splits — in one serializable structure the repro harness
//! prints and EXPERIMENTS.md records.

use caf_synth::Isp;
use serde::Serialize;

use crate::compliance::ComplianceAnalysis;
use crate::q3::Q3Analysis;
use crate::serviceability::ServiceabilityAnalysis;

/// Per-ISP headline rates.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct IspRates {
    /// ISP display name.
    pub isp: String,
    /// Weighted serviceability rate in `[0, 1]`.
    pub serviceability: f64,
    /// Weighted compliance rate in `[0, 1]`.
    pub compliance: f64,
}

/// The assembled efficacy report.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct EfficacyReport {
    /// Overall weighted serviceability rate (paper: 0.5545).
    pub serviceability: f64,
    /// Overall weighted compliance rate (paper: 0.3303 / 0.2772).
    pub compliance: f64,
    /// Complement of serviceability ("44.55 % remain unserved").
    pub unserved: f64,
    /// Complement of compliance ("66.97 % non-compliant").
    pub non_compliant: f64,
    /// Per-ISP rates, in the paper's ISP order.
    pub per_isp: Vec<IspRates>,
    /// Type-A outcome split `(CAF better, tie, monopoly better)`, if Q3
    /// ran.
    pub type_a_split: Option<[f64; 3]>,
    /// Type-B outcome split `(CAF better, tie, competition better)`.
    pub type_b_split: Option<[f64; 3]>,
    /// Median CAF-over-monopoly uplift percent where CAF wins.
    pub median_uplift_pct: Option<f64>,
}

impl EfficacyReport {
    /// Assembles the report from the three analyses (Q3 optional).
    pub fn assemble(
        serviceability: &ServiceabilityAnalysis,
        compliance: &ComplianceAnalysis,
        q3: Option<&Q3Analysis>,
    ) -> EfficacyReport {
        let overall_serv = serviceability.overall_rate();
        let overall_comp = compliance.overall_rate();
        let per_isp = Isp::audited()
            .into_iter()
            .filter_map(|isp| {
                Some(IspRates {
                    isp: isp.name().to_string(),
                    serviceability: serviceability.rate_for_isp(isp)?,
                    compliance: compliance.rate_for_isp(isp)?,
                })
            })
            .collect();
        let median_uplift = q3.and_then(|q| {
            let mut uplifts = q.type_a_uplift_percents();
            if uplifts.is_empty() {
                return None;
            }
            uplifts.sort_by(|a, b| a.total_cmp(b));
            Some(uplifts[uplifts.len() / 2])
        });
        EfficacyReport {
            serviceability: overall_serv,
            compliance: overall_comp,
            unserved: 1.0 - overall_serv,
            non_compliant: 1.0 - overall_comp,
            per_isp,
            type_a_split: q3.and_then(|q| q.type_a_outcomes()),
            type_b_split: q3.and_then(|q| q.type_b_outcomes()),
            median_uplift_pct: median_uplift,
        }
    }

    /// Renders the report as aligned text for the repro harness.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Serviceability rate (weighted): {:6.2} %   (unserved {:5.2} %)\n",
            100.0 * self.serviceability,
            100.0 * self.unserved
        ));
        out.push_str(&format!(
            "Compliance rate     (weighted): {:6.2} %   (non-compliant {:5.2} %)\n",
            100.0 * self.compliance,
            100.0 * self.non_compliant
        ));
        for isp in &self.per_isp {
            out.push_str(&format!(
                "  {:<13} serviceability {:6.2} %   compliance {:6.2} %\n",
                isp.isp,
                100.0 * isp.serviceability,
                100.0 * isp.compliance
            ));
        }
        if let Some([better, tie, worse]) = self.type_a_split {
            out.push_str(&format!(
                "Type A blocks: CAF better {:.1} % / tie {:.1} % / monopoly better {:.1} %\n",
                100.0 * better,
                100.0 * tie,
                100.0 * worse
            ));
        }
        if let Some([better, tie, worse]) = self.type_b_split {
            out.push_str(&format!(
                "Type B blocks: CAF better {:.1} % / tie {:.1} % / competition better {:.1} %\n",
                100.0 * better,
                100.0 * tie,
                100.0 * worse
            ));
        }
        if let Some(uplift) = self.median_uplift_pct {
            out.push_str(&format!(
                "Median CAF uplift where CAF wins: +{uplift:.0} %\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{AuditDataset, AuditRow};
    use caf_geo::{AddressId, BlockGroupId, CountyId, LatLon, StateFips, TractId, UsState};
    use caf_synth::plans::PlanCatalog;

    fn dataset() -> AuditDataset {
        let state = StateFips::new(39).unwrap();
        let county = CountyId::new(state, 1).unwrap();
        let tract = TractId::new(county, 1).unwrap();
        let cbg = BlockGroupId::new(tract, 1).unwrap();
        let cat = PlanCatalog::for_isp(Isp::Att);
        let good = cat.plan_from_tier(cat.tier_labeled("Fiber 1000").unwrap());
        let mk = |i: u64, served: bool, compliant: bool| AuditRow {
            address: AddressId(i),
            isp: Isp::Att,
            state: UsState::Ohio,
            cbg,
            cbg_total: 40,
            density: 10.0,
            density_pct: 0.5,
            centroid: LatLon::new(40.0, -82.0).unwrap(),
            served,
            max_down_mbps: served.then_some(if compliant { 1000.0 } else { 1.0 }),
            plans: if served {
                {
                    if compliant {
                        vec![good.clone()]
                    } else {
                        vec![cat.plan_from_tier(cat.tier_labeled("DSL 1").unwrap())]
                    }
                }
            } else {
                Default::default()
            },
            max_plan: served.then(|| {
                if compliant {
                    good.clone()
                } else {
                    cat.plan_from_tier(cat.tier_labeled("DSL 1").unwrap())
                }
            }),
            existing_subscriber: false,
        };
        AuditDataset {
            rows: vec![
                mk(1, true, true),
                mk(2, true, false),
                mk(3, false, false),
                mk(4, false, false),
            ],
            records: Vec::new(),
            coverage: Vec::new(),
        }
    }

    #[test]
    fn report_assembles_and_renders() {
        let ds = dataset();
        let serv = ServiceabilityAnalysis::compute(&ds);
        let comp = ComplianceAnalysis::compute(&ds);
        let report = EfficacyReport::assemble(&serv, &comp, None);
        assert!((report.serviceability - 0.5).abs() < 1e-12);
        assert!((report.compliance - 0.25).abs() < 1e-12);
        assert!((report.unserved - 0.5).abs() < 1e-12);
        assert!((report.non_compliant - 0.75).abs() < 1e-12);
        assert_eq!(report.per_isp.len(), 1);
        assert_eq!(report.per_isp[0].isp, "AT&T");
        assert_eq!(report.type_a_split, None);
        let text = report.render();
        assert!(text.contains("Serviceability rate"));
        assert!(text.contains("50.00 %"));
        assert!(text.contains("AT&T"));
    }

    #[test]
    fn report_serializes() {
        let ds = dataset();
        let serv = ServiceabilityAnalysis::compute(&ds);
        let comp = ComplianceAnalysis::compute(&ds);
        let report = EfficacyReport::assemble(&serv, &comp, None);
        // serde_json is not a workspace dependency; asserting the trait
        // bound compiles is the check that Serialize derives correctly.
        fn assert_serialize<T: Serialize>(_: &T) {}
        assert_serialize(&report);
    }
}
