//! The shared columnar [`AuditIndex`] every analysis consumes.
//!
//! Before this module existed, each analysis stage — Q1 serviceability,
//! Q2 compliance, the program-rules scorer, the experienced-quality
//! join — independently rebuilt the same `HashMap<(Isp, BlockGroupId),
//! Vec<&AuditRow>>` grouping from the flat row vector. The index is that
//! grouping built **once**: audit rows sorted by `(isp, state, cbg)` in a
//! struct-of-arrays layout, with a per-(ISP, CBG) cell table carrying the
//! CBG metadata (weight, density, percentile, centroid) and contiguous
//! row ranges, plus per-ISP and per-state slices for filtered views.
//!
//! Two ordering facts make the index drop-in compatible with the HashMap
//! path it replaces (the equivalence tests in `tests/prop_index.rs` pin
//! this down bit-for-bit):
//!
//! * [`BlockGroupId`] GEOIDs embed the state FIPS code in their leading
//!   digits and [`UsState`] enumerates in FIPS order, so sorting by
//!   `(isp, cbg)` *is* sorting by `(isp, state, cbg)` — cell order
//!   matches the `sort_by_key(|r| (r.isp, r.cbg))` the analyses used.
//! * Rows within a cell share their CBG metadata by construction (the
//!   audit stamps every row from the same per-CBG lookup), so taking the
//!   metadata from the first row in sorted order equals taking it from
//!   the first row in insertion order.
//!
//! The module also hosts the two smaller grouping primitives the rest of
//! the pipeline shares: [`group_ranges`], a sort-based replacement for
//! ad-hoc HashMap bucketing with deterministic group order, and
//! [`RecordIndex`], a binary-searchable `(address, ISP) → QueryRecord`
//! view that Q3 and the sensitivity sweep use instead of per-run maps.

use caf_bqt::QueryRecord;
use caf_geo::{AddressId, BlockGroupId, LatLon, UsState};
use caf_synth::Isp;
use std::ops::Range;

use crate::audit::AuditDataset;

/// One (ISP, CBG) cell of the index: the CBG metadata table entry plus
/// the contiguous range of sorted row positions belonging to the cell.
#[derive(Debug, Clone)]
pub struct CellMeta {
    /// The ISP.
    pub isp: Isp,
    /// The state (redundant with the CBG's GEOID prefix, kept unpacked).
    pub state: UsState,
    /// The census block group.
    pub cbg: BlockGroupId,
    /// The CBG's total CAF addresses — the §4.1 aggregation weight.
    pub weight: f64,
    /// CBG population density (people per square mile).
    pub density: f64,
    /// CBG within-state density percentile.
    pub density_pct: f64,
    /// CBG centroid.
    pub centroid: LatLon,
    /// The cell's row positions in the index's sorted order; use
    /// [`AuditIndex::row_ids`] to resolve them to dataset rows.
    pub range: Range<usize>,
    /// How many of the cell's rows are served.
    pub served_rows: usize,
}

impl CellMeta {
    /// Number of definitive rows in the cell.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the cell has no rows (never true for built indexes: cells
    /// exist only because at least one row landed in them).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The cell's serviceability rate: served rows over definitive rows.
    pub fn serviceability_rate(&self) -> f64 {
        self.served_rows as f64 / self.len() as f64
    }
}

/// The audit dataset indexed for analysis: rows sorted by
/// `(isp, state, cbg)`, per-cell ranges with CBG metadata, and per-ISP /
/// per-state slices. Built once per dataset and shared by every analysis.
///
/// The index owns no row payloads — it stores sorted row ids (positions
/// into `dataset.rows`) plus a struct-of-arrays `served` column, so
/// methods that need full rows take the originating [`AuditDataset`]
/// alongside.
#[derive(Debug)]
pub struct AuditIndex {
    pub(crate) n_rows: usize,
    /// The world epoch the indexed dataset was computed at (0 for a
    /// pristine, pre-challenge world).
    pub(crate) epoch: u64,
    /// Sorted row ids: `order[pos]` is the dataset row at sorted
    /// position `pos`.
    pub(crate) order: Vec<u32>,
    /// The served flag per sorted position (SoA column).
    pub(crate) served: Vec<bool>,
    /// Cells in `(isp, state, cbg)` order.
    pub(crate) cells: Vec<CellMeta>,
    /// Per-ISP contiguous cell ranges, in ISP order.
    pub(crate) isp_cells: Vec<(Isp, Range<usize>)>,
    /// Per-state cell ids (cells of one state are *not* contiguous —
    /// state nests under ISP in the sort), in state order.
    pub(crate) state_cells: Vec<(UsState, Vec<u32>)>,
}

impl AuditIndex {
    /// Builds the index from an audit dataset at epoch 0 (a pristine,
    /// pre-challenge world). Use [`AuditIndex::build_at`] when the
    /// dataset reflects applied challenge deltas.
    pub fn build(dataset: &AuditDataset) -> AuditIndex {
        Self::build_at(dataset, 0)
    }

    /// Builds the index from an audit dataset computed at `epoch`. The
    /// epoch is identity metadata: it changes nothing about the sort or
    /// the cells, but rides along so downstream artifact envelopes (and
    /// cache keys) can distinguish pre- from post-challenge views.
    pub fn build_at(dataset: &AuditDataset, epoch: u64) -> AuditIndex {
        let _span = caf_obs::span("index.build");
        caf_obs::count("caf.core.index.builds", 1);
        let rows = &dataset.rows;
        let mut order: Vec<u32> = (0..rows.len() as u32).collect();
        // Stable key: ties broken by original position so the sorted
        // order is a total function of the dataset.
        order.sort_unstable_by_key(|&i| {
            let r = &rows[i as usize];
            (r.isp, r.cbg, i)
        });

        let mut served = Vec::with_capacity(rows.len());
        let mut cells: Vec<CellMeta> = Vec::new();
        for (pos, &i) in order.iter().enumerate() {
            let r = &rows[i as usize];
            served.push(r.served);
            match cells.last_mut() {
                Some(cell) if cell.isp == r.isp && cell.cbg == r.cbg => {
                    cell.range.end = pos + 1;
                    cell.served_rows += usize::from(r.served);
                }
                _ => cells.push(CellMeta {
                    isp: r.isp,
                    state: r.state,
                    cbg: r.cbg,
                    weight: r.cbg_total as f64,
                    density: r.density,
                    density_pct: r.density_pct,
                    centroid: r.centroid,
                    range: pos..pos + 1,
                    served_rows: usize::from(r.served),
                }),
            }
        }

        let mut isp_cells: Vec<(Isp, Range<usize>)> = Vec::new();
        let mut state_cells: Vec<(UsState, Vec<u32>)> = Vec::new();
        for (ci, cell) in cells.iter().enumerate() {
            match isp_cells.last_mut() {
                Some((isp, range)) if *isp == cell.isp => range.end = ci + 1,
                _ => isp_cells.push((cell.isp, ci..ci + 1)),
            }
            match state_cells.iter_mut().find(|(s, _)| *s == cell.state) {
                Some((_, ids)) => ids.push(ci as u32),
                None => state_cells.push((cell.state, vec![ci as u32])),
            }
        }
        state_cells.sort_by_key(|(state, _)| *state);
        caf_obs::count("caf.core.index.rows", rows.len() as u64);
        caf_obs::count("caf.core.index.cells", cells.len() as u64);
        caf_obs::gauge("caf.core.index.epoch", epoch);

        AuditIndex {
            n_rows: rows.len(),
            epoch,
            order,
            served,
            cells,
            isp_cells,
            state_cells,
        }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// The world epoch the indexed dataset was computed at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Every cell, in `(isp, state, cbg)` order.
    pub fn cells(&self) -> &[CellMeta] {
        &self.cells
    }

    /// The contiguous cell slice of one ISP (empty if the ISP was not
    /// audited).
    pub fn cells_for(&self, isp: Isp) -> &[CellMeta] {
        caf_obs::count("caf.core.index.lookups", 1);
        self.isp_cells
            .iter()
            .find(|(i, _)| *i == isp)
            .map(|(_, range)| &self.cells[range.clone()])
            .unwrap_or(&[])
    }

    /// The audited ISPs, in order.
    pub fn isps(&self) -> impl Iterator<Item = Isp> + '_ {
        self.isp_cells.iter().map(|(isp, _)| *isp)
    }

    /// The states present, in order.
    pub fn states(&self) -> impl Iterator<Item = UsState> + '_ {
        self.state_cells.iter().map(|(state, _)| *state)
    }

    /// The cells of one state, in `(isp, cbg)` order. State cells are not
    /// contiguous (state nests under ISP in the sort), so this walks a
    /// precomputed id list rather than a slice.
    pub fn cells_for_state(&self, state: UsState) -> impl Iterator<Item = &CellMeta> + '_ {
        caf_obs::count("caf.core.index.lookups", 1);
        self.state_cells
            .iter()
            .find(|(s, _)| *s == state)
            .map(|(_, ids)| ids.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&ci| &self.cells[ci as usize])
    }

    /// The dataset row ids of a cell, in sorted order. Resolve them
    /// against the dataset the index was built from:
    /// `&dataset.rows[id as usize]`.
    pub fn row_ids(&self, cell: &CellMeta) -> &[u32] {
        &self.order[cell.range.clone()]
    }

    /// The served column over sorted positions (the SoA layout's hot
    /// column: per-cell served counts are slices of it).
    pub fn served(&self) -> &[bool] {
        &self.served
    }

    /// Debug-asserts that `dataset` is the one the index was built from
    /// (by row count) — the index stores positions, not pointers, so
    /// pairing it with a different dataset would silently misattribute
    /// rows. Call at the top of any routine that takes both.
    pub fn check_dataset(&self, dataset: &AuditDataset) {
        debug_assert_eq!(dataset.rows.len(), self.n_rows, "index/dataset mismatch");
    }
}

/// A sort-based grouping of a slice: items bucketed by a key, each group
/// a contiguous range over a sorted permutation. Unlike HashMap
/// bucketing, group order is deterministic (ascending key) and items
/// within a group keep their original relative order.
#[derive(Debug)]
pub struct Grouped<K> {
    /// The sorted permutation: `order[pos]` is an index into the grouped
    /// slice.
    pub order: Vec<u32>,
    /// `(key, range-over-order)` per group, in ascending key order.
    pub groups: Vec<(K, Range<usize>)>,
}

impl<K> Grouped<K> {
    /// Iterates `(key, item-indices)` per group.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &[u32])> {
        self.groups
            .iter()
            .map(move |(key, range)| (key, &self.order[range.clone()]))
    }
}

/// Groups a slice by a key function. The permutation is sorted by
/// `(key, original index)`, so both group order and within-group order
/// are total functions of the input — no HashMap iteration-order
/// nondeterminism.
pub fn group_ranges<T, K, F>(items: &[T], key: F) -> Grouped<K>
where
    K: Ord,
    F: Fn(&T) -> K,
{
    let mut order: Vec<u32> = (0..items.len() as u32).collect();
    order.sort_unstable_by_key(|&i| (key(&items[i as usize]), i));
    let mut groups: Vec<(K, Range<usize>)> = Vec::new();
    for (pos, &i) in order.iter().enumerate() {
        let k = key(&items[i as usize]);
        match groups.last_mut() {
            Some((gk, range)) if *gk == k => range.end = pos + 1,
            _ => groups.push((k, pos..pos + 1)),
        }
    }
    Grouped { order, groups }
}

/// A binary-searchable `(address, ISP) → record position` view over a
/// query-record slice — the per-block grouping Q3 and the sensitivity
/// analysis use instead of building a `HashMap` per run.
#[derive(Debug)]
pub struct RecordIndex {
    keys: Vec<(AddressId, Isp)>,
    pos: Vec<u32>,
}

impl RecordIndex {
    /// Builds the index over a record slice. If a `(address, ISP)` pair
    /// occurs more than once the earliest record wins, matching the
    /// first-definitive-outcome semantics of the audit loop.
    pub fn build(records: &[QueryRecord]) -> RecordIndex {
        let mut entries: Vec<((AddressId, Isp), u32)> = records
            .iter()
            .enumerate()
            .map(|(i, r)| ((r.address, r.isp), i as u32))
            .collect();
        entries.sort_unstable();
        entries.dedup_by_key(|(key, _)| *key);
        let keys = entries.iter().map(|&(key, _)| key).collect();
        let pos = entries.iter().map(|&(_, p)| p).collect();
        RecordIndex { keys, pos }
    }

    /// Number of distinct `(address, ISP)` keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The position of the record for `(address, isp)` in the slice the
    /// index was built over.
    pub fn position(&self, address: AddressId, isp: Isp) -> Option<usize> {
        self.keys
            .binary_search(&(address, isp))
            .ok()
            .map(|i| self.pos[i] as usize)
    }

    /// Looks up the record for `(address, isp)` in the slice the index
    /// was built over.
    pub fn get<'r>(
        &self,
        records: &'r [QueryRecord],
        address: AddressId,
        isp: Isp,
    ) -> Option<&'r QueryRecord> {
        self.position(address, isp).map(|p| &records[p])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::AuditRow;
    use caf_geo::{CountyId, StateFips, TractId};
    use caf_synth::plans::PlanCatalog;

    fn cbg_in(state_fips: u16, tract: u32, group: u8) -> BlockGroupId {
        let state = StateFips::new(state_fips).unwrap();
        let county = CountyId::new(state, 1).unwrap();
        let tract = TractId::new(county, tract).unwrap();
        BlockGroupId::new(tract, group).unwrap()
    }

    fn row(i: u64, isp: Isp, state: UsState, cbg: BlockGroupId, served: bool) -> AuditRow {
        let plan = served.then(|| {
            let cat = PlanCatalog::for_isp(isp);
            cat.plan_from_tier(cat.tier_near(50.0))
        });
        AuditRow {
            address: AddressId(i),
            isp,
            state,
            cbg,
            cbg_total: 40,
            density: 120.0,
            density_pct: 0.4,
            centroid: LatLon::new(40.0, -80.0).unwrap(),
            served,
            max_down_mbps: plan.as_ref().and_then(|p| p.download_mbps),
            plans: plan.iter().cloned().collect(),
            max_plan: plan,
            existing_subscriber: false,
        }
    }

    fn dataset() -> AuditDataset {
        let oh = cbg_in(39, 1, 1);
        let oh2 = cbg_in(39, 1, 2);
        let vt = cbg_in(50, 1, 1);
        AuditDataset {
            rows: vec![
                // Deliberately interleaved across ISPs, states, CBGs.
                row(1, Isp::Frontier, UsState::Ohio, oh, true),
                row(2, Isp::Att, UsState::Ohio, oh2, false),
                row(3, Isp::Consolidated, UsState::Vermont, vt, true),
                row(4, Isp::Frontier, UsState::Ohio, oh, false),
                row(5, Isp::Att, UsState::Ohio, oh, true),
                row(6, Isp::Consolidated, UsState::Vermont, vt, false),
                row(7, Isp::Frontier, UsState::Ohio, oh2, true),
            ],
            records: Vec::new(),
            coverage: Vec::new(),
        }
    }

    #[test]
    fn cells_are_sorted_and_contiguous() {
        let ds = dataset();
        let index = AuditIndex::build(&ds);
        assert_eq!(index.len(), 7);
        let keys: Vec<(Isp, BlockGroupId)> = index.cells().iter().map(|c| (c.isp, c.cbg)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(keys, sorted, "cells sorted by (isp, cbg), no duplicates");
        // Ranges tile the sorted row space without gaps.
        let mut next = 0usize;
        for cell in index.cells() {
            assert_eq!(cell.range.start, next);
            assert!(!cell.is_empty());
            next = cell.range.end;
        }
        assert_eq!(next, index.len());
    }

    #[test]
    fn cell_rows_and_served_counts_match_dataset() {
        let ds = dataset();
        let index = AuditIndex::build(&ds);
        for cell in index.cells() {
            let mut served = 0usize;
            for &i in index.row_ids(cell) {
                let r = &ds.rows[i as usize];
                assert_eq!((r.isp, r.cbg), (cell.isp, cell.cbg));
                assert_eq!(r.state, cell.state);
                served += usize::from(r.served);
            }
            assert_eq!(cell.served_rows, served);
            assert_eq!(cell.len(), index.row_ids(cell).len());
            // The SoA served column agrees with the rows.
            let col = &index.served()[cell.range.clone()];
            assert_eq!(col.iter().filter(|&&s| s).count(), served);
        }
    }

    #[test]
    fn per_isp_and_per_state_slices() {
        let ds = dataset();
        let index = AuditIndex::build(&ds);
        let isps: Vec<Isp> = index.isps().collect();
        assert_eq!(isps, vec![Isp::Att, Isp::Frontier, Isp::Consolidated]);
        // AT&T has two cells (two Ohio CBGs); Consolidated one.
        assert_eq!(index.cells_for(Isp::Att).len(), 2);
        assert_eq!(index.cells_for(Isp::Consolidated).len(), 1);
        assert!(index.cells_for(Isp::Xfinity).is_empty());
        for cell in index.cells_for(Isp::Frontier) {
            assert_eq!(cell.isp, Isp::Frontier);
        }
        let states: Vec<UsState> = index.states().collect();
        assert_eq!(states, vec![UsState::Ohio, UsState::Vermont]);
        assert_eq!(index.cells_for_state(UsState::Ohio).count(), 4);
        assert_eq!(index.cells_for_state(UsState::Vermont).count(), 1);
        assert_eq!(index.cells_for_state(UsState::Iowa).count(), 0);
        let total: usize = index
            .states()
            .map(|s| index.cells_for_state(s).count())
            .sum();
        assert_eq!(total, index.cells().len());
    }

    #[test]
    fn group_ranges_is_deterministic_and_order_preserving() {
        let items = vec![("b", 1), ("a", 2), ("b", 3), ("a", 4), ("c", 5)];
        let grouped = group_ranges(&items, |&(k, _)| k);
        let keys: Vec<&str> = grouped.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
        let b_values: Vec<i32> = grouped
            .iter()
            .find(|(k, _)| **k == "b")
            .map(|(_, ids)| ids.iter().map(|&i| items[i as usize].1).collect())
            .unwrap();
        assert_eq!(b_values, vec![1, 3], "within-group order is input order");
        let empty = group_ranges(&[] as &[(&str, i32)], |&(k, _)| k);
        assert!(empty.groups.is_empty());
    }

    #[test]
    fn record_index_round_trips() {
        use caf_bqt::{Campaign, CampaignConfig, QueryTask};
        use caf_synth::{SynthConfig, World};
        let world = World::generate_states(
            SynthConfig {
                seed: 21,
                scale: 80,
            },
            &[UsState::Vermont],
        );
        let vt = world.state(UsState::Vermont).unwrap();
        let tasks: Vec<QueryTask> = vt
            .usac
            .records
            .iter()
            .take(200)
            .map(|r| QueryTask {
                address: r.address.id,
                isp: r.isp,
            })
            .collect();
        let result = Campaign::new(CampaignConfig {
            seed: 21,
            workers: 2,
            ..CampaignConfig::default()
        })
        .run(&world.truth, &tasks);
        let index = RecordIndex::build(&result.records);
        assert_eq!(index.len(), tasks.len());
        for (i, record) in result.records.iter().enumerate() {
            assert_eq!(index.position(record.address, record.isp), Some(i));
            let found = index
                .get(&result.records, record.address, record.isp)
                .unwrap();
            assert_eq!(found.address, record.address);
        }
        assert_eq!(index.position(AddressId(u64::MAX), Isp::Att), None);
    }
}
