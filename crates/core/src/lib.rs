//! # caf-core — the CAF efficacy analysis pipeline
//!
//! This crate is the paper's contribution: the post-hoc audit methodology
//! that takes (1) the regulator-facing USAC CAF-Map and (2) BQT query
//! outcomes, and answers the three policy questions of §1:
//!
//! * **Q1 — service availability** ([`serviceability`]): do ISPs genuinely
//!   offer service at the addresses they certified? Metric: the
//!   *serviceability rate*, computed per census block group and weighted
//!   by each CBG's total CAF address count when aggregated.
//! * **Q2 — compliance** ([`compliance`]): do the advertised plans meet
//!   the FCC's rate (≤ $89/mo) and service (≥ 10/1 Mbps, guaranteed)
//!   standards? Metric: the *compliance rate*, same weighting.
//! * **Q3 — regulated vs unregulated monopoly** ([`q3`]): within a census
//!   block, does the CAF ISP advertise better plans at its regulated
//!   (CAF) addresses than at its unregulated (monopoly) or competitive
//!   non-CAF addresses?
//!
//! Supporting stages: the §3.1 address [`sampling`] strategy
//! (max(30, 10 %) per CBG, resampling on persistent failure), the
//! end-to-end [`audit`] orchestrator, campaign [`coverage`] telemetry
//! (Figures 7/8), the §9.1 [`sensitivity`] analysis (Figure 9), and the
//! headline [`report`].
//!
//! Two shared execution layers sit underneath: [`index`] builds the
//! columnar [`AuditIndex`] once per dataset so every analysis consumes
//! pre-grouped `(ISP, CBG)` slices instead of re-deriving HashMaps, and
//! [`engine`] runs the per-state audit units on a scoped worker pool
//! under a strict determinism contract (identical output at any worker
//! count).
//!
//! The pipeline never reads the synthetic world's latent truth — only
//! query outcomes — so the calibration tests in `tests/` are genuine
//! end-to-end recovery checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod audit;
pub mod compliance;
pub mod counterfactual;
pub mod coverage;
pub mod engine;
pub mod experienced;
pub mod incremental;
pub mod index;
pub mod oversight;
pub mod program;
pub mod q3;
pub mod report;
pub mod sampling;
pub mod sensitivity;
pub mod serviceability;
pub mod snap;

pub use artifact::ScenarioMeta;
pub use audit::{Audit, AuditConfig, AuditDataset, AuditRow};
pub use compliance::ComplianceAnalysis;
pub use counterfactual::{CompetitionCounterfactual, CounterfactualPoint, SubsidyRule};
pub use engine::{CostHint, EngineConfig, Shard, ShardPolicy, UnitPlan};
pub use experienced::ExperiencedAnalysis;
pub use incremental::IncrementalAudit;
pub use index::{AuditIndex, CellMeta, RecordIndex};
pub use oversight::{compare_oversight, OversightConfig};
pub use program::ProgramRules;
pub use q3::{BlockType, Q3Analysis};
pub use report::EfficacyReport;
pub use sampling::{SamplingPlan, SamplingRule};
pub use serviceability::ServiceabilityAnalysis;
