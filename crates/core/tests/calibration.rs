//! End-to-end calibration: the pipeline, run over the full synthetic
//! world at reduced scale, must recover the paper's published results in
//! shape — per-ISP ordering, approximate magnitudes, and the qualitative
//! findings (density coupling, New-Jersey/Florida outliers, Type-A
//! outcome splits).
//!
//! The analysis sees only query outcomes; the latent truth stays inside
//! `caf-bqt`. Tolerances are loose enough for 1:30-scale sampling noise
//! but tight enough that a broken weighting scheme, a wrong compliance
//! predicate, or a mis-typed block fails the suite.

use caf_bqt::CampaignConfig;
use caf_core::{
    Audit, AuditConfig, BlockType, ComplianceAnalysis, EfficacyReport, Q3Analysis, SamplingRule,
    ServiceabilityAnalysis,
};
use caf_geo::UsState;
use caf_synth::{Isp, SynthConfig, World};
use std::sync::OnceLock;

const SCALE: u32 = 30;
const SEED: u64 = 0xCAF_2024;

struct Fixture {
    world: World,
    dataset: caf_core::AuditDataset,
    serviceability: ServiceabilityAnalysis,
    compliance: ComplianceAnalysis,
    q3: Q3Analysis,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let synth = SynthConfig {
            seed: SEED,
            scale: SCALE,
        };
        let world = World::generate(synth);
        let campaign = CampaignConfig {
            seed: SEED,
            workers: 8,
            ..CampaignConfig::default()
        };
        let audit = Audit::new(AuditConfig {
            synth,
            campaign,
            rule: SamplingRule::paper(),
            resample_rounds: 2,
        });
        let dataset = audit.run(&world);
        let serviceability = ServiceabilityAnalysis::compute(&dataset);
        let compliance = ComplianceAnalysis::compute(&dataset);
        // Q3 needs enough Type-B blocks (the paper had 560 of 9 420) for
        // stable outcome splits, so it runs on a dedicated, larger-scale
        // world restricted to the seven Q3 states.
        let q3_world = World::generate_states(
            SynthConfig {
                seed: SEED,
                scale: 8,
            },
            &UsState::q3_states(),
        );
        let q3 = Q3Analysis::run(&q3_world, campaign);
        Fixture {
            world,
            dataset,
            serviceability,
            compliance,
            q3,
        }
    })
}

#[test]
fn q1_per_isp_serviceability_matches_section_4_1() {
    let f = fixture();
    let s = &f.serviceability;
    let att = s.rate_for_isp(Isp::Att).unwrap();
    let cl = s.rate_for_isp(Isp::CenturyLink).unwrap();
    let frontier = s.rate_for_isp(Isp::Frontier).unwrap();
    let cons = s.rate_for_isp(Isp::Consolidated).unwrap();
    // Paper §4.1: 31.53 / 90.42 / 70.71 / 83.95 %. The three large ISPs
    // are point-calibrated; Consolidated is the smallest ISP in the
    // study (a handful of CBGs per state at 1:30 scale), so its rate is
    // dominated by which few cells the world RNG hands it — a point
    // target there pins the RNG stream, not the pipeline. It gets a
    // wide band plus the ordering properties that survive sampling
    // noise. (Frontier's 70.71 % is coincidentally 1/sqrt(2); it is the
    // paper's number, not a constant.)
    #[allow(clippy::approx_constant)]
    const FRONTIER_TARGET: f64 = 0.7071;
    assert!((att - 0.3153).abs() < 0.08, "AT&T {att}");
    assert!((cl - 0.9042).abs() < 0.08, "CenturyLink {cl}");
    assert!(
        (frontier - FRONTIER_TARGET).abs() < 0.08,
        "Frontier {frontier}"
    );
    assert!((0.5..0.95).contains(&cons), "Consolidated {cons}");
    // The ordering claims that hold at any scale: CenturyLink leads the
    // cohort and AT&T trails it (the paper's §4.1 headline contrast).
    let all = [att, cl, frontier, cons];
    assert!(
        all.iter().all(|&r| cl >= r),
        "CenturyLink {cl} should lead {all:?}"
    );
    assert!(
        all.iter().all(|&r| att <= r),
        "AT&T {att} should trail {all:?}"
    );
}

#[test]
fn q1_overall_serviceability_near_55_percent() {
    let f = fixture();
    let overall = f.serviceability.overall_rate();
    // Paper: 55.45 % under CBG weighting. Our queried-address mix gives
    // ~55–62 % depending on the heavy-tailed CBG draw.
    assert!((0.47..0.68).contains(&overall), "overall {overall}");
}

#[test]
fn q1_att_lowest_in_every_shared_state() {
    let f = fixture();
    let s = &f.serviceability;
    for state in UsState::study_states() {
        let Some(att) = s.rate_for_pair(state, Isp::Att) else {
            continue;
        };
        for other in [Isp::CenturyLink, Isp::Consolidated] {
            if let Some(rate) = s.rate_for_pair(state, other) {
                assert!(att < rate + 0.12, "{state}: AT&T {att} vs {other} {rate}");
            }
        }
    }
}

#[test]
fn q1_outlier_pairs_visible() {
    let f = fixture();
    let s = &f.serviceability;
    // CenturyLink's New Jersey rate diverges far below its other states.
    let nj = s
        .rate_for_pair(UsState::NewJersey, Isp::CenturyLink)
        .unwrap();
    let nc = s
        .rate_for_pair(UsState::NorthCarolina, Isp::CenturyLink)
        .unwrap();
    assert!(nj < nc - 0.25, "NJ {nj} should sit far below NC {nc}");
    // Frontier's Florida rate likewise.
    let fl = s.rate_for_pair(UsState::Florida, Isp::Frontier).unwrap();
    let oh = s.rate_for_pair(UsState::Ohio, Isp::Frontier).unwrap();
    assert!(fl < oh - 0.20, "FL {fl} should sit far below OH {oh}");
}

#[test]
fn q1_density_correlation_except_mississippi() {
    let f = fixture();
    let s = &f.serviceability;
    // Strong positive correlation in California and Georgia (Figure 3).
    for state in [UsState::California, UsState::Georgia] {
        let (r, rho) = s.density_correlation(Isp::Att, state).unwrap();
        assert!(r > 0.15, "{state}: pearson {r}");
        assert!(rho > 0.15, "{state}: spearman {rho}");
    }
    // Mississippi shows no *significant* correlation: with only ~30 MS
    // CBGs at this scale the point estimate carries ±0.18 of noise, so
    // the faithful check is the contrast against the coupled states.
    let (ms, _) = s
        .density_correlation(Isp::Att, UsState::Mississippi)
        .unwrap();
    let (ca, _) = s
        .density_correlation(Isp::Att, UsState::California)
        .unwrap();
    assert!(ms.abs() < 0.35, "MS pearson {ms} should be weak");
    assert!(ca > ms + 0.10, "CA {ca} should exceed MS {ms}");
}

#[test]
fn q2_per_isp_compliance_matches_section_4_2() {
    let f = fixture();
    let c = &f.compliance;
    let att = c.rate_for_isp(Isp::Att).unwrap();
    let cl = c.rate_for_isp(Isp::CenturyLink).unwrap();
    let frontier = c.rate_for_isp(Isp::Frontier).unwrap();
    let cons = c.rate_for_isp(Isp::Consolidated).unwrap();
    // Paper §4.2: 16.58 / 69.30 / 15 / 85.56 %. Our Table-1-derived
    // model puts AT&T near 21 % (see EXPERIMENTS.md). As in Q1,
    // Consolidated's tiny footprint makes its point value an RNG
    // artifact at this scale; the stable paper property is that
    // Consolidated complies at essentially every address it can serve
    // (85.56 of 83.95 % — compliance tracks serviceability), so that
    // ratio is asserted instead of the absolute rate.
    assert!((0.10..0.30).contains(&att), "AT&T {att}");
    assert!((cl - 0.693).abs() < 0.09, "CenturyLink {cl}");
    assert!(frontier < 0.16, "Frontier {frontier}");
    assert!((0.5..0.95).contains(&cons), "Consolidated {cons}");
    let cons_serviceability = f.serviceability.rate_for_isp(Isp::Consolidated).unwrap();
    assert!(
        cons >= 0.95 * cons_serviceability,
        "Consolidated compliance {cons} should track serviceability {cons_serviceability}"
    );
    // Ordering that survives sampling noise: the two compliant ISPs
    // (CenturyLink, Consolidated) sit far above AT&T, which sits above
    // Frontier's near-total non-compliance.
    assert!(cl > att && cons > att && att > frontier);
}

#[test]
fn q2_overall_compliance_near_30_percent() {
    let f = fixture();
    let overall = f.compliance.overall_rate();
    // Paper: 33.03 % (§4.2) / 27.72 % (abstract).
    assert!((0.22..0.40).contains(&overall), "overall {overall}");
}

#[test]
fn q2_compliance_never_exceeds_serviceability() {
    let f = fixture();
    for isp in Isp::audited() {
        let s = f.serviceability.rate_for_isp(isp).unwrap();
        let c = f.compliance.rate_for_isp(isp).unwrap();
        assert!(c <= s + 1e-9, "{isp}: compliance {c} > serviceability {s}");
    }
}

#[test]
fn q2_prices_always_under_the_fcc_cap() {
    let f = fixture();
    let (fraction, range) = f.compliance.price_compliance(&f.dataset);
    assert!(fraction > 0.999, "price compliance {fraction}");
    let (lo, hi) = range.expect("10 Mbps tiers exist");
    // §4.2: $30–$55 for the 10 Mbps tier.
    assert!(lo >= 30.0 && hi <= 55.0, "range {lo}–{hi}");
}

#[test]
fn q2_att_advertises_the_full_tier_spread() {
    // Table 1: AT&T certifies 10 Mbps everywhere but advertises 768 kbps
    // to 5 Gbps.
    let f = fixture();
    let bands = f.compliance.advertised_band_percentages(Isp::Att);
    let pct = |label: &str| {
        bands
            .iter()
            .find(|(b, _)| b.label() == label)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    };
    assert!(pct("0 (unserved)") > 50.0);
    assert!(pct("< 10") > 1.0);
    assert!(pct("1000+") > 2.0);
    assert!(pct("no-guarantee plan") > 1.0); // Internet Air
    let total: f64 = bands.iter().map(|(_, p)| p).sum();
    assert!((total - 100.0).abs() < 1e-6);
}

#[test]
fn q2_frontier_unknown_plans_visible() {
    let f = fixture();
    let bands = f.compliance.advertised_band_percentages(Isp::Frontier);
    let unknown = bands
        .iter()
        .find(|(b, _)| b.label() == "Unknown Plan")
        .map(|(_, p)| *p)
        .unwrap_or(0.0);
    // Paper: ≈12 % of Frontier addresses show no tier.
    assert!((4.0..20.0).contains(&unknown), "unknown {unknown}");
}

#[test]
fn q3_type_a_split_matches_figure_4a() {
    let f = fixture();
    let [better, tie, worse] = f.q3.type_a_outcomes().expect("Type A blocks exist");
    // Paper: 27 % / 54 % / 17 %.
    assert!((better - 0.27).abs() < 0.09, "better {better}");
    assert!((tie - 0.54).abs() < 0.11, "tie {tie}");
    assert!((worse - 0.17).abs() < 0.09, "worse {worse}");
}

#[test]
fn q3_type_b_split_matches_figure_5a() {
    let f = fixture();
    let [better, tie, worse] = f.q3.type_b_outcomes().expect("Type B blocks exist");
    // Paper: 32.1 % / 37.2 % / 30.7 % — all three outcomes materially
    // present, tie modal or near-modal.
    assert!(better > 0.15, "better {better}");
    assert!(tie > 0.15, "tie {tie}");
    assert!(worse > 0.15, "worse {worse}");
}

#[test]
fn q3_uplift_quantiles_match_figure_4c() {
    let f = fixture();
    let mut uplifts = f.q3.type_a_uplift_percents();
    assert!(uplifts.len() > 30, "need wins, got {}", uplifts.len());
    uplifts.sort_by(|a, b| a.total_cmp(b));
    let median = uplifts[uplifts.len() / 2];
    let p80 = uplifts[(uplifts.len() as f64 * 0.8) as usize];
    // Paper: median 75 %, p80 400 %. The tie tolerance clips tiny wins,
    // shifting quantiles up slightly.
    assert!((35.0..220.0).contains(&median), "median {median}");
    assert!(p80 > 150.0, "p80 {p80}");
    assert!(p80 > 2.0 * median, "p80 {p80} vs median {median}");
}

#[test]
fn q3_competition_lifts_caf_speeds() {
    let f = fixture();
    let (type_a, type_b) = f.q3.caf_speeds_by_type();
    assert!(type_a.len() > 50);
    assert!(!type_b.is_empty());
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    // Figure 6a: Type-B CAF speeds dominate Type-A.
    assert!(
        mean(&type_b) > mean(&type_a),
        "B {} vs A {}",
        mean(&type_b),
        mean(&type_a)
    );
}

#[test]
fn q3_type_mix_matches_section_4_3() {
    let f = fixture();
    let a = f.q3.blocks_of(BlockType::A).count();
    let b = f.q3.blocks_of(BlockType::B).count();
    let c = f.q3.blocks_of(BlockType::C).count();
    // Paper mix 8.76k / 0.56k / 0.10k → A ≫ B ≥ C; plus dropped blocks.
    assert!(a > 8 * b, "A {a} vs B {b}");
    assert!(b >= c, "B {b} vs C {c}");
    assert!(f.q3.blocks_dropped > 0);
}

#[test]
fn report_assembles_the_headline() {
    let f = fixture();
    let report = EfficacyReport::assemble(&f.serviceability, &f.compliance, Some(&f.q3));
    assert_eq!(report.per_isp.len(), 4);
    assert!((report.serviceability + report.unserved - 1.0).abs() < 1e-12);
    assert!(report.median_uplift_pct.unwrap() > 0.0);
    let text = report.render();
    assert!(text.contains("Type A blocks"));
}

#[test]
fn world_scale_matches_table_3_volumes() {
    let f = fixture();
    // Queried rows should be within a factor ~2 of 537k / SCALE.
    let expected = 537_660 / SCALE as usize;
    let rows = f.dataset.rows.len();
    assert!(
        rows > expected / 3 && rows < expected * 3,
        "rows {rows} vs expected ≈{expected}"
    );
    // All four ISPs and all fifteen states present.
    for isp in Isp::audited() {
        assert!(f.dataset.rows_for(isp).count() > 0, "{isp} missing");
    }
    assert_eq!(f.world.states.len(), 15);
}
