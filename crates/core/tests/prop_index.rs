//! Index-equivalence suite: the `AuditIndex`-based Q1/Q2 aggregates must
//! be **bit-identical** to the pre-refactor HashMap grouping, across
//! several seeds and scales.
//!
//! The oracle below is a faithful copy of the grouping the analyses used
//! before the shared index existed (HashMap per (ISP, CBG), first-row
//! metadata, final `(isp, cbg)` sort) — kept here, outside the library,
//! so the production path can never quietly drift away from it. All
//! floating-point comparisons go through `f64::to_bits`: the refactor's
//! contract is *exact* equality, not tolerance.

use caf_bqt::CampaignConfig;
use caf_core::compliance::row_is_compliant;
use caf_core::{
    Audit, AuditConfig, AuditDataset, AuditIndex, ComplianceAnalysis, ProgramRules, SamplingRule,
    ServiceabilityAnalysis,
};
use caf_geo::{BlockGroupId, UsState};
use caf_stats::weighted::WeightedSample;
use caf_stats::weighted_mean;
use caf_synth::{Isp, SynthConfig, World};
use std::collections::HashMap;

/// The (seed, scale, states) grid the equivalence claims are checked on.
const CASES: &[(u64, u32, &[UsState])] = &[
    (11, 40, &[UsState::Vermont, UsState::Utah]),
    (99, 60, &[UsState::Vermont]),
    (0xCAF_2024, 25, &[UsState::Alabama, UsState::NewHampshire]),
];

fn dataset_for(seed: u64, scale: u32, states: &[UsState]) -> AuditDataset {
    let synth = SynthConfig { seed, scale };
    let world = World::generate_states(synth, states);
    let audit = Audit::new(AuditConfig {
        synth,
        campaign: CampaignConfig {
            seed,
            workers: 4,
            ..CampaignConfig::default()
        },
        rule: SamplingRule::paper(),
        resample_rounds: 2,
    });
    audit.run(&world)
}

/// The pre-refactor Q1 grouping, verbatim: one HashMap bucket per
/// (ISP, CBG), rate/weight/metadata from the bucket, sorted at the end.
fn oracle_q1(dataset: &AuditDataset) -> Vec<(Isp, BlockGroupId, f64, f64, usize)> {
    let mut grouped: HashMap<(Isp, BlockGroupId), Vec<usize>> = HashMap::new();
    for (i, row) in dataset.rows.iter().enumerate() {
        grouped.entry((row.isp, row.cbg)).or_default().push(i);
    }
    let mut rates: Vec<(Isp, BlockGroupId, f64, f64, usize)> = grouped
        .into_iter()
        .map(|((isp, cbg), rows)| {
            let served = rows.iter().filter(|&&i| dataset.rows[i].served).count();
            let first = &dataset.rows[rows[0]];
            (
                isp,
                cbg,
                served as f64 / rows.len() as f64,
                first.cbg_total as f64,
                rows.len(),
            )
        })
        .collect();
    rates.sort_by_key(|&(isp, cbg, ..)| (isp, cbg));
    rates
}

/// The pre-refactor Q2 grouping (same shape, compliance predicate).
fn oracle_q2(dataset: &AuditDataset) -> Vec<(Isp, BlockGroupId, f64, f64, usize)> {
    let mut grouped: HashMap<(Isp, BlockGroupId), Vec<usize>> = HashMap::new();
    for (i, row) in dataset.rows.iter().enumerate() {
        grouped.entry((row.isp, row.cbg)).or_default().push(i);
    }
    let mut rates: Vec<(Isp, BlockGroupId, f64, f64, usize)> = grouped
        .into_iter()
        .map(|((isp, cbg), rows)| {
            let ok = rows
                .iter()
                .filter(|&&i| row_is_compliant(&dataset.rows[i]))
                .count();
            let first = &dataset.rows[rows[0]];
            (
                isp,
                cbg,
                ok as f64 / rows.len() as f64,
                first.cbg_total as f64,
                rows.len(),
            )
        })
        .collect();
    rates.sort_by_key(|&(isp, cbg, ..)| (isp, cbg));
    rates
}

/// CBG-weighted mean over `(rate, weight)` pairs in slice order — the
/// same fold every analysis applies.
fn oracle_weighted(
    rates: &[(Isp, BlockGroupId, f64, f64, usize)],
    isp: Option<Isp>,
) -> Option<f64> {
    let samples: Vec<WeightedSample> = rates
        .iter()
        .filter(|&&(i, ..)| isp.is_none_or(|want| i == want))
        .map(|&(_, _, rate, weight, _)| WeightedSample::new(rate, weight))
        .collect();
    weighted_mean(&samples).ok()
}

fn bits(x: f64) -> u64 {
    x.to_bits()
}

fn opt_bits(x: Option<f64>) -> Option<u64> {
    x.map(f64::to_bits)
}

#[test]
fn q1_index_aggregates_match_hashmap_oracle_bitwise() {
    for &(seed, scale, states) in CASES {
        let dataset = dataset_for(seed, scale, states);
        let index = AuditIndex::build(&dataset);
        let analysis = ServiceabilityAnalysis::from_index(&index);
        let oracle = oracle_q1(&dataset);

        assert_eq!(analysis.cbg_rates.len(), oracle.len(), "seed {seed}");
        for (got, want) in analysis.cbg_rates.iter().zip(&oracle) {
            assert_eq!((got.isp, got.cbg), (want.0, want.1), "seed {seed}");
            assert_eq!(bits(got.rate), bits(want.2), "seed {seed} cbg {}", got.cbg);
            assert_eq!(bits(got.weight), bits(want.3), "seed {seed}");
            assert_eq!(got.n, want.4, "seed {seed}");
        }
        assert_eq!(
            bits(analysis.overall_rate()),
            bits(oracle_weighted(&oracle, None).expect("non-empty")),
            "seed {seed}: overall rate must be bit-identical"
        );
        for isp in Isp::audited() {
            assert_eq!(
                opt_bits(analysis.rate_for_isp(isp)),
                opt_bits(oracle_weighted(&oracle, Some(isp))),
                "seed {seed} isp {isp:?}"
            );
        }
    }
}

#[test]
fn q2_index_aggregates_match_hashmap_oracle_bitwise() {
    for &(seed, scale, states) in CASES {
        let dataset = dataset_for(seed, scale, states);
        let index = AuditIndex::build(&dataset);
        let analysis = ComplianceAnalysis::from_index(&dataset, &index);
        let oracle = oracle_q2(&dataset);

        assert_eq!(analysis.cbg_rates.len(), oracle.len(), "seed {seed}");
        for (got, want) in analysis.cbg_rates.iter().zip(&oracle) {
            assert_eq!((got.isp, got.cbg), (want.0, want.1), "seed {seed}");
            assert_eq!(bits(got.rate), bits(want.2), "seed {seed} cbg {}", got.cbg);
            assert_eq!(bits(got.weight), bits(want.3), "seed {seed}");
            assert_eq!(got.n, want.4, "seed {seed}");
        }
        assert_eq!(
            bits(analysis.overall_rate()),
            bits(oracle_weighted(&oracle, None).expect("non-empty")),
            "seed {seed}"
        );
        for isp in Isp::audited() {
            assert_eq!(
                opt_bits(analysis.rate_for_isp(isp)),
                opt_bits(oracle_weighted(&oracle, Some(isp))),
                "seed {seed} isp {isp:?}"
            );
        }
    }
}

#[test]
fn compute_wrappers_equal_from_index() {
    // The one-shot `compute` paths are thin wrappers over a throwaway
    // index; their output must equal the shared-index projections field
    // for field.
    let dataset = dataset_for(11, 40, &[UsState::Vermont, UsState::Utah]);
    let index = AuditIndex::build(&dataset);

    let a = ServiceabilityAnalysis::compute(&dataset);
    let b = ServiceabilityAnalysis::from_index(&index);
    assert_eq!(a.cbg_rates.len(), b.cbg_rates.len());
    for (x, y) in a.cbg_rates.iter().zip(&b.cbg_rates) {
        assert_eq!((x.isp, x.cbg, x.n), (y.isp, y.cbg, y.n));
        assert_eq!(bits(x.rate), bits(y.rate));
    }

    let a = ComplianceAnalysis::compute(&dataset);
    let b = ComplianceAnalysis::from_index(&dataset, &index);
    assert_eq!(bits(a.overall_rate()), bits(b.overall_rate()));
    for isp in Isp::audited() {
        assert_eq!(
            a.advertised_band_percentages(isp)
                .iter()
                .map(|&(band, p)| (band, bits(p)))
                .collect::<Vec<_>>(),
            b.advertised_band_percentages(isp)
                .iter()
                .map(|&(band, p)| (band, bits(p)))
                .collect::<Vec<_>>(),
            "isp {isp:?}"
        );
    }
}

#[test]
fn program_rules_indexed_path_matches_wrappers() {
    let dataset = dataset_for(99, 60, &[UsState::Vermont]);
    let index = AuditIndex::build(&dataset);
    for rules in [
        ProgramRules::caf_phase_ii(),
        ProgramRules::fcc_25_3(),
        ProgramRules::bead(),
    ] {
        assert_eq!(
            opt_bits(rules.compliance_rate(&dataset)),
            opt_bits(rules.compliance_rate_indexed(&dataset, &index, None)),
            "{}",
            rules.name
        );
        for isp in Isp::audited() {
            assert_eq!(
                opt_bits(rules.compliance_rate_for(&dataset, isp)),
                opt_bits(rules.compliance_rate_indexed(&dataset, &index, Some(isp))),
                "{} / {isp:?}",
                rules.name
            );
        }
    }
}
