//! A minimal blocking HTTP/1.1 client — just enough for the
//! integration tests, `serve_bench`, and the CI gate to talk to a
//! local `caf-serve` without external dependencies.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends `GET path` to `addr` and returns `(status, body)`.
pub fn get(addr: SocketAddr, path: &str) -> Result<(u16, Vec<u8>), String> {
    request(
        addr,
        &format!("GET {path} HTTP/1.1\r\nHost: caf-serve\r\n\r\n"),
    )
}

/// Response headers as (lowercased name, value) pairs.
pub type Headers = Vec<(String, String)>;

/// Like [`get`], but also returns the response headers so callers can
/// inspect `ETag`, `Retry-After`, etc.
pub fn get_full(addr: SocketAddr, path: &str) -> Result<(u16, Headers, Vec<u8>), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: caf-serve\r\n\r\n").as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    let (status, body) = parse_response(&raw)?;
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("parse_response found the separator");
    let head = std::str::from_utf8(&raw[..split]).map_err(|e| e.to_string())?;
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.to_ascii_lowercase(), value.trim().to_string()))
        .collect();
    Ok((status, headers, body))
}

/// Sends a raw request head and returns `(status, body)`. The
/// connection is `Connection: close`, so the body is everything after
/// the blank line.
pub fn request(addr: SocketAddr, head: &str) -> Result<(u16, Vec<u8>), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(head.as_bytes())
        .map_err(|e| format!("write: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read: {e}"))?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Result<(u16, Vec<u8>), String> {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "no header/body separator in response".to_string())?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|e| e.to_string())?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line: {status_line:?}"))?;
    Ok((status, raw[split + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_closed_connection_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabc";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"abc");
        assert!(parse_response(b"garbage").is_err());
    }
}
