//! The disk LRU tier: a second-chance store for evicted cache entries.
//!
//! The in-memory [`ScenarioCache`](crate::cache::ScenarioCache) bounds
//! RAM; this tier bounds *recomputation*. When the LRU cap pushes a
//! ready bundle out, its serialized payload lands here as a `caf-snap`
//! container file keyed by scenario + epoch; the next request for that
//! scenario promotes the file back into memory instead of rebuilding
//! the world. The tier has its own LRU cap (in entries), so disk usage
//! stays bounded too.
//!
//! Durability is best-effort by design: every file is checksummed and
//! header-validated on load, and *any* anomaly — truncation, bit flip,
//! version or scenario mismatch — deletes the file and reports a miss,
//! so the caller falls back to recomputing. A tier can never serve
//! wrong bytes; at worst it serves none.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::SystemTime;

use caf_snap::{write_atomic, Snapshot, SnapshotBuilder};

/// Section tag for the serialized bundle payload inside a tier file.
/// (Snapshot files use `0x10`..`0x20` for their sections; tier files
/// hold exactly one section under this tag.)
pub const SECTION_TIER: u32 = 0x30;

struct TierEntry {
    path: PathBuf,
    bytes: u64,
    /// Monotonic recency stamp; smallest = least recently used.
    seq: u64,
}

struct TierInner {
    entries: HashMap<String, TierEntry>,
    next_seq: u64,
}

/// Occupancy of the tier, surfaced in `/healthz`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierStats {
    /// Files currently held.
    pub entries: usize,
    /// Total payload bytes on disk.
    pub bytes: u64,
    /// Maximum number of files before LRU deletion.
    pub capacity: usize,
}

/// A bounded, validating, LRU-evicting directory of spilled bundles.
pub struct DiskTier {
    dir: PathBuf,
    capacity: usize,
    inner: Mutex<TierInner>,
}

impl DiskTier {
    /// Opens (creating if needed) the tier directory and adopts any
    /// existing `*.tier` files, seeding LRU order from file mtimes so
    /// a restarted server keeps its spilled working set.
    pub fn open(dir: &Path, capacity: usize) -> io::Result<DiskTier> {
        fs::create_dir_all(dir)?;
        let mut found: Vec<(String, PathBuf, u64, SystemTime)> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(key) = name.strip_suffix(".tier") else {
                continue;
            };
            let meta = entry.metadata()?;
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
            found.push((key.to_string(), path, meta.len(), mtime));
        }
        found.sort_by_key(|(_, _, _, mtime)| *mtime);
        let mut inner = TierInner {
            entries: HashMap::new(),
            next_seq: 0,
        };
        for (key, path, bytes, _) in found {
            inner.next_seq += 1;
            let seq = inner.next_seq;
            inner.entries.insert(key, TierEntry { path, bytes, seq });
        }
        let tier = DiskTier {
            dir: dir.to_path_buf(),
            capacity: capacity.max(1),
            inner: Mutex::new(inner),
        };
        tier.publish_gauges(&tier.inner.lock().unwrap());
        Ok(tier)
    }

    /// Stores `payload` under `key`, stamped with the scenario identity
    /// `(seed, scale, epoch)` that [`DiskTier::load`] will verify. The
    /// write is atomic (tmp + rename); failures are counted and
    /// swallowed — a tier that cannot write degrades to recomputation,
    /// never to an error on the serving path.
    pub fn put(&self, key: &str, seed: u64, scale: u32, epoch: u64, payload: &[u8]) {
        let mut builder = SnapshotBuilder::new(seed, scale, epoch);
        builder.section(SECTION_TIER, |w| w.put_raw(payload));
        let bytes = builder.finish();
        let path = self.file_path(key);
        if let Err(error) = write_atomic(&path, &bytes) {
            caf_obs::count("caf.snap.tier.write_errors", 1);
            eprintln!("caf-serve: disk tier write failed for {key}: {error}");
            return;
        }
        caf_obs::count("caf.snap.tier.spills", 1);
        let mut inner = self.inner.lock().unwrap();
        inner.next_seq += 1;
        let seq = inner.next_seq;
        inner.entries.insert(
            key.to_string(),
            TierEntry {
                path,
                bytes: bytes.len() as u64,
                seq,
            },
        );
        while inner.entries.len() > self.capacity {
            let oldest = inner
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.seq)
                .map(|(k, _)| k.clone())
                .expect("non-empty map over capacity");
            let entry = inner.entries.remove(&oldest).expect("oldest key present");
            let _ = fs::remove_file(&entry.path);
            caf_obs::count("caf.snap.tier.evictions", 1);
        }
        self.publish_gauges(&inner);
    }

    /// Loads and validates the payload for `key`. Returns `None` — and
    /// removes the file — on any mismatch between the stored container
    /// and the expected `(seed, scale, epoch)`, or on any corruption
    /// the `caf-snap` checksums catch. A successful load refreshes the
    /// entry's recency.
    pub fn load(&self, key: &str, seed: u64, scale: u32, epoch: u64) -> Option<Vec<u8>> {
        let path = {
            let inner = self.inner.lock().unwrap();
            inner.entries.get(key)?.path.clone()
        };
        // Read + validate outside the lock: tier files are written
        // atomically and only removed under the lock, so a concurrent
        // eviction at worst turns this into a miss.
        let result = fs::read(&path).ok().and_then(|bytes| {
            let snapshot = Snapshot::parse(&bytes).ok()?;
            let header = snapshot.header;
            if header.seed != seed || header.scale != scale || header.epoch != epoch {
                return None;
            }
            snapshot.section(SECTION_TIER).map(<[u8]>::to_vec)
        });
        let mut inner = self.inner.lock().unwrap();
        match result {
            Some(payload) => {
                inner.next_seq += 1;
                let seq = inner.next_seq;
                if let Some(entry) = inner.entries.get_mut(key) {
                    entry.seq = seq;
                }
                caf_obs::count("caf.snap.tier.hits", 1);
                Some(payload)
            }
            None => {
                if let Some(entry) = inner.entries.remove(key) {
                    let _ = fs::remove_file(&entry.path);
                }
                caf_obs::count("caf.snap.tier.invalid", 1);
                self.publish_gauges(&inner);
                None
            }
        }
    }

    /// Current occupancy (entries, bytes, capacity).
    pub fn stats(&self) -> TierStats {
        let inner = self.inner.lock().unwrap();
        TierStats {
            entries: inner.entries.len(),
            bytes: inner.entries.values().map(|entry| entry.bytes).sum(),
            capacity: self.capacity,
        }
    }

    /// True if `key` currently has a tier file (does not touch recency).
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().unwrap().entries.contains_key(key)
    }

    /// The directory this tier writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn file_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.tier"))
    }

    fn publish_gauges(&self, inner: &TierInner) {
        caf_obs::gauge("caf.snap.tier.entries", inner.entries.len() as u64);
        caf_obs::gauge(
            "caf.snap.tier.bytes",
            inner.entries.values().map(|entry| entry.bytes).sum(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "caf-tier-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn payloads_round_trip_byte_identically() {
        let dir = temp_dir("roundtrip");
        let tier = DiskTier::open(&dir, 4).unwrap();
        let payload = b"canonical bundle bytes \x00\x01\x02".to_vec();
        tier.put("q12-2a-150-0", 42, 150, 0, &payload);
        assert_eq!(tier.load("q12-2a-150-0", 42, 150, 0), Some(payload));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn identity_mismatch_is_a_miss_and_removes_the_file() {
        let dir = temp_dir("mismatch");
        let tier = DiskTier::open(&dir, 4).unwrap();
        tier.put("k", 42, 150, 3, b"payload");
        // Wrong epoch: the stored container does not match what the
        // caller expects, so the entry must be dropped, not served.
        assert_eq!(tier.load("k", 42, 150, 4), None);
        assert!(!tier.contains("k"));
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_file_is_a_miss_not_a_panic() {
        let dir = temp_dir("corrupt");
        let tier = DiskTier::open(&dir, 4).unwrap();
        tier.put("k", 7, 30, 0, b"payload");
        let path = dir.join("k.tier");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(tier.load("k", 7, 30, 0), None);
        assert!(!path.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_eviction_deletes_oldest_file() {
        let dir = temp_dir("evict");
        let tier = DiskTier::open(&dir, 2).unwrap();
        tier.put("a", 1, 1, 0, b"a");
        tier.put("b", 1, 1, 0, b"b");
        // Touch "a" so "b" becomes the LRU entry.
        assert!(tier.load("a", 1, 1, 0).is_some());
        tier.put("c", 1, 1, 0, b"c");
        assert!(tier.contains("a") && tier.contains("c") && !tier.contains("b"));
        assert!(!dir.join("b.tier").exists());
        assert_eq!(tier.stats().entries, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_adopts_existing_files() {
        let dir = temp_dir("reopen");
        {
            let tier = DiskTier::open(&dir, 4).unwrap();
            tier.put("persisted", 9, 5, 2, b"still here");
        }
        let tier = DiskTier::open(&dir, 4).unwrap();
        assert!(tier.contains("persisted"));
        assert_eq!(
            tier.load("persisted", 9, 5, 2),
            Some(b"still here".to_vec())
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
