//! The application handler: routes HTTP requests to cached scenario
//! computations and renders canonical artifact bytes.
//!
//! The cache key is the *canonical scenario identity* — the parameters
//! that change the result. Compute-side knobs (`workers=`) are
//! deliberately excluded: asking for the same scenario at a different
//! worker count must hit the same entry, and — by the engine's
//! determinism contract — would have produced byte-identical artifacts
//! anyway. That contract is what lets `/v1/*` responses be compared
//! byte-for-byte against `repro --artifacts` goldens in CI.
//!
//! ## Challenges and epochs
//!
//! The server is not just a batch cache: `POST /v1/challenge` ingests a
//! JSONL stream of [`ChallengeDelta`]s against the server's *default*
//! `(seed, scale)` scenario, advancing a live epoch-versioned world.
//! Each accepted batch is applied via [`World::apply_deltas`] (atomic —
//! an invalid delta rejects the whole batch with `400`) and recomputed
//! incrementally via [`IncrementalAudit::refresh`], which re-audits only
//! the invalidated (state, CBG, ISP) cells. The refreshed view is
//! published into the scenario cache under its epoch, so reads are
//! consistent without any cache flush:
//!
//! * `GET /v1/{serviceability,compliance,table2}?epoch=E` serves the
//!   world after the first `E` deltas (`epoch` defaults to `0`, the
//!   pristine pre-challenge world — existing clients and the CI goldens
//!   are unaffected).
//! * A historical epoch that has fallen out of the cache is rebuilt
//!   from scratch from the delta log prefix; by the determinism
//!   contract the bytes equal what the incremental path produced.
//! * `/v1/q3` takes no `epoch`: challenges correct the Q1/Q2 CAF-Map
//!   world, not the Q3 monopoly comparison's dedicated world.
//!
//! Conditional GETs: every `/v1/*` artifact response carries a
//! deterministic FNV-1a `ETag`; a request presenting it back via
//! `If-None-Match` is answered `304 Not Modified` with no body.

use crate::cache::{CacheError, CacheOutcome, ScenarioCache};
use crate::http::{Request, Response};
use crate::server::Handler;
use caf_bench::{campaign_config, Fixture};
use caf_core::{
    artifact, Audit, AuditConfig, AuditDataset, AuditIndex, ComplianceAnalysis, EngineConfig,
    IncrementalAudit, Q3Analysis, SamplingRule, ScenarioMeta, ServiceabilityAnalysis,
};
use caf_geo::UsState;
use caf_obs::json::Json;
use caf_obs::{FlightRecorder, Slo};
use caf_synth::challenge::deltas_from_jsonl;
use caf_synth::{ChallengeDelta, Isp, SynthConfig, World};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which pipeline a cache entry materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Kind {
    /// The Q1/Q2 fixture: world + campaign + serviceability/compliance.
    Q12,
    /// The Q3 monopoly/competitive analysis (its own world build).
    Q3,
}

/// Canonical scenario identity: result-changing parameters only. The
/// challenge epoch is identity — the same `(seed, scale)` before and
/// after a correction batch are different results — which is exactly
/// what lets pre- and post-challenge views coexist in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ScenarioKey {
    kind: Kind,
    seed: u64,
    scale: u32,
    epoch: u64,
}

/// The slice of a Q1/Q2 fixture the artifact routes actually read.
/// (The world itself stays out of the cache; the live challenge
/// scenario owns the only resident world.)
struct Q12View {
    dataset: AuditDataset,
    serviceability: ServiceabilityAnalysis,
    compliance: ComplianceAnalysis,
}

impl Q12View {
    fn from_fixture(fixture: Fixture) -> Q12View {
        Q12View {
            dataset: fixture.dataset,
            serviceability: fixture.serviceability,
            compliance: fixture.compliance,
        }
    }
}

/// A materialized scenario bundle held by the cache.
enum Bundle {
    Q12(Box<Q12View>),
    Q3(Box<Q3Analysis>),
}

/// The live, epoch-versioned default scenario: the world of record, the
/// incremental audit tracking it cell-by-cell, and the full delta log
/// (the source of truth for rebuilding any historical epoch).
struct Live {
    world: World,
    inc: IncrementalAudit,
    log: Vec<ChallengeDelta>,
}

/// Tuning for [`App`].
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Seed used when a request omits `seed=`.
    pub default_seed: u64,
    /// Downscale factor used when a request omits `scale=`.
    pub default_scale: u32,
    /// Base engine budget for scenario computation; concurrent
    /// computations split it via [`EngineConfig::share`].
    pub engine: EngineConfig,
    /// Ready entries the scenario cache retains (LRU beyond this).
    pub cache_capacity: usize,
    /// How long a request waits on another request's in-flight
    /// computation before giving up with `503`.
    pub compute_timeout: Duration,
    /// Smallest accepted `scale=` (a low downscale factor means a huge
    /// world; this bounds per-request memory/CPU).
    pub min_scale: u32,
    /// Recent traces the flight recorder retains (and, separately, the
    /// slow/error keep-list bound). `0` disables trace capture;
    /// deterministic `X-Request-Id`s are minted either way.
    pub trace_capacity: usize,
    /// Requests slower than this are always kept by the flight
    /// recorder; doubles as each route's SLO latency target.
    pub slow_ms: u64,
}

impl Default for AppConfig {
    fn default() -> AppConfig {
        AppConfig {
            default_seed: 0xCAF_2024,
            default_scale: 150,
            engine: EngineConfig::auto(),
            cache_capacity: 4,
            compute_timeout: Duration::from_secs(120),
            min_scale: 1,
            trace_capacity: 256,
            slow_ms: 500,
        }
    }
}

/// The fixed route table: request path, span label, and the short route
/// name used for trace annotations and `caf.slo.<route>.*` counters.
/// Only recognized paths get their own label — span names and SLO
/// counters are interned forever, so arbitrary client paths (the empty
/// sentinel path never matches a request) must all share `not_found`.
const ROUTES: &[(&str, &str, &str)] = &[
    ("/healthz", "serve.route.healthz", "healthz"),
    ("/metrics", "serve.route.metrics", "metrics"),
    ("/quitquitquit", "serve.route.quitquitquit", "quitquitquit"),
    (
        "/v1/serviceability",
        "serve.route.v1.serviceability",
        "v1.serviceability",
    ),
    (
        "/v1/compliance",
        "serve.route.v1.compliance",
        "v1.compliance",
    ),
    ("/v1/table2", "serve.route.v1.table2", "v1.table2"),
    ("/v1/q3", "serve.route.v1.q3", "v1.q3"),
    ("/v1/challenge", "serve.route.v1.challenge", "v1.challenge"),
    (
        "/v1/debug/traces",
        "serve.route.debug.traces",
        "debug.traces",
    ),
    ("", "serve.route.not_found", "not_found"),
];

/// Resolves a request path to its `(span label, short name)` pair.
fn route_entry(path: &str) -> (&'static str, &'static str) {
    ROUTES
        .iter()
        .find(|&&(route_path, _, _)| !route_path.is_empty() && route_path == path)
        .map_or(
            ("serve.route.not_found", "not_found"),
            |&(_, label, short)| (label, short),
        )
}

/// The serving application: endpoint routing + scenario cache + the
/// live challenge scenario.
pub struct App {
    config: AppConfig,
    cache: ScenarioCache<ScenarioKey, Bundle>,
    active_computes: Arc<AtomicUsize>,
    live: Mutex<Option<Live>>,
    recorder: Arc<FlightRecorder>,
    /// One SLO per fixed route, keyed by span label.
    slos: BTreeMap<&'static str, Slo>,
    started: Instant,
}

/// RAII share of the compute budget; see [`App::compute_engine`].
struct ActiveGuard(Arc<AtomicUsize>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl App {
    /// Creates the application with the given tuning.
    pub fn new(config: AppConfig) -> App {
        let cache = ScenarioCache::new(config.cache_capacity);
        let slow_us = config.slow_ms.saturating_mul(1_000);
        let recorder = Arc::new(FlightRecorder::new(config.trace_capacity, slow_us));
        // Every route gets the same latency target (the slow-request
        // threshold) and a 10% error budget; `metrics_check
        // --max-slo-burn` turns the resulting burn fraction into a gate.
        let slos = ROUTES
            .iter()
            .map(|&(_, label, short)| (label, Slo::new(short, slow_us, 100_000)))
            .collect();
        App {
            config,
            cache,
            active_computes: Arc::new(AtomicUsize::new(0)),
            live: Mutex::new(None),
            recorder,
            slos,
            started: Instant::now(),
        }
    }

    /// The flight recorder `/v1/debug/traces` reads; hand a clone to
    /// [`crate::ServeConfig::recorder`] so the accept path files traces
    /// into it.
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.recorder)
    }

    /// Exact cache counters (used by `serve_bench` for the hit ratio).
    pub fn cache_stats(&self) -> crate::cache::StatsSnapshot {
        self.cache.stats()
    }

    /// The live challenge epoch (0 until the first accepted batch).
    pub fn live_epoch(&self) -> u64 {
        self.live
            .lock()
            .unwrap()
            .as_ref()
            .map_or(0, |live| live.world.epoch)
    }

    /// `GET /healthz`: liveness plus staleness — the live challenge
    /// epoch, process uptime, and cache occupancy, as canonical
    /// (sorted-key) JSON.
    fn healthz_response(&self) -> Response {
        let mut body = Json::Obj(vec![
            (
                "cache".to_string(),
                Json::Obj(vec![
                    (
                        "capacity".to_string(),
                        Json::UInt(self.cache.capacity() as u64),
                    ),
                    ("entries".to_string(), Json::UInt(self.cache.len() as u64)),
                ]),
            ),
            ("epoch".to_string(), Json::UInt(self.live_epoch())),
            ("status".to_string(), Json::Str("ok".to_string())),
            (
                "uptime_s".to_string(),
                Json::UInt(self.started.elapsed().as_secs()),
            ),
        ])
        .to_compact();
        body.push('\n');
        Response::json(body.into_bytes())
    }

    /// `GET /v1/debug/traces`: the flight recorder as canonical JSON —
    /// top-`k` traces by duration (default 20), filterable by
    /// `route=<short name>` and `epoch=<n>` annotations.
    fn debug_traces_response(&self, request: &Request) -> Response {
        let k = match parse_or(request, "k", 20usize) {
            Ok(k) => k,
            Err(response) => return *response,
        };
        let mut body = self
            .recorder
            .debug_json(request.param("route"), request.param("epoch"), k)
            .to_pretty();
        body.push('\n');
        Response::json(body.into_bytes())
    }

    /// The `/metrics` report for this server process. `?format=prometheus`
    /// switches to the text exposition rendered over the same registry;
    /// the default (`format=json` or no parameter) is the RunReport.
    fn metrics_response(&self, request: &Request) -> Response {
        match request.param("format") {
            None | Some("json") => self.metrics_report_response(),
            Some("prometheus") => {
                Response::text(caf_obs::render_prometheus(caf_obs::registry()).into_bytes())
            }
            Some(other) => Response::error(
                400,
                &format!("unknown format {other:?}; expected json or prometheus"),
            ),
        }
    }

    fn metrics_report_response(&self) -> Response {
        let mut meta = BTreeMap::new();
        meta.insert("tool".to_string(), "caf-serve".to_string());
        meta.insert("seed".to_string(), self.config.default_seed.to_string());
        meta.insert(
            "workers".to_string(),
            self.config.engine.workers.to_string(),
        );
        meta.insert("scale".to_string(), self.config.default_scale.to_string());
        meta.insert(
            "cache_capacity".to_string(),
            self.config.cache_capacity.to_string(),
        );
        meta.insert("epoch".to_string(), self.live_epoch().to_string());
        let mut body = caf_obs::RunReport::collect(meta).to_json_pretty();
        body.push('\n');
        Response::json(body.into_bytes())
    }

    /// Claims a share of the engine budget for one computation. The
    /// split is `base.share(active)` so two concurrent cold scenarios
    /// each get half the workers instead of oversubscribing the host.
    fn compute_engine(&self, base: EngineConfig) -> (EngineConfig, ActiveGuard) {
        let active = self.active_computes.fetch_add(1, Ordering::SeqCst) + 1;
        caf_obs::gauge("caf.serve.computes.active", active as u64);
        (
            base.share(active),
            ActiveGuard(Arc::clone(&self.active_computes)),
        )
    }

    /// The audit configuration the serving layer computes under — the
    /// same one [`Fixture::build_tuned`] uses, so live incremental
    /// refreshes and from-scratch fixture builds agree byte-for-byte.
    fn audit_for(&self, seed: u64, scale: u32) -> Audit {
        Audit::new(AuditConfig {
            synth: SynthConfig { seed, scale },
            campaign: campaign_config(seed),
            rule: SamplingRule::paper(),
            resample_rounds: 2,
        })
    }

    /// Handles `POST /v1/challenge`: parses the JSONL delta batch,
    /// applies it to the live world (atomically — any invalid delta
    /// rejects the batch), refreshes the incremental audit over the
    /// invalidated cells only, and publishes the refreshed view into
    /// the scenario cache under the new epoch.
    fn challenge_response(&self, request: &Request) -> Response {
        let body = match std::str::from_utf8(&request.body) {
            Ok(body) => body,
            Err(_) => return Response::error(400, "challenge body must be UTF-8 JSONL"),
        };
        let deltas = match deltas_from_jsonl(body) {
            Ok(deltas) => deltas,
            Err(message) => {
                return Response::error(400, &format!("invalid delta stream: {message}"))
            }
        };
        if deltas.is_empty() {
            return Response::error(400, "challenge batch contains no deltas");
        }

        let seed = self.config.default_seed;
        let scale = self.config.default_scale;
        let mut slot = self.live.lock().unwrap();
        if slot.is_none() {
            // First challenge: materialize the live scenario (one full
            // build; every later batch is incremental). The mutex is
            // the single-flight here — concurrent first batches queue.
            let (engine, _guard) = self.compute_engine(self.config.engine);
            let _span = caf_obs::span("serve.challenge.materialize");
            let synth = SynthConfig { seed, scale };
            let world = World::generate_states_on(synth, &UsState::study_states(), engine);
            let inc = IncrementalAudit::build(self.audit_for(seed, scale), &world, engine);
            *slot = Some(Live {
                world,
                inc,
                log: Vec::new(),
            });
        }
        let live = slot.as_mut().expect("just materialized");

        let outcome = match live.world.apply_deltas(&deltas) {
            Ok(outcome) => outcome,
            Err(error) => return Response::error(400, &format!("challenge rejected: {error}")),
        };
        let dirty = outcome.dirty_cells();
        {
            let (engine, _guard) = self.compute_engine(self.config.engine);
            let _span = caf_obs::span("serve.challenge.refresh");
            live.inc.refresh(&live.world, &outcome, engine);
        }
        live.log.extend_from_slice(&deltas);
        caf_obs::count("caf.serve.challenge.batches", 1);
        caf_obs::count("caf.serve.challenge.applied", outcome.applied as u64);
        caf_obs::gauge("caf.serve.challenge.epoch", outcome.epoch);
        caf_obs::trace::annotate("epoch", &outcome.epoch.to_string());

        // Publish the refreshed view so reads at this epoch hit the
        // cache instead of rebuilding from scratch.
        let dataset = live.inc.dataset();
        let index = AuditIndex::build_at(&dataset, live.world.epoch);
        let view = Q12View {
            serviceability: ServiceabilityAnalysis::from_index(&index),
            compliance: ComplianceAnalysis::from_index(&dataset, &index),
            dataset,
        };
        let epoch = live.world.epoch;
        drop(slot);
        self.cache.insert(
            ScenarioKey {
                kind: Kind::Q12,
                seed,
                scale,
                epoch,
            },
            Bundle::Q12(Box::new(view)),
        );

        let mut body = Json::Obj(vec![
            ("applied".to_string(), Json::UInt(outcome.applied as u64)),
            ("cells_refreshed".to_string(), Json::UInt(dirty as u64)),
            ("epoch".to_string(), Json::UInt(epoch)),
        ])
        .to_compact();
        body.push('\n');
        Response::json(body.into_bytes())
    }

    fn scenario_response(&self, route: &str, request: &Request) -> Response {
        let params = match ScenarioParams::from_request(self, request) {
            Ok(params) => params,
            Err(response) => return *response,
        };
        caf_obs::trace::annotate("epoch", &params.epoch.to_string());
        if params.isp.is_some() && !matches!(route, "serviceability" | "compliance") {
            return Response::error(
                400,
                &format!("the isp filter is not supported on /v1/{route}"),
            );
        }
        if params.epoch > 0 && route == "q3" {
            return Response::error(
                400,
                "challenges correct the Q1/Q2 world; /v1/q3 takes no epoch",
            );
        }
        if params.epoch > 0
            && (params.seed != self.config.default_seed
                || params.meta.scale != self.config.default_scale)
        {
            return Response::error(
                400,
                "challenge epochs exist only for the server's default seed/scale scenario",
            );
        }

        // The delta prefix that defines the requested epoch (empty at
        // epoch 0). The epoch counts applied deltas, so epoch E is the
        // first E entries of the log.
        let deltas: Vec<ChallengeDelta> = if params.epoch == 0 {
            Vec::new()
        } else {
            let live = self.live.lock().unwrap();
            match live.as_ref() {
                Some(live) if live.world.epoch >= params.epoch => {
                    live.log[..params.epoch as usize].to_vec()
                }
                other => {
                    let reached = other.map_or(0, |live| live.world.epoch);
                    return Response::error(
                        404,
                        &format!(
                            "epoch {} has not been reached (live epoch is {reached}; \
                             apply challenges via POST /v1/challenge)",
                            params.epoch
                        ),
                    );
                }
            }
        };

        let key = match route {
            "q3" => ScenarioKey {
                kind: Kind::Q3,
                seed: params.seed,
                scale: params.meta.q3_scale,
                epoch: 0,
            },
            _ => ScenarioKey {
                kind: Kind::Q12,
                seed: params.seed,
                scale: params.meta.scale,
                epoch: params.epoch,
            },
        };
        let result = self
            .cache
            .get_or_compute(key, self.config.compute_timeout, || {
                let (engine, _guard) = self.compute_engine(params.engine);
                let _span = caf_obs::span_with(|| format!("serve.compute.{:?}", key.kind));
                match key.kind {
                    Kind::Q12 => Fixture::build_tuned_at(
                        key.seed,
                        key.scale,
                        &UsState::study_states(),
                        engine,
                        &deltas,
                    )
                    .map(|fixture| Bundle::Q12(Box::new(Q12View::from_fixture(fixture))))
                    .map_err(|error| error.to_string()),
                    Kind::Q3 => Ok(Bundle::Q3(Box::new(
                        Fixture::build_q3_tuned(key.seed, key.scale, engine).1,
                    ))),
                }
            });
        let bundle = match result {
            Ok((bundle, outcome)) => {
                caf_obs::trace::annotate(
                    "cache",
                    match outcome {
                        CacheOutcome::Hit => "hit",
                        CacheOutcome::Miss => "miss",
                        CacheOutcome::Joined => "join",
                    },
                );
                bundle
            }
            Err(CacheError::JoinTimeout) => {
                caf_obs::trace::annotate("cache", "join_timeout");
                return Response::error(503, "scenario computation still in flight; retry shortly")
                    .with_header("Retry-After", "1".to_string());
            }
            Err(CacheError::Failed(message)) => {
                return Response::error(500, &format!("scenario computation failed: {message}"));
            }
        };

        let bytes = {
            let _span = caf_obs::span("render");
            let body = match (&*bundle, route) {
                (Bundle::Q12(view), "serviceability") => {
                    artifact::serviceability(&view.serviceability, params.isp)
                }
                (Bundle::Q12(view), "compliance") => {
                    artifact::compliance(&view.compliance, &view.dataset, params.isp)
                }
                (Bundle::Q12(view), "table2") => artifact::table2(&view.dataset),
                (Bundle::Q3(q3), "q3") => artifact::q3(q3),
                _ => return Response::error(500, "bundle/route mismatch"),
            };
            artifact::to_canonical_bytes(&params.meta.at_epoch(params.epoch).wrap(body))
        };
        let etag = format!("\"{:016x}\"", fnv1a(bytes.as_bytes()));
        if client_has(request, &etag) {
            return Response::not_modified().with_header("ETag", etag);
        }
        Response::json(bytes.into_bytes()).with_header("ETag", etag)
    }
}

/// Whether the request's `If-None-Match` header matches `etag` (exact
/// entry in a comma-separated list, or `*`).
fn client_has(request: &Request, etag: &str) -> bool {
    request.header("if-none-match").is_some_and(|value| {
        value
            .split(',')
            .any(|candidate| candidate.trim() == etag || candidate.trim() == "*")
    })
}

/// 64-bit FNV-1a over the canonical body; deterministic across runs,
/// so clients can revalidate artifacts cheaply.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Parsed and validated `/v1/*` query parameters.
struct ScenarioParams {
    seed: u64,
    meta: ScenarioMeta,
    engine: EngineConfig,
    isp: Option<Isp>,
    epoch: u64,
}

impl ScenarioParams {
    fn from_request(app: &App, request: &Request) -> Result<ScenarioParams, Box<Response>> {
        let seed = parse_or(request, "seed", app.config.default_seed)?;
        // The floor is never below 1: a zero scale would divide by zero
        // in `SynthConfig::scaled` and panic mid-computation.
        let floor = app.config.min_scale.max(1);
        let scale = parse_or(request, "scale", app.config.default_scale)?;
        check_scale_floor("scale", scale, floor)?;
        let mut meta = ScenarioMeta::new(seed, scale);
        meta.q3_scale = parse_or(request, "q3_scale", meta.q3_scale)?;
        check_scale_floor("q3_scale", meta.q3_scale, floor)?;
        let epoch = parse_or(request, "epoch", 0u64)?;
        let engine = match request.param("workers") {
            None => app.config.engine,
            Some(raw) => {
                let workers: usize = raw.parse().map_err(|_| {
                    Box::new(Response::error(400, &format!("invalid workers={raw:?}")))
                })?;
                if workers == 0 || workers > 512 {
                    return Err(Box::new(Response::error(
                        400,
                        "workers must be between 1 and 512",
                    )));
                }
                EngineConfig::with_workers(workers)
            }
        };
        let isp = match request.param("isp") {
            None => None,
            Some(raw) => Some(parse_isp(raw).ok_or_else(|| {
                let known: Vec<&str> = Isp::all().iter().map(|isp| isp.name()).collect();
                Box::new(Response::error(
                    400,
                    &format!("unknown isp {raw:?}; known: {}", known.join(", ")),
                ))
            })?),
        };
        Ok(ScenarioParams {
            seed,
            meta,
            engine,
            isp,
            epoch,
        })
    }
}

/// Rejects scales below the server's floor (which is itself at least 1,
/// so a divide-by-zero scale can never reach the synth pipeline).
fn check_scale_floor(name: &str, value: u32, floor: u32) -> Result<(), Box<Response>> {
    if value < floor {
        return Err(Box::new(Response::error(
            400,
            &format!("{name}={value} is below the server's minimum of {floor}"),
        )));
    }
    Ok(())
}

fn parse_or<T: std::str::FromStr>(
    request: &Request,
    name: &str,
    default: T,
) -> Result<T, Box<Response>> {
    match request.param(name) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| {
            Box::new(Response::error(
                400,
                &format!("invalid {name}={raw:?}: expected a non-negative integer"),
            ))
        }),
    }
}

/// Case-insensitive match against the ISP registry names.
fn parse_isp(raw: &str) -> Option<Isp> {
    Isp::all()
        .into_iter()
        .find(|isp| isp.name().eq_ignore_ascii_case(raw))
}

impl Handler for App {
    fn handle(&self, request: &Request) -> Response {
        // Span names are interned forever by the caf-obs registry, so
        // only recognized routes get their own label; every other path
        // (arbitrary client input) shares one fixed name to keep the
        // registry and the /metrics body bounded.
        let (label, short) = route_entry(request.path.as_str());
        caf_obs::trace::annotate("route", short);
        let started = Instant::now();
        let response = self.dispatch(label, request);
        if let Some(slo) = self.slos.get(label) {
            slo.observe(started.elapsed().as_micros() as u64, response.status >= 500);
        }
        response
    }
}

impl App {
    fn dispatch(&self, label: &'static str, request: &Request) -> Response {
        let _span = caf_obs::span(label);
        // The challenge ingest is the only POST endpoint; everything
        // else is read-only.
        if request.path == "/v1/challenge" {
            return if request.method == "POST" {
                self.challenge_response(request)
            } else {
                Response::error(405, "/v1/challenge accepts POST only")
            };
        }
        if request.method != "GET" {
            return Response::error(
                405,
                &format!(
                    "method {} not supported on {}",
                    request.method, request.path
                ),
            );
        }
        match request.path.as_str() {
            "/healthz" => self.healthz_response(),
            "/metrics" => self.metrics_response(request),
            "/quitquitquit" => {
                let mut response = Response::text("shutting down\n");
                response.shutdown = true;
                response
            }
            "/v1/debug/traces" => self.debug_traces_response(request),
            path => match path.strip_prefix("/v1/") {
                Some(route @ ("serviceability" | "compliance" | "table2" | "q3")) => {
                    self.scenario_response(route, request)
                }
                _ => Response::error(404, &format!("no such endpoint: {path}")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_synth::challenge::delta_to_json;
    use caf_synth::Correction;

    fn request(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            query: Vec::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn tiny_app() -> App {
        App::new(AppConfig {
            default_scale: 2000,
            engine: EngineConfig::serial(),
            ..AppConfig::default()
        })
    }

    #[test]
    fn rejects_bad_parameters_with_400() {
        let app = tiny_app();
        for (path, query) in [
            ("/v1/table2", vec![("seed", "not-a-number")]),
            ("/v1/table2", vec![("scale", "-3")]),
            ("/v1/table2", vec![("scale", "0")]),
            ("/v1/q3", vec![("q3_scale", "0")]), // would divide by zero
            ("/v1/table2", vec![("workers", "0")]),
            ("/v1/table2", vec![("isp", "Nonexistent ISP")]),
            ("/v1/table2", vec![("isp", "AT&T")]), // no filter on table2
            ("/v1/q3", vec![("isp", "AT&T")]),
            ("/v1/table2", vec![("epoch", "x")]),
            ("/v1/q3", vec![("epoch", "1")]), // q3 has no challenge stream
            // Challenge epochs exist only for the default scenario.
            ("/v1/table2", vec![("epoch", "1"), ("seed", "9")]),
        ] {
            let response = app.handle(&request(path, &query));
            assert_eq!(response.status, 400, "{path} {query:?}");
        }
        let response = app.handle(&request("/v1/nope", &[]));
        assert_eq!(response.status, 404);
        // An unreached epoch of the default scenario is a 404, not 400.
        let response = app.handle(&request("/v1/table2", &[("epoch", "3")]));
        assert_eq!(response.status, 404);
        assert_eq!(app.cache_stats().misses, 0, "no computation was started");
    }

    #[test]
    fn scale_floor_is_enforced() {
        let app = App::new(AppConfig {
            min_scale: 100,
            ..AppConfig::default()
        });
        let response = app.handle(&request("/v1/table2", &[("scale", "99")]));
        assert_eq!(response.status, 400);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("minimum of 100"), "{body}");
        // q3_scale is a world scale too; the same floor applies.
        let response = app.handle(&request("/v1/q3", &[("q3_scale", "99")]));
        assert_eq!(response.status, 400);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("q3_scale=99"), "{body}");
        assert_eq!(app.cache_stats().misses, 0, "no computation was started");
    }

    #[test]
    fn health_and_shutdown_routes() {
        let app = tiny_app();
        let health = app.handle(&request("/healthz", &[]));
        assert_eq!((health.status, health.shutdown), (200, false));
        let body = String::from_utf8(health.body).unwrap();
        let parsed = caf_obs::json::parse(body.trim_end()).unwrap();
        assert_eq!(
            parsed.get("status").and_then(|j| j.as_str()),
            Some("ok"),
            "{body}"
        );
        assert_eq!(parsed.get("epoch").and_then(|j| j.as_u64()), Some(0));
        assert_eq!(
            parsed
                .get("cache")
                .and_then(|c| c.get("capacity"))
                .and_then(|j| j.as_u64()),
            Some(AppConfig::default().cache_capacity as u64)
        );
        assert_eq!(
            parsed
                .get("cache")
                .and_then(|c| c.get("entries"))
                .and_then(|j| j.as_u64()),
            Some(0)
        );
        assert!(
            parsed.get("uptime_s").and_then(|j| j.as_u64()).is_some(),
            "{body}"
        );
        // Canonical JSON: object keys appear in sorted order.
        let key_order: Vec<usize> = ["\"cache\"", "\"epoch\"", "\"status\"", "\"uptime_s\""]
            .iter()
            .map(|key| body.find(key).expect(key))
            .collect();
        assert!(key_order.windows(2).all(|w| w[0] < w[1]), "{body}");
        let quit = app.handle(&request("/quitquitquit", &[]));
        assert_eq!((quit.status, quit.shutdown), (200, true));
        // Read-only routes reject POST; the ingest route rejects GET.
        let mut misdirected = request("/healthz", &[]);
        misdirected.method = "POST".to_string();
        assert_eq!(app.handle(&misdirected).status, 405);
        assert_eq!(app.handle(&request("/v1/challenge", &[])).status, 405);
    }

    #[test]
    fn isp_names_parse_case_insensitively() {
        assert_eq!(parse_isp("AT&T"), Some(Isp::Att));
        assert_eq!(parse_isp("at&t"), Some(Isp::Att));
        assert_eq!(parse_isp("CenturyLink"), Some(Isp::CenturyLink));
        assert_eq!(parse_isp("Comcast"), None);
    }

    /// The full challenge lifecycle over the handler: ingest advances
    /// the epoch, the published view is served consistently at both
    /// epochs, and the bytes equal a from-scratch rebuild at the same
    /// epoch (the incremental-recompute determinism contract, crossed
    /// with the HTTP layer).
    #[test]
    fn challenge_ingest_serves_consistent_epoch_views() {
        let app = tiny_app();
        let seed = app.config.default_seed;
        let scale = app.config.default_scale;

        // Find a valid (state, cbg, isp) address in the default world.
        let probe = World::generate_states(SynthConfig { seed, scale }, &UsState::study_states());
        let state = probe.states[0].state;
        let isp = probe.states[0].geography.cbgs[0].isp;
        let delta = ChallengeDelta {
            state,
            cbg: 0,
            isp,
            correction: Correction::Availability { rate_ppm: 50_000 },
        };

        // Pre-challenge view first, so epoch 0 is resident.
        let before = app.handle(&request("/v1/table2", &[]));
        assert_eq!(before.status, 200);

        let accepted = app.handle(&post("/v1/challenge", &(delta_to_json(&delta) + "\n")));
        assert_eq!(
            accepted.status,
            200,
            "{}",
            String::from_utf8_lossy(&accepted.body)
        );
        let reply =
            caf_obs::json::parse(String::from_utf8(accepted.body).unwrap().trim_end()).unwrap();
        assert_eq!(reply.get("epoch").and_then(|j| j.as_u64()), Some(1));
        assert_eq!(reply.get("applied").and_then(|j| j.as_u64()), Some(1));
        assert_eq!(app.live_epoch(), 1);

        // The ingest published epoch 1 into the cache: serving it is a
        // hit, and the epoch-0 view is still resident and unchanged.
        let inserts_before = app.cache_stats().inserts;
        assert_eq!(inserts_before, 1);
        let hits_before = app.cache_stats().hits;
        let after = app.handle(&request("/v1/table2", &[("epoch", "1")]));
        assert_eq!(after.status, 200);
        assert_eq!(app.cache_stats().hits, hits_before + 1);
        let again = app.handle(&request("/v1/table2", &[]));
        assert_eq!(again.body, before.body, "epoch 0 view must be unperturbed");

        // Envelope carries the epoch.
        let parsed =
            caf_obs::json::parse(std::str::from_utf8(&after.body).unwrap().trim_end()).unwrap();
        let envelope_epoch = parsed
            .get("scenario")
            .and_then(|s| s.get("epoch"))
            .and_then(|e| e.as_u64());
        assert_eq!(envelope_epoch, Some(1));

        // Byte-identity against a from-scratch rebuild at epoch 1.
        let fixture = Fixture::build_tuned_at(
            seed,
            scale,
            &UsState::study_states(),
            EngineConfig::serial(),
            std::slice::from_ref(&delta),
        )
        .unwrap();
        let expected = artifact::to_canonical_bytes(
            &ScenarioMeta::new(seed, scale)
                .at_epoch(1)
                .wrap(artifact::table2(&fixture.dataset)),
        );
        assert_eq!(after.body, expected.into_bytes());

        // Rejected batches are atomic: the epoch does not move.
        let bogus = app.handle(&post("/v1/challenge", "{\"not\": \"a delta\"}\n"));
        assert_eq!(bogus.status, 400);
        let out_of_range = ChallengeDelta {
            cbg: usize::MAX,
            ..delta
        };
        let rejected = app.handle(&post(
            "/v1/challenge",
            &(delta_to_json(&out_of_range) + "\n"),
        ));
        assert_eq!(rejected.status, 400);
        assert_eq!(app.live_epoch(), 1);
    }

    #[test]
    fn if_none_match_revalidation_returns_304() {
        let app = tiny_app();
        let first = app.handle(&request("/v1/table2", &[]));
        assert_eq!(first.status, 200);
        let etag = first
            .headers
            .iter()
            .find(|(name, _)| name == "ETag")
            .map(|(_, value)| value.clone())
            .expect("artifact responses carry an ETag");

        let mut revalidate = request("/v1/table2", &[]);
        revalidate
            .headers
            .push(("if-none-match".to_string(), etag.clone()));
        let cached = app.handle(&revalidate);
        assert_eq!(cached.status, 304);
        assert!(cached.body.is_empty(), "304 carries no body");
        assert_eq!(
            cached.headers.iter().find(|(n, _)| n == "ETag"),
            Some(&("ETag".to_string(), etag.clone()))
        );

        // A stale validator gets the full representation again.
        let mut stale = request("/v1/table2", &[]);
        stale
            .headers
            .push(("if-none-match".to_string(), "\"deadbeef\"".to_string()));
        assert_eq!(app.handle(&stale).status, 200);

        // Wildcard and list forms match too.
        let mut wildcard = request("/v1/table2", &[]);
        wildcard
            .headers
            .push(("if-none-match".to_string(), format!("\"x\", {etag}")));
        assert_eq!(app.handle(&wildcard).status, 304);
    }
}
