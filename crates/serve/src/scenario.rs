//! The application handler: routes HTTP requests to cached scenario
//! computations and renders canonical artifact bytes.
//!
//! The cache key is the *canonical scenario identity* — the parameters
//! that change the result. Compute-side knobs (`workers=`) are
//! deliberately excluded: asking for the same scenario at a different
//! worker count must hit the same entry, and — by the engine's
//! determinism contract — would have produced byte-identical artifacts
//! anyway. That contract is what lets `/v1/*` responses be compared
//! byte-for-byte against `repro --artifacts` goldens in CI.
//!
//! ## Challenges and epochs
//!
//! The server is not just a batch cache: `POST /v1/challenge` ingests a
//! JSONL stream of [`ChallengeDelta`]s against the server's *default*
//! `(seed, scale)` scenario, advancing a live epoch-versioned world.
//! Each accepted batch is applied via [`World::apply_deltas`] (atomic —
//! an invalid delta rejects the whole batch with `400`) and recomputed
//! incrementally via [`IncrementalAudit::refresh`], which re-audits only
//! the invalidated (state, CBG, ISP) cells. The refreshed view is
//! published into the scenario cache under its epoch, so reads are
//! consistent without any cache flush:
//!
//! * `GET /v1/{serviceability,compliance,table2}?epoch=E` serves the
//!   world after the first `E` deltas (`epoch` defaults to `0`, the
//!   pristine pre-challenge world — existing clients and the CI goldens
//!   are unaffected).
//! * A historical epoch that has fallen out of the cache is rebuilt
//!   from scratch from the delta log prefix; by the determinism
//!   contract the bytes equal what the incremental path produced.
//! * `/v1/q3` takes no `epoch`: challenges correct the Q1/Q2 CAF-Map
//!   world, not the Q3 monopoly comparison's dedicated world.
//!
//! Conditional GETs: every `/v1/*` artifact response carries a
//! deterministic FNV-1a `ETag`; a request presenting it back via
//! `If-None-Match` is answered `304 Not Modified` with no body.
//!
//! ## Snapshots and the disk tier
//!
//! With [`AppConfig::snapshot_dir`] set, the app persists its state as
//! `caf-snap` containers (see [`crate::snapshot`]): `POST /v1/snapshot`
//! writes one synchronously, every accepted challenge batch writes one
//! on a detached background thread, and startup restores the newest
//! compatible snapshot. The restore is split for latency: warm cache
//! views are decoded synchronously (milliseconds — the next `GET` is
//! served from them without rebuilding the world), while the live
//! world + challenge log decode on a background thread behind a
//! condvar gate that epoch-dependent requests wait on. The same
//! directory hosts the disk LRU tier (`tier/`): cache evictions spill
//! there and are promoted back on demand, byte-identically.

use crate::cache::{CacheError, CacheOutcome, ScenarioCache, SpillHook};
use crate::http::{Request, Response};
use crate::server::Handler;
use crate::snapshot::{self, SnapshotStatus, SECTION_LOG, SECTION_VIEWS, SECTION_WORLD};
use crate::tier::DiskTier;
use caf_bench::{campaign_config, Fixture};
use caf_core::{
    artifact, Audit, AuditConfig, AuditDataset, AuditIndex, ComplianceAnalysis, EngineConfig,
    IncrementalAudit, ProgramRules, Q3Analysis, SamplingRule, ScenarioMeta, ServiceabilityAnalysis,
    SubsidyRule,
};
use caf_geo::UsState;
use caf_obs::json::Json;
use caf_obs::{FlightRecorder, Slo};
use caf_snap::{write_atomic, Reader, Snap, SnapError, Snapshot, SnapshotBuilder, Writer};
use caf_sweep::SweepSpec;
use caf_synth::challenge::deltas_from_jsonl;
use caf_synth::{ChallengeDelta, Isp, SynthConfig, World};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Which pipeline a cache entry materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Kind {
    /// The Q1/Q2 fixture: world + campaign + serviceability/compliance.
    Q12,
    /// The Q3 monopoly/competitive analysis (its own world build).
    Q3,
    /// One policy-sweep grid cell (its own single-state world; the
    /// key's `seed` field carries the cell's content hash).
    Sweep,
}

/// Canonical scenario identity: result-changing parameters only. The
/// challenge epoch is identity — the same `(seed, scale)` before and
/// after a correction batch are different results — which is exactly
/// what lets pre- and post-challenge views coexist in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ScenarioKey {
    kind: Kind,
    seed: u64,
    scale: u32,
    epoch: u64,
}

/// The slice of a Q1/Q2 fixture the artifact routes actually read.
/// (The world itself stays out of the cache; the live challenge
/// scenario owns the only resident world.)
struct Q12View {
    dataset: AuditDataset,
    index: AuditIndex,
    serviceability: ServiceabilityAnalysis,
    compliance: ComplianceAnalysis,
}

impl Q12View {
    fn from_fixture(fixture: Fixture) -> Q12View {
        Q12View {
            dataset: fixture.dataset,
            index: fixture.index,
            serviceability: fixture.serviceability,
            compliance: fixture.compliance,
        }
    }

    /// Rebuilds a view from its serialized substrate. Only the dataset
    /// and the columnar index are persisted; the derived analyses are
    /// cheap linear passes over the index, so recomputing them on load
    /// is faster than decoding them would be — and sidesteps
    /// serializing their internals entirely.
    fn from_parts(dataset: AuditDataset, index: AuditIndex) -> Result<Q12View, SnapError> {
        if index.len() != dataset.rows.len() {
            return Err(SnapError::Malformed(format!(
                "index covers {} rows but dataset has {}",
                index.len(),
                dataset.rows.len()
            )));
        }
        Ok(Q12View {
            serviceability: ServiceabilityAnalysis::from_index(&index),
            compliance: ComplianceAnalysis::from_index(&dataset, &index),
            dataset,
            index,
        })
    }
}

/// A materialized scenario bundle held by the cache.
enum Bundle {
    Q12(Box<Q12View>),
    Q3(Box<Q3Analysis>),
    /// A sweep cell's canonical artifact-body bytes. Cells are stored
    /// rendered: the bytes are the cache/tier/snapshot payload *and*
    /// the response fragment, so a disk round-trip is trivially
    /// byte-identical.
    Sweep(Vec<u8>),
}

impl Bundle {
    /// Serializes the bundle for the disk tier / snapshot `VIEWS`
    /// section. Q1/Q2 persists `(dataset, index)`; Q3 persists the
    /// analysis itself (its artifact reads every field).
    fn encode_payload(&self, w: &mut Writer) {
        match self {
            Bundle::Q12(view) => {
                w.put_u8(0);
                // Rows and records dominate decode time, so they are
                // written as independent byte chunks that restore can
                // decode on parallel threads. The chunk split is a
                // fixed constant — never derived from the runtime core
                // count — so the encoded bytes stay identical across
                // hosts and worker configurations.
                put_chunked(w, &view.dataset.rows);
                put_chunked(w, &view.dataset.records);
                w.put_seq(&view.dataset.coverage);
                w.put(&view.index);
            }
            Bundle::Q3(q3) => {
                w.put_u8(1);
                w.put(&**q3);
            }
            Bundle::Sweep(bytes) => {
                w.put_u8(2);
                w.put_bytes(bytes);
            }
        }
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<Bundle, SnapError> {
        Ok(match r.u8()? {
            0 => {
                let rows = get_chunked(r)?;
                let records = get_chunked(r)?;
                let coverage = r.get_seq()?;
                let dataset = AuditDataset {
                    rows,
                    records,
                    coverage,
                };
                let index: AuditIndex = r.get()?;
                Bundle::Q12(Box::new(Q12View::from_parts(dataset, index)?))
            }
            1 => Bundle::Q3(Box::new(r.get()?)),
            2 => Bundle::Sweep(r.bytes()?.to_vec()),
            other => {
                return Err(SnapError::Malformed(format!(
                    "bundle: unknown kind tag {other}"
                )))
            }
        })
    }
}

/// How many byte chunks [`put_chunked`] splits a sequence into. Fixed
/// so encoded bytes are host-independent; 8 keeps per-chunk decode work
/// worth a thread at serving scales without oversplitting tiny sets.
const DECODE_CHUNKS: usize = 8;

/// Writes `items` as a chunk-count-prefixed list of independently
/// decodable byte blobs (each a standard `put_seq` encoding of its
/// slice), enabling [`get_chunked`] to fan decode out across threads.
fn put_chunked<T: Snap>(w: &mut Writer, items: &[T]) {
    let chunk_len = items.len().div_ceil(DECODE_CHUNKS).max(1);
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    w.put_u32(chunks.len() as u32);
    for chunk in &chunks {
        let mut inner = Writer::new();
        inner.put_seq(chunk);
        w.put_bytes(&inner.into_bytes());
    }
}

/// Decodes a [`put_chunked`] sequence across a few scoped threads.
/// Restore latency is the point of the snapshot subsystem, and chunk
/// decode is its hot path. Thread spawns are ~50µs apiece — comparable
/// to decoding a whole chunk — so chunks are striped over at most four
/// workers (the calling thread takes the first stripe) instead of one
/// thread per chunk. The workers borrow the payload; no extra copy.
fn get_chunked<T: Snap + Send>(r: &mut Reader<'_>) -> Result<Vec<T>, SnapError> {
    let count = r.u32()? as usize;
    if count > 64 {
        return Err(SnapError::Malformed(format!(
            "chunked sequence: implausible chunk count {count}"
        )));
    }
    let mut blobs = Vec::with_capacity(count);
    for _ in 0..count {
        blobs.push(r.bytes()?);
    }
    let decode_blob = |blob: &[u8]| -> Result<Vec<T>, SnapError> {
        let mut r = Reader::new(blob);
        let items: Vec<T> = r.get_seq()?;
        r.finish()?;
        Ok(items)
    };
    // Worker count is a runtime choice (it cannot affect the decoded
    // value, only the wall clock), so sizing it to the host is safe —
    // and on a single-core host spawning anything is pure overhead.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = blobs.len().clamp(1, cores.min(4));
    let mut results: Vec<Result<Vec<T>, SnapError>> =
        blobs.iter().map(|_| Ok(Vec::new())).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..workers)
            .map(|worker| {
                let stripe: Vec<(usize, &[u8])> = blobs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % workers == worker)
                    .map(|(i, blob)| (i, *blob))
                    .collect();
                scope.spawn(move || {
                    stripe
                        .into_iter()
                        .map(|(i, blob)| (i, decode_blob(blob)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for (i, blob) in blobs.iter().enumerate() {
            if i % workers == 0 {
                results[i] = decode_blob(blob);
            }
        }
        for handle in handles {
            for (i, result) in handle.join().expect("chunk decode thread") {
                results[i] = result;
            }
        }
    });
    let mut items = Vec::new();
    for result in results {
        items.extend(result?);
    }
    Ok(items)
}

/// The live, epoch-versioned default scenario: the world of record, the
/// incremental audit tracking it cell-by-cell, and the full delta log
/// (the source of truth for rebuilding any historical epoch).
struct Live {
    world: World,
    /// Built on first use: the fresh-boot path materializes it with the
    /// world, but a snapshot restore leaves it `None` (building it is a
    /// full audit — exactly the cost snapshots exist to avoid) and the
    /// next challenge batch pays for it lazily.
    inc: Option<IncrementalAudit>,
    log: Vec<ChallengeDelta>,
}

/// Blocks epoch-dependent requests while the background thread is still
/// decoding the snapshot's world + challenge log. The gate starts open,
/// closes for the duration of a restore, and reopens whether the decode
/// succeeded or not (failure just means `live` stays empty — a 404 for
/// historical epochs, exactly as on a cold boot).
struct RestoreGate {
    restoring: Mutex<bool>,
    done: Condvar,
}

impl RestoreGate {
    fn new() -> RestoreGate {
        RestoreGate {
            restoring: Mutex::new(false),
            done: Condvar::new(),
        }
    }

    fn begin(&self) {
        *self.restoring.lock().unwrap() = true;
    }

    fn finish(&self) {
        *self.restoring.lock().unwrap() = false;
        self.done.notify_all();
    }

    fn wait(&self) {
        let mut restoring = self.restoring.lock().unwrap();
        while *restoring {
            restoring = self.done.wait(restoring).unwrap();
        }
    }
}

/// Bridges cache evictions into the [`DiskTier`]: spilled bundles are
/// serialized with [`Bundle::encode_payload`] under a key that carries
/// the full scenario identity, and loads re-validate that identity
/// against the tier file's header before decoding.
struct TierSpill {
    tier: Arc<DiskTier>,
}

/// The tier file key for a scenario: kind, seed, scale, epoch — the
/// same identity the cache keys on, so a promoted entry is exactly the
/// entry that was evicted.
fn tier_key(key: &ScenarioKey) -> String {
    let kind = match key.kind {
        Kind::Q12 => "q12",
        Kind::Q3 => "q3",
        Kind::Sweep => "sweep",
    };
    format!("{kind}-{:016x}-{}-{}", key.seed, key.scale, key.epoch)
}

impl SpillHook<ScenarioKey, Bundle> for TierSpill {
    fn spill(&self, key: &ScenarioKey, bundle: &Bundle) {
        let _span = caf_obs::span("snap.tier.spill");
        let mut payload = Writer::new();
        bundle.encode_payload(&mut payload);
        self.tier.put(
            &tier_key(key),
            key.seed,
            key.scale,
            key.epoch,
            &payload.into_bytes(),
        );
    }

    fn load(&self, key: &ScenarioKey) -> Option<Bundle> {
        let _span = caf_obs::span("snap.tier.load");
        let payload = self
            .tier
            .load(&tier_key(key), key.seed, key.scale, key.epoch)?;
        let mut r = Reader::new(&payload);
        let bundle = Bundle::decode_payload(&mut r).ok()?;
        r.finish().ok()?;
        Some(bundle)
    }
}

/// Tuning for [`App`].
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Seed used when a request omits `seed=`.
    pub default_seed: u64,
    /// Downscale factor used when a request omits `scale=`.
    pub default_scale: u32,
    /// Base engine budget for scenario computation; concurrent
    /// computations split it via [`EngineConfig::share`].
    pub engine: EngineConfig,
    /// Ready entries the scenario cache retains (LRU beyond this).
    pub cache_capacity: usize,
    /// How long a request waits on another request's in-flight
    /// computation before giving up with `503`.
    pub compute_timeout: Duration,
    /// Smallest accepted `scale=` (a low downscale factor means a huge
    /// world; this bounds per-request memory/CPU).
    pub min_scale: u32,
    /// Recent traces the flight recorder retains (and, separately, the
    /// slow/error keep-list bound). `0` disables trace capture;
    /// deterministic `X-Request-Id`s are minted either way.
    pub trace_capacity: usize,
    /// Requests slower than this are always kept by the flight
    /// recorder; doubles as each route's SLO latency target.
    pub slow_ms: u64,
    /// Directory for world snapshots and the disk tier. `None` (the
    /// default) disables both: no files are written, evictions are
    /// discarded, and every boot is a cold build.
    pub snapshot_dir: Option<PathBuf>,
    /// Spilled entries the disk tier retains (LRU deletion beyond
    /// this). Only meaningful with `snapshot_dir` set.
    pub disk_tier_capacity: usize,
}

impl Default for AppConfig {
    fn default() -> AppConfig {
        AppConfig {
            default_seed: 0xCAF_2024,
            default_scale: 150,
            engine: EngineConfig::auto(),
            cache_capacity: 4,
            compute_timeout: Duration::from_secs(120),
            min_scale: 1,
            trace_capacity: 256,
            slow_ms: 500,
            snapshot_dir: None,
            disk_tier_capacity: 16,
        }
    }
}

/// The fixed route table: request path, span label, and the short route
/// name used for trace annotations and `caf.slo.<route>.*` counters.
/// Only recognized paths get their own label — span names and SLO
/// counters are interned forever, so arbitrary client paths (the empty
/// sentinel path never matches a request) must all share `not_found`.
const ROUTES: &[(&str, &str, &str)] = &[
    ("/healthz", "serve.route.healthz", "healthz"),
    ("/metrics", "serve.route.metrics", "metrics"),
    ("/quitquitquit", "serve.route.quitquitquit", "quitquitquit"),
    (
        "/v1/serviceability",
        "serve.route.v1.serviceability",
        "v1.serviceability",
    ),
    (
        "/v1/compliance",
        "serve.route.v1.compliance",
        "v1.compliance",
    ),
    ("/v1/table2", "serve.route.v1.table2", "v1.table2"),
    ("/v1/q3", "serve.route.v1.q3", "v1.q3"),
    ("/v1/sweep", "serve.route.v1.sweep", "v1.sweep"),
    ("/v1/challenge", "serve.route.v1.challenge", "v1.challenge"),
    ("/v1/snapshot", "serve.route.v1.snapshot", "v1.snapshot"),
    (
        "/v1/debug/traces",
        "serve.route.debug.traces",
        "debug.traces",
    ),
    ("", "serve.route.not_found", "not_found"),
];

/// Resolves a request path to its `(span label, short name)` pair.
fn route_entry(path: &str) -> (&'static str, &'static str) {
    ROUTES
        .iter()
        .find(|&&(route_path, _, _)| !route_path.is_empty() && route_path == path)
        .map_or(
            ("serve.route.not_found", "not_found"),
            |&(_, label, short)| (label, short),
        )
}

/// The serving application: endpoint routing + scenario cache + the
/// live challenge scenario.
pub struct App {
    config: AppConfig,
    cache: ScenarioCache<ScenarioKey, Bundle>,
    tier: Option<Arc<DiskTier>>,
    active_computes: Arc<AtomicUsize>,
    live: Arc<Mutex<Option<Live>>>,
    restore: Arc<RestoreGate>,
    snap_status: SnapshotStatus,
    /// At most one background snapshot write at a time; a batch that
    /// lands while one is in flight skips its write (the next batch
    /// will capture both).
    snapshot_inflight: Arc<AtomicBool>,
    /// Serializes all snapshot writes (background and `POST
    /// /v1/snapshot`): two writers targeting the same epoch would race
    /// on the same temp file.
    snapshot_write_lock: Arc<Mutex<()>>,
    recorder: Arc<FlightRecorder>,
    /// One SLO per fixed route, keyed by span label.
    slos: BTreeMap<&'static str, Slo>,
    started: Instant,
}

/// RAII share of the compute budget; see [`App::compute_engine`].
struct ActiveGuard(Arc<AtomicUsize>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl App {
    /// Creates the application with the given tuning. With
    /// [`AppConfig::snapshot_dir`] set this also opens the disk tier
    /// and restores the newest compatible snapshot: cache views are
    /// installed synchronously (they are what makes the first request
    /// fast), while the live world + challenge log decode on a
    /// background thread behind [`RestoreGate`]. Any problem with the
    /// snapshot — missing, truncated, corrupt, wrong version, wrong
    /// scenario — degrades to a cold build, never to an error.
    pub fn new(config: AppConfig) -> App {
        let tier = config.snapshot_dir.as_ref().and_then(|dir| {
            match DiskTier::open(&dir.join("tier"), config.disk_tier_capacity) {
                Ok(tier) => Some(Arc::new(tier)),
                Err(error) => {
                    eprintln!("caf-serve: disk tier disabled ({error})");
                    None
                }
            }
        });
        let cache = match &tier {
            Some(tier) => ScenarioCache::with_spill(
                config.cache_capacity,
                Arc::new(TierSpill {
                    tier: Arc::clone(tier),
                }) as Arc<dyn SpillHook<ScenarioKey, Bundle>>,
            ),
            None => ScenarioCache::new(config.cache_capacity),
        };
        let live: Arc<Mutex<Option<Live>>> = Arc::new(Mutex::new(None));
        let restore = Arc::new(RestoreGate::new());
        let snap_status = match &config.snapshot_dir {
            Some(dir) => restore_snapshot(dir, &config, &cache, &live, &restore),
            None => SnapshotStatus::default(),
        };

        let slow_us = config.slow_ms.saturating_mul(1_000);
        let recorder = Arc::new(FlightRecorder::new(config.trace_capacity, slow_us));
        // Every route gets the same latency target (the slow-request
        // threshold) and a 10% error budget; `metrics_check
        // --max-slo-burn` turns the resulting burn fraction into a gate.
        let slos = ROUTES
            .iter()
            .map(|&(_, label, short)| (label, Slo::new(short, slow_us, 100_000)))
            .collect();
        App {
            config,
            cache,
            tier,
            active_computes: Arc::new(AtomicUsize::new(0)),
            live,
            restore,
            snap_status,
            snapshot_inflight: Arc::new(AtomicBool::new(false)),
            snapshot_write_lock: Arc::new(Mutex::new(())),
            recorder,
            slos,
            started: Instant::now(),
        }
    }

    /// How this process started: cold, or restored from which snapshot.
    pub fn snapshot_status(&self) -> &SnapshotStatus {
        &self.snap_status
    }

    /// The flight recorder `/v1/debug/traces` reads; hand a clone to
    /// [`crate::ServeConfig::recorder`] so the accept path files traces
    /// into it.
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.recorder)
    }

    /// Exact cache counters (used by `serve_bench` for the hit ratio).
    pub fn cache_stats(&self) -> crate::cache::StatsSnapshot {
        self.cache.stats()
    }

    /// The live challenge epoch (0 until the first accepted batch).
    /// While a snapshot's world is still decoding in the background,
    /// this reports the snapshot's epoch — the epoch the server is
    /// already answering cached reads at.
    pub fn live_epoch(&self) -> u64 {
        self.live
            .lock()
            .unwrap()
            .as_ref()
            .map_or(self.snap_status.epoch, |live| live.world.epoch)
    }

    /// `GET /healthz`: liveness plus staleness — the live challenge
    /// epoch, process uptime, cache and disk-tier occupancy, and how
    /// this process started (cold vs snapshot restore), as canonical
    /// (sorted-key) JSON.
    fn healthz_response(&self) -> Response {
        let tier = self.tier.as_ref().map(|tier| tier.stats());
        let snapshot_age_s = self.snap_status.mtime.and_then(|mtime| {
            SystemTime::now()
                .duration_since(mtime)
                .ok()
                .map(|age| age.as_secs())
        });
        let mut body = Json::Obj(vec![
            (
                "cache".to_string(),
                Json::Obj(vec![
                    (
                        "capacity".to_string(),
                        Json::UInt(self.cache.capacity() as u64),
                    ),
                    ("entries".to_string(), Json::UInt(self.cache.len() as u64)),
                ]),
            ),
            (
                "disk_tier".to_string(),
                Json::Obj(vec![
                    (
                        "bytes".to_string(),
                        Json::UInt(tier.map_or(0, |stats| stats.bytes)),
                    ),
                    (
                        "capacity".to_string(),
                        Json::UInt(tier.map_or(0, |stats| stats.capacity as u64)),
                    ),
                    ("enabled".to_string(), Json::Bool(tier.is_some())),
                    (
                        "entries".to_string(),
                        Json::UInt(tier.map_or(0, |stats| stats.entries as u64)),
                    ),
                ]),
            ),
            ("epoch".to_string(), Json::UInt(self.live_epoch())),
            (
                "snapshot".to_string(),
                Json::Obj(vec![
                    (
                        "age_s".to_string(),
                        snapshot_age_s.map_or(Json::Null, Json::UInt),
                    ),
                    ("epoch".to_string(), Json::UInt(self.snap_status.epoch)),
                    (
                        "file".to_string(),
                        self.snap_status.file.clone().map_or(Json::Null, Json::Str),
                    ),
                    ("loaded".to_string(), Json::Bool(self.snap_status.loaded)),
                    (
                        "restore_us".to_string(),
                        Json::UInt(self.snap_status.restore_us),
                    ),
                ]),
            ),
            ("status".to_string(), Json::Str("ok".to_string())),
            (
                "uptime_s".to_string(),
                Json::UInt(self.started.elapsed().as_secs()),
            ),
        ])
        .to_compact();
        body.push('\n');
        Response::json(body.into_bytes())
    }

    /// `GET /v1/debug/traces`: the flight recorder as canonical JSON —
    /// top-`k` traces by duration (default 20), filterable by
    /// `route=<short name>` and `epoch=<n>` annotations.
    fn debug_traces_response(&self, request: &Request) -> Response {
        let k = match parse_or(request, "k", 20usize) {
            Ok(k) => k,
            Err(response) => return *response,
        };
        let mut body = self
            .recorder
            .debug_json(request.param("route"), request.param("epoch"), k)
            .to_pretty();
        body.push('\n');
        Response::json(body.into_bytes())
    }

    /// The `/metrics` report for this server process. `?format=prometheus`
    /// switches to the text exposition rendered over the same registry;
    /// the default (`format=json` or no parameter) is the RunReport.
    fn metrics_response(&self, request: &Request) -> Response {
        match request.param("format") {
            None | Some("json") => self.metrics_report_response(),
            Some("prometheus") => {
                Response::text(caf_obs::render_prometheus(caf_obs::registry()).into_bytes())
            }
            Some(other) => Response::error(
                400,
                &format!("unknown format {other:?}; expected json or prometheus"),
            ),
        }
    }

    fn metrics_report_response(&self) -> Response {
        let mut meta = BTreeMap::new();
        meta.insert("tool".to_string(), "caf-serve".to_string());
        meta.insert("seed".to_string(), self.config.default_seed.to_string());
        meta.insert(
            "workers".to_string(),
            self.config.engine.workers.to_string(),
        );
        meta.insert("scale".to_string(), self.config.default_scale.to_string());
        meta.insert(
            "cache_capacity".to_string(),
            self.config.cache_capacity.to_string(),
        );
        meta.insert("epoch".to_string(), self.live_epoch().to_string());
        let mut body = caf_obs::RunReport::collect(meta).to_json_pretty();
        body.push('\n');
        Response::json(body.into_bytes())
    }

    /// Claims a share of the engine budget for one computation. The
    /// split is `base.share(active)` so two concurrent cold scenarios
    /// each get half the workers instead of oversubscribing the host.
    fn compute_engine(&self, base: EngineConfig) -> (EngineConfig, ActiveGuard) {
        let active = self.active_computes.fetch_add(1, Ordering::SeqCst) + 1;
        caf_obs::gauge("caf.serve.computes.active", active as u64);
        (
            base.share(active),
            ActiveGuard(Arc::clone(&self.active_computes)),
        )
    }

    /// The audit configuration the serving layer computes under — the
    /// same one [`Fixture::build_tuned`] uses, so live incremental
    /// refreshes and from-scratch fixture builds agree byte-for-byte.
    fn audit_for(&self, seed: u64, scale: u32) -> Audit {
        Audit::new(AuditConfig {
            synth: SynthConfig { seed, scale },
            campaign: campaign_config(seed),
            rule: SamplingRule::paper(),
            resample_rounds: 2,
        })
    }

    /// Handles `POST /v1/challenge`: parses the JSONL delta batch,
    /// applies it to the live world (atomically — any invalid delta
    /// rejects the batch), refreshes the incremental audit over the
    /// invalidated cells only, and publishes the refreshed view into
    /// the scenario cache under the new epoch.
    fn challenge_response(&self, request: &Request) -> Response {
        let body = match std::str::from_utf8(&request.body) {
            Ok(body) => body,
            Err(_) => return Response::error(400, "challenge body must be UTF-8 JSONL"),
        };
        let deltas = match deltas_from_jsonl(body) {
            Ok(deltas) => deltas,
            Err(message) => {
                return Response::error(400, &format!("invalid delta stream: {message}"))
            }
        };
        if deltas.is_empty() {
            return Response::error(400, "challenge batch contains no deltas");
        }

        let seed = self.config.default_seed;
        let scale = self.config.default_scale;
        // A restored world may still be decoding; wait for the gate
        // *before* taking the live lock (the installer takes it too).
        self.restore.wait();
        let mut slot = self.live.lock().unwrap();
        if slot.is_none() {
            // First challenge: materialize the live scenario (one full
            // build; every later batch is incremental). The mutex is
            // the single-flight here — concurrent first batches queue.
            let (engine, _guard) = self.compute_engine(self.config.engine);
            let _span = caf_obs::span("serve.challenge.materialize");
            let synth = SynthConfig { seed, scale };
            let world = World::generate_states_on(synth, &UsState::study_states(), engine);
            let inc = IncrementalAudit::build(self.audit_for(seed, scale), &world, engine);
            *slot = Some(Live {
                world,
                inc: Some(inc),
                log: Vec::new(),
            });
        }
        let live = slot.as_mut().expect("just materialized");
        if live.inc.is_none() {
            // Snapshot-restored world: the incremental audit was not
            // persisted (it is a full audit's worth of state); build it
            // here, on the first batch that actually needs it. By the
            // determinism contract, auditing the restored world at
            // epoch E equals the audit a never-restarted server carried
            // to epoch E incrementally.
            let (engine, _guard) = self.compute_engine(self.config.engine);
            let _span = caf_obs::span("serve.challenge.materialize");
            live.inc = Some(IncrementalAudit::build(
                self.audit_for(seed, scale),
                &live.world,
                engine,
            ));
        }

        let outcome = match live.world.apply_deltas(&deltas) {
            Ok(outcome) => outcome,
            Err(error) => return Response::error(400, &format!("challenge rejected: {error}")),
        };
        let dirty = outcome.dirty_cells();
        {
            let (engine, _guard) = self.compute_engine(self.config.engine);
            let _span = caf_obs::span("serve.challenge.refresh");
            live.inc
                .as_mut()
                .expect("materialized above")
                .refresh(&live.world, &outcome, engine);
        }
        live.log.extend_from_slice(&deltas);
        caf_obs::count("caf.serve.challenge.batches", 1);
        caf_obs::count("caf.serve.challenge.applied", outcome.applied as u64);
        caf_obs::gauge("caf.serve.challenge.epoch", outcome.epoch);
        caf_obs::trace::annotate("epoch", &outcome.epoch.to_string());

        // Publish the refreshed view so reads at this epoch hit the
        // cache instead of rebuilding from scratch.
        let dataset = live.inc.as_ref().expect("materialized above").dataset();
        let index = AuditIndex::build_at(&dataset, live.world.epoch);
        let view = Q12View {
            serviceability: ServiceabilityAnalysis::from_index(&index),
            compliance: ComplianceAnalysis::from_index(&dataset, &index),
            dataset,
            index,
        };
        let epoch = live.world.epoch;
        drop(slot);
        self.cache.insert(
            ScenarioKey {
                kind: Kind::Q12,
                seed,
                scale,
                epoch,
            },
            Bundle::Q12(Box::new(view)),
        );
        // Persist the advanced world off the request path, so a crash
        // after this response restarts at (or near) the new epoch.
        self.spawn_snapshot_write();

        let mut body = Json::Obj(vec![
            ("applied".to_string(), Json::UInt(outcome.applied as u64)),
            ("cells_refreshed".to_string(), Json::UInt(dirty as u64)),
            ("epoch".to_string(), Json::UInt(epoch)),
        ])
        .to_compact();
        body.push('\n');
        Response::json(body.into_bytes())
    }

    /// Handles `POST /v1/snapshot`: writes a snapshot synchronously and
    /// reports what was written. The synchronous form exists for
    /// deterministic orchestration (CI snapshots then restarts); the
    /// challenge path writes the same container in the background.
    fn snapshot_response(&self) -> Response {
        let Some(dir) = self.config.snapshot_dir.clone() else {
            return Response::error(
                400,
                "snapshots are disabled; start the server with --snapshot-dir",
            );
        };
        self.restore.wait();
        let (world, log, epoch) = self.snapshot_source();
        let views = self.cache.ready_entries();
        let _write = self.snapshot_write_lock.lock().unwrap();
        match write_snapshot_file(
            &dir,
            self.config.default_seed,
            self.config.default_scale,
            epoch,
            world.as_ref(),
            &log,
            &views,
        ) {
            Ok((path, bytes)) => {
                let file = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("snapshot")
                    .to_string();
                let mut body = Json::Obj(vec![
                    ("bytes".to_string(), Json::UInt(bytes as u64)),
                    ("epoch".to_string(), Json::UInt(epoch)),
                    ("file".to_string(), Json::Str(file)),
                ])
                .to_compact();
                body.push('\n');
                Response::json(body.into_bytes())
            }
            Err(error) => Response::error(500, &format!("snapshot write failed: {error}")),
        }
    }

    /// Clones what a snapshot captures: the live world + delta log (if
    /// materialized) and the current epoch. Clone-then-release keeps
    /// the serialization work off the live lock.
    fn snapshot_source(&self) -> (Option<World>, Vec<ChallengeDelta>, u64) {
        let live = self.live.lock().unwrap();
        match live.as_ref() {
            Some(live) => (Some(live.world.clone()), live.log.clone(), live.world.epoch),
            None => (None, Vec::new(), 0),
        }
    }

    /// Writes a snapshot on a detached background thread, at most one
    /// at a time — a batch landing mid-write skips its snapshot (the
    /// next write captures the newer epoch anyway).
    fn spawn_snapshot_write(&self) {
        let Some(dir) = self.config.snapshot_dir.clone() else {
            return;
        };
        if self.snapshot_inflight.swap(true, Ordering::SeqCst) {
            caf_obs::count("caf.snap.write_skipped", 1);
            return;
        }
        let (world, log, epoch) = self.snapshot_source();
        let views = self.cache.ready_entries();
        let seed = self.config.default_seed;
        let scale = self.config.default_scale;
        let inflight = Arc::clone(&self.snapshot_inflight);
        let write_lock = Arc::clone(&self.snapshot_write_lock);
        std::thread::spawn(move || {
            let _write = write_lock.lock().unwrap();
            if let Err(error) =
                write_snapshot_file(&dir, seed, scale, epoch, world.as_ref(), &log, &views)
            {
                eprintln!("caf-serve: background snapshot write failed: {error}");
                caf_obs::count("caf.snap.write_errors", 1);
            }
            inflight.store(false, Ordering::SeqCst);
        });
    }

    fn scenario_response(&self, route: &str, request: &Request) -> Response {
        let params = match ScenarioParams::from_request(self, request) {
            Ok(params) => params,
            Err(response) => return *response,
        };
        caf_obs::trace::annotate("epoch", &params.epoch.to_string());
        if params.isp.is_some() && !matches!(route, "serviceability" | "compliance") {
            return Response::error(
                400,
                &format!("the isp filter is not supported on /v1/{route}"),
            );
        }
        if params.epoch > 0 && route == "q3" {
            return Response::error(
                400,
                "challenges correct the Q1/Q2 world; /v1/q3 takes no epoch",
            );
        }
        if params.epoch > 0
            && (params.seed != self.config.default_seed
                || params.meta.scale != self.config.default_scale)
        {
            return Response::error(
                400,
                "challenge epochs exist only for the server's default seed/scale scenario",
            );
        }

        // The delta prefix that defines the requested epoch (empty at
        // epoch 0). The epoch counts applied deltas, so epoch E is the
        // first E entries of the log.
        let deltas: Vec<ChallengeDelta> = if params.epoch == 0 {
            Vec::new()
        } else {
            // Historical epochs need the live world (for the delta-log
            // prefix); a restored one may still be decoding.
            self.restore.wait();
            let live = self.live.lock().unwrap();
            match live.as_ref() {
                Some(live) if live.world.epoch >= params.epoch => {
                    live.log[..params.epoch as usize].to_vec()
                }
                other => {
                    let reached = other.map_or(0, |live| live.world.epoch);
                    return Response::error(
                        404,
                        &format!(
                            "epoch {} has not been reached (live epoch is {reached}; \
                             apply challenges via POST /v1/challenge)",
                            params.epoch
                        ),
                    );
                }
            }
        };

        let key = match route {
            "q3" => ScenarioKey {
                kind: Kind::Q3,
                seed: params.seed,
                scale: params.meta.q3_scale,
                epoch: 0,
            },
            _ => ScenarioKey {
                kind: Kind::Q12,
                seed: params.seed,
                scale: params.meta.scale,
                epoch: params.epoch,
            },
        };
        let result = self
            .cache
            .get_or_compute(key, self.config.compute_timeout, || {
                let (engine, _guard) = self.compute_engine(params.engine);
                let _span = caf_obs::span_with(|| format!("serve.compute.{:?}", key.kind));
                match key.kind {
                    Kind::Q12 => Fixture::build_tuned_at(
                        key.seed,
                        key.scale,
                        &UsState::study_states(),
                        engine,
                        &deltas,
                    )
                    .map(|fixture| Bundle::Q12(Box::new(Q12View::from_fixture(fixture))))
                    .map_err(|error| error.to_string()),
                    Kind::Q3 => Ok(Bundle::Q3(Box::new(
                        Fixture::build_q3_tuned(key.seed, key.scale, engine).1,
                    ))),
                    // Sweep cells are computed by `sweep_response`,
                    // which never routes through here.
                    Kind::Sweep => Err("sweep cells are not a scenario route".to_string()),
                }
            });
        let bundle = match result {
            Ok((bundle, outcome)) => {
                caf_obs::trace::annotate(
                    "cache",
                    match outcome {
                        CacheOutcome::Hit => "hit",
                        CacheOutcome::Miss => "miss",
                        CacheOutcome::Joined => "join",
                        CacheOutcome::DiskHit => "disk_hit",
                    },
                );
                bundle
            }
            Err(CacheError::JoinTimeout) => {
                caf_obs::trace::annotate("cache", "join_timeout");
                return Response::error(503, "scenario computation still in flight; retry shortly")
                    .with_header("Retry-After", "1".to_string());
            }
            Err(CacheError::Failed(message)) => {
                return Response::error(500, &format!("scenario computation failed: {message}"));
            }
        };

        let bytes = {
            let _span = caf_obs::span("render");
            let body = match (&*bundle, route) {
                (Bundle::Q12(view), "serviceability") => {
                    artifact::serviceability(&view.serviceability, params.isp)
                }
                (Bundle::Q12(view), "compliance") => {
                    artifact::compliance(&view.compliance, &view.dataset, params.isp)
                }
                (Bundle::Q12(view), "table2") => artifact::table2(&view.dataset),
                (Bundle::Q3(q3), "q3") => artifact::q3(q3),
                _ => return Response::error(500, "bundle/route mismatch"),
            };
            artifact::to_canonical_bytes(&params.meta.at_epoch(params.epoch).wrap(body))
        };
        let etag = format!("\"{:016x}\"", fnv1a(bytes.as_bytes()));
        if client_has(request, &etag) {
            return Response::not_modified().with_header("ETag", etag);
        }
        Response::json(bytes.into_bytes()).with_header("ETag", etag)
    }

    /// Parses the sweep grid axes from comma-separated query
    /// parameters — `states=`, `scales=`, `tiers=`, `caps=`, `rules=`
    /// — with single-cell defaults, validating through the same
    /// [`SweepSpec`] rules the `caf-sweep` binary applies to spec
    /// files, plus the server's scale floor and inline cell budget.
    fn sweep_spec(&self, request: &Request, seed: u64) -> Result<SweepSpec, Box<Response>> {
        let bad = |message: String| Box::new(Response::error(400, &message));
        let list = |name: &str, default: &str| -> Vec<String> {
            request
                .param(name)
                .unwrap_or(default)
                .split(',')
                .map(|s| s.trim().to_string())
                .collect()
        };
        let mut states = Vec::new();
        for raw in list("states", "VT") {
            states.push(
                UsState::from_abbrev(&raw)
                    .map_err(|_| bad(format!("unknown state abbreviation {raw:?}")))?,
            );
        }
        let floor = self.config.min_scale.max(1);
        let mut scales = Vec::new();
        for raw in list("scales", &self.config.default_scale.to_string()) {
            let scale: u32 = raw
                .parse()
                .map_err(|_| bad(format!("invalid scale {raw:?}")))?;
            check_scale_floor("scales", scale, floor)?;
            scales.push(scale);
        }
        let mut tiers = Vec::new();
        for raw in list("tiers", "10_1") {
            tiers.push(
                ProgramRules::tier_labels()
                    .into_iter()
                    .find(|&label| label == raw)
                    .ok_or_else(|| {
                        bad(format!(
                            "unknown tier {raw:?}; known: {}",
                            ProgramRules::tier_labels().join(", ")
                        ))
                    })?,
            );
        }
        let mut cap_multipliers = Vec::new();
        for raw in list("caps", "1.0") {
            cap_multipliers.push(
                raw.parse::<f64>()
                    .map_err(|_| bad(format!("invalid cap multiplier {raw:?}")))?,
            );
        }
        let mut rules = Vec::new();
        for raw in list("rules", "status_quo") {
            rules.push(
                SubsidyRule::parse(&raw)
                    .ok_or_else(|| bad(format!("unknown subsidy rule {raw:?}")))?,
            );
        }
        let spec = SweepSpec {
            seed,
            states,
            scales,
            tiers,
            cap_multipliers,
            rules,
        };
        spec.validate()
            .map_err(|error| bad(format!("invalid sweep grid: {error}")))?;
        if spec.cell_count() > MAX_SWEEP_CELLS {
            return Err(bad(format!(
                "sweep grid has {} cells; the inline limit is {MAX_SWEEP_CELLS}",
                spec.cell_count()
            )));
        }
        Ok(spec)
    }

    /// Handles `GET /v1/sweep`: a bounded inline policy-sweep grid.
    ///
    /// Every cell is an independent cache entry keyed by its content
    /// hash, so repeated or overlapping grids hit instead of
    /// recomputing, evicted cells spill to the disk tier, and the
    /// response is assembled from the cells' stored canonical body
    /// bytes in grid order — byte-identical however the cells were
    /// obtained (computed, cached, or promoted from disk).
    fn sweep_response(&self, request: &Request) -> Response {
        for unsupported in ["epoch", "isp", "scale"] {
            if request.param(unsupported).is_some() {
                return Response::error(
                    400,
                    &format!(
                        "{unsupported} is not supported on /v1/sweep \
                         (cells carry their own axes; try scales=)"
                    ),
                );
            }
        }
        let seed = match parse_or(request, "seed", self.config.default_seed) {
            Ok(seed) => seed,
            Err(response) => return *response,
        };
        let spec = match self.sweep_spec(request, seed) {
            Ok(spec) => spec,
            Err(response) => return *response,
        };
        let cells = spec.cells();
        let mut bodies: Vec<Json> = Vec::with_capacity(cells.len());
        let mut hits = 0usize;
        let mut misses = 0usize;
        for cell in &cells {
            let key = ScenarioKey {
                kind: Kind::Sweep,
                seed: cell.key(seed).0,
                scale: cell.scale,
                epoch: 0,
            };
            let result = self
                .cache
                .get_or_compute(key, self.config.compute_timeout, || {
                    let (_engine, _guard) = self.compute_engine(self.config.engine);
                    let _span = caf_obs::span("serve.compute.sweep");
                    let computed = caf_sweep::compute_cell(seed, cell);
                    Ok(Bundle::Sweep(
                        artifact::to_canonical_bytes(&caf_sweep::cell_body(&computed)).into_bytes(),
                    ))
                });
            let bundle = match result {
                Ok((bundle, outcome)) => {
                    match outcome {
                        CacheOutcome::Hit | CacheOutcome::DiskHit => hits += 1,
                        CacheOutcome::Miss | CacheOutcome::Joined => misses += 1,
                    }
                    bundle
                }
                Err(CacheError::JoinTimeout) => {
                    caf_obs::trace::annotate("cache", "join_timeout");
                    return Response::error(
                        503,
                        "sweep cell computation still in flight; retry shortly",
                    )
                    .with_header("Retry-After", "1".to_string());
                }
                Err(CacheError::Failed(message)) => {
                    return Response::error(500, &format!("sweep cell failed: {message}"));
                }
            };
            let Bundle::Sweep(bytes) = &*bundle else {
                return Response::error(500, "bundle/route mismatch");
            };
            let body = std::str::from_utf8(bytes)
                .ok()
                .and_then(|text| caf_obs::json::parse(text).ok());
            match body {
                Some(body) => bodies.push(body),
                None => return Response::error(500, "stored sweep cell is not canonical JSON"),
            }
        }
        caf_obs::trace::annotate("cache", &format!("hit={hits} miss={misses}"));

        let body = Json::Obj(vec![
            ("cells".to_string(), Json::Arr(bodies)),
            ("count".to_string(), Json::UInt(cells.len() as u64)),
            ("seed".to_string(), Json::UInt(seed)),
        ]);
        let bytes = artifact::to_canonical_bytes(
            &ScenarioMeta::new(seed, self.config.default_scale).wrap(body),
        );
        let etag = format!("\"{:016x}\"", fnv1a(bytes.as_bytes()));
        if client_has(request, &etag) {
            return Response::not_modified().with_header("ETag", etag);
        }
        Response::json(bytes.into_bytes()).with_header("ETag", etag)
    }
}

/// The largest grid `/v1/sweep` computes inline. Cells are cheap at
/// serving scales but not free; a bigger grid belongs in the `caf-sweep`
/// binary, not on a request thread.
const MAX_SWEEP_CELLS: usize = 64;

/// Restores the newest compatible snapshot from `dir`, if any: views
/// into `cache` synchronously, the world + log onto a background
/// thread that installs `live` and then opens `gate`. Returns the
/// status `/healthz` reports. Every failure path prints one line and
/// returns a cold status — a bad snapshot must never take the server
/// down or slow it below a plain cold boot.
fn restore_snapshot(
    dir: &Path,
    config: &AppConfig,
    cache: &ScenarioCache<ScenarioKey, Bundle>,
    live: &Arc<Mutex<Option<Live>>>,
    gate: &Arc<RestoreGate>,
) -> SnapshotStatus {
    if let Err(error) = fs::create_dir_all(dir) {
        eprintln!("caf-serve: cannot create snapshot dir {dir:?} ({error}); snapshots disabled");
        return SnapshotStatus::default();
    }
    let Some((path, epoch)) = snapshot::find_newest(dir, config.default_seed, config.default_scale)
    else {
        return SnapshotStatus::default();
    };
    let started = Instant::now();
    let _span = caf_obs::span("snap.restore");
    let bytes = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(error) => {
            eprintln!("caf-serve: snapshot {path:?} unreadable ({error}); cold build");
            return SnapshotStatus::default();
        }
    };
    let parsed = match Snapshot::parse(&bytes) {
        Ok(parsed) => parsed,
        Err(error) => {
            eprintln!("caf-serve: snapshot {path:?} rejected ({error:?}); cold build");
            caf_obs::count("caf.snap.restore_rejected", 1);
            return SnapshotStatus::default();
        }
    };
    let views = match parsed.section(SECTION_VIEWS).map(decode_views) {
        Some(Ok(views)) => views,
        Some(Err(error)) => {
            eprintln!("caf-serve: snapshot {path:?} views invalid ({error:?}); cold build");
            caf_obs::count("caf.snap.restore_rejected", 1);
            return SnapshotStatus::default();
        }
        None => Vec::new(),
    };
    for (key, bundle) in views {
        cache.insert(key, bundle);
    }

    // The world is only needed for epoch-dependent requests (historical
    // reads, the next challenge batch); decode it off the startup path
    // so restart-to-first-200 stays view-decode fast. Moving the file
    // buffer (with the section ranges lifted out of the parse borrow)
    // keeps the multi-megabyte world payload from being copied on the
    // synchronous path.
    let world_range = parsed.section_range(SECTION_WORLD);
    let log_range = parsed.section_range(SECTION_LOG);
    drop(parsed);
    if let Some(world_range) = world_range {
        let live = Arc::clone(live);
        let gate_bg = Arc::clone(gate);
        gate.begin();
        std::thread::spawn(move || {
            let _span = caf_obs::span("snap.restore.world");
            let log_bytes = log_range.map(|range| &bytes[range]);
            match decode_live(&bytes[world_range], log_bytes, epoch) {
                Ok(restored) => {
                    *live.lock().unwrap() = Some(restored);
                    caf_obs::gauge("caf.serve.challenge.epoch", epoch);
                }
                Err(error) => {
                    eprintln!(
                        "caf-serve: snapshot world section invalid ({error:?}); \
                         historical epochs unavailable until rebuilt"
                    );
                    caf_obs::count("caf.snap.restore_rejected", 1);
                }
            }
            // Open the gate after installing (or giving up), never
            // before: waiters must observe the final state.
            gate_bg.finish();
        });
    }

    let restore_us = started.elapsed().as_micros() as u64;
    caf_obs::gauge("caf.snap.restore_us", restore_us);
    caf_obs::count("caf.snap.restores", 1);
    let file = path
        .file_name()
        .and_then(|n| n.to_str())
        .map(str::to_string);
    println!(
        "restored snapshot {} (epoch {epoch}) in {:.1} ms",
        file.as_deref().unwrap_or("?"),
        restore_us as f64 / 1_000.0
    );
    SnapshotStatus {
        loaded: true,
        epoch,
        restore_us,
        file,
        mtime: fs::metadata(&path).ok().and_then(|m| m.modified().ok()),
    }
}

/// Decodes the `VIEWS` section: a counted sequence of
/// `(kind, seed, scale, epoch, payload)` cache entries.
fn decode_views(bytes: &[u8]) -> Result<Vec<(ScenarioKey, Bundle)>, SnapError> {
    let mut r = Reader::new(bytes);
    let count = r.u32()?;
    let mut views = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let kind = match r.u8()? {
            0 => Kind::Q12,
            1 => Kind::Q3,
            2 => Kind::Sweep,
            other => {
                return Err(SnapError::Malformed(format!(
                    "views: unknown kind tag {other}"
                )))
            }
        };
        let key = ScenarioKey {
            kind,
            seed: r.u64()?,
            scale: r.u32()?,
            epoch: r.u64()?,
        };
        let payload = r.bytes()?;
        let mut pr = Reader::new(payload);
        let bundle = Bundle::decode_payload(&mut pr)?;
        pr.finish()?;
        views.push((key, bundle));
    }
    r.finish()?;
    Ok(views)
}

/// Decodes the `WORLD` (+ optional `LOG`) sections into a [`Live`]
/// slot, cross-checking that the world's epoch matches both the header
/// and the log length — a snapshot whose pieces disagree is corrupt
/// even if every checksum passed.
fn decode_live(
    world_bytes: &[u8],
    log_bytes: Option<&[u8]>,
    expected_epoch: u64,
) -> Result<Live, SnapError> {
    let mut r = Reader::new(world_bytes);
    let world: World = r.get()?;
    r.finish()?;
    let log: Vec<ChallengeDelta> = match log_bytes {
        Some(bytes) => {
            let mut r = Reader::new(bytes);
            let log = r.get_seq()?;
            r.finish()?;
            log
        }
        None => Vec::new(),
    };
    if world.epoch != expected_epoch || log.len() as u64 != world.epoch {
        return Err(SnapError::Malformed(format!(
            "epoch disagreement: header {expected_epoch}, world {}, log length {}",
            world.epoch,
            log.len()
        )));
    }
    Ok(Live {
        world,
        inc: None,
        log,
    })
}

/// Serializes the app's state as a snapshot container and writes it
/// atomically as `world-<seed>-<scale>-<epoch>.snap` under `dir`.
/// Returns the path and the container size in bytes.
fn write_snapshot_file(
    dir: &Path,
    seed: u64,
    scale: u32,
    epoch: u64,
    world: Option<&World>,
    log: &[ChallengeDelta],
    views: &[(ScenarioKey, Arc<Bundle>)],
) -> std::io::Result<(PathBuf, usize)> {
    let _span = caf_obs::span("snap.write");
    let mut builder = SnapshotBuilder::new(seed, scale, epoch);
    if let Some(world) = world {
        builder.section(SECTION_WORLD, |w| w.put(world));
        builder.section(SECTION_LOG, |w| w.put_seq(log));
    }
    builder.section(SECTION_VIEWS, |w| {
        w.put_u32(views.len() as u32);
        for (key, bundle) in views {
            w.put_u8(match key.kind {
                Kind::Q12 => 0,
                Kind::Q3 => 1,
                Kind::Sweep => 2,
            });
            w.put_u64(key.seed);
            w.put_u32(key.scale);
            w.put_u64(key.epoch);
            let mut payload = Writer::new();
            bundle.encode_payload(&mut payload);
            w.put_bytes(&payload.into_bytes());
        }
    });
    let bytes = builder.finish();
    let path = dir.join(snapshot::file_name(seed, scale, epoch));
    write_atomic(&path, &bytes)?;
    caf_obs::count("caf.snap.writes", 1);
    caf_obs::gauge("caf.snap.last_write_bytes", bytes.len() as u64);
    Ok((path, bytes.len()))
}

/// Whether the request's `If-None-Match` header matches `etag` (exact
/// entry in a comma-separated list, or `*`).
fn client_has(request: &Request, etag: &str) -> bool {
    request.header("if-none-match").is_some_and(|value| {
        value
            .split(',')
            .any(|candidate| candidate.trim() == etag || candidate.trim() == "*")
    })
}

/// 64-bit FNV-1a over the canonical body; deterministic across runs,
/// so clients can revalidate artifacts cheaply.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Parsed and validated `/v1/*` query parameters.
struct ScenarioParams {
    seed: u64,
    meta: ScenarioMeta,
    engine: EngineConfig,
    isp: Option<Isp>,
    epoch: u64,
}

impl ScenarioParams {
    fn from_request(app: &App, request: &Request) -> Result<ScenarioParams, Box<Response>> {
        let seed = parse_or(request, "seed", app.config.default_seed)?;
        // The floor is never below 1: a zero scale would divide by zero
        // in `SynthConfig::scaled` and panic mid-computation.
        let floor = app.config.min_scale.max(1);
        let scale = parse_or(request, "scale", app.config.default_scale)?;
        check_scale_floor("scale", scale, floor)?;
        let mut meta = ScenarioMeta::new(seed, scale);
        meta.q3_scale = parse_or(request, "q3_scale", meta.q3_scale)?;
        check_scale_floor("q3_scale", meta.q3_scale, floor)?;
        let epoch = parse_or(request, "epoch", 0u64)?;
        let engine = match request.param("workers") {
            None => app.config.engine,
            Some(raw) => {
                let workers: usize = raw.parse().map_err(|_| {
                    Box::new(Response::error(400, &format!("invalid workers={raw:?}")))
                })?;
                if workers == 0 || workers > 512 {
                    return Err(Box::new(Response::error(
                        400,
                        "workers must be between 1 and 512",
                    )));
                }
                EngineConfig::with_workers(workers)
            }
        };
        let isp = match request.param("isp") {
            None => None,
            Some(raw) => Some(parse_isp(raw).ok_or_else(|| {
                let known: Vec<&str> = Isp::all().iter().map(|isp| isp.name()).collect();
                Box::new(Response::error(
                    400,
                    &format!("unknown isp {raw:?}; known: {}", known.join(", ")),
                ))
            })?),
        };
        Ok(ScenarioParams {
            seed,
            meta,
            engine,
            isp,
            epoch,
        })
    }
}

/// Rejects scales below the server's floor (which is itself at least 1,
/// so a divide-by-zero scale can never reach the synth pipeline).
fn check_scale_floor(name: &str, value: u32, floor: u32) -> Result<(), Box<Response>> {
    if value < floor {
        return Err(Box::new(Response::error(
            400,
            &format!("{name}={value} is below the server's minimum of {floor}"),
        )));
    }
    Ok(())
}

fn parse_or<T: std::str::FromStr>(
    request: &Request,
    name: &str,
    default: T,
) -> Result<T, Box<Response>> {
    match request.param(name) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| {
            Box::new(Response::error(
                400,
                &format!("invalid {name}={raw:?}: expected a non-negative integer"),
            ))
        }),
    }
}

/// Case-insensitive match against the ISP registry names.
fn parse_isp(raw: &str) -> Option<Isp> {
    Isp::all()
        .into_iter()
        .find(|isp| isp.name().eq_ignore_ascii_case(raw))
}

impl Handler for App {
    fn handle(&self, request: &Request) -> Response {
        // Span names are interned forever by the caf-obs registry, so
        // only recognized routes get their own label; every other path
        // (arbitrary client input) shares one fixed name to keep the
        // registry and the /metrics body bounded.
        let (label, short) = route_entry(request.path.as_str());
        caf_obs::trace::annotate("route", short);
        let started = Instant::now();
        let response = self.dispatch(label, request);
        if let Some(slo) = self.slos.get(label) {
            slo.observe(started.elapsed().as_micros() as u64, response.status >= 500);
        }
        response
    }
}

impl App {
    fn dispatch(&self, label: &'static str, request: &Request) -> Response {
        let _span = caf_obs::span(label);
        // The challenge ingest and snapshot trigger are the only POST
        // endpoints; everything else is read-only.
        if request.path == "/v1/challenge" {
            return if request.method == "POST" {
                self.challenge_response(request)
            } else {
                Response::error(405, "/v1/challenge accepts POST only")
            };
        }
        if request.path == "/v1/snapshot" {
            return if request.method == "POST" {
                self.snapshot_response()
            } else {
                Response::error(405, "/v1/snapshot accepts POST only")
            };
        }
        if request.method != "GET" {
            return Response::error(
                405,
                &format!(
                    "method {} not supported on {}",
                    request.method, request.path
                ),
            );
        }
        match request.path.as_str() {
            "/healthz" => self.healthz_response(),
            "/metrics" => self.metrics_response(request),
            "/quitquitquit" => {
                let mut response = Response::text("shutting down\n");
                response.shutdown = true;
                response
            }
            "/v1/debug/traces" => self.debug_traces_response(request),
            path => match path.strip_prefix("/v1/") {
                Some(route @ ("serviceability" | "compliance" | "table2" | "q3")) => {
                    self.scenario_response(route, request)
                }
                Some("sweep") => self.sweep_response(request),
                _ => Response::error(404, &format!("no such endpoint: {path}")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_synth::challenge::delta_to_json;
    use caf_synth::Correction;

    fn request(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            query: Vec::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn tiny_app() -> App {
        App::new(AppConfig {
            default_scale: 2000,
            engine: EngineConfig::serial(),
            ..AppConfig::default()
        })
    }

    #[test]
    fn rejects_bad_parameters_with_400() {
        let app = tiny_app();
        for (path, query) in [
            ("/v1/table2", vec![("seed", "not-a-number")]),
            ("/v1/table2", vec![("scale", "-3")]),
            ("/v1/table2", vec![("scale", "0")]),
            ("/v1/q3", vec![("q3_scale", "0")]), // would divide by zero
            ("/v1/table2", vec![("workers", "0")]),
            ("/v1/table2", vec![("isp", "Nonexistent ISP")]),
            ("/v1/table2", vec![("isp", "AT&T")]), // no filter on table2
            ("/v1/q3", vec![("isp", "AT&T")]),
            ("/v1/table2", vec![("epoch", "x")]),
            ("/v1/q3", vec![("epoch", "1")]), // q3 has no challenge stream
            // Challenge epochs exist only for the default scenario.
            ("/v1/table2", vec![("epoch", "1"), ("seed", "9")]),
        ] {
            let response = app.handle(&request(path, &query));
            assert_eq!(response.status, 400, "{path} {query:?}");
        }
        let response = app.handle(&request("/v1/nope", &[]));
        assert_eq!(response.status, 404);
        // An unreached epoch of the default scenario is a 404, not 400.
        let response = app.handle(&request("/v1/table2", &[("epoch", "3")]));
        assert_eq!(response.status, 404);
        assert_eq!(app.cache_stats().misses, 0, "no computation was started");
    }

    #[test]
    fn scale_floor_is_enforced() {
        let app = App::new(AppConfig {
            min_scale: 100,
            ..AppConfig::default()
        });
        let response = app.handle(&request("/v1/table2", &[("scale", "99")]));
        assert_eq!(response.status, 400);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("minimum of 100"), "{body}");
        // q3_scale is a world scale too; the same floor applies.
        let response = app.handle(&request("/v1/q3", &[("q3_scale", "99")]));
        assert_eq!(response.status, 400);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("q3_scale=99"), "{body}");
        assert_eq!(app.cache_stats().misses, 0, "no computation was started");
    }

    #[test]
    fn health_and_shutdown_routes() {
        let app = tiny_app();
        let health = app.handle(&request("/healthz", &[]));
        assert_eq!((health.status, health.shutdown), (200, false));
        let body = String::from_utf8(health.body).unwrap();
        let parsed = caf_obs::json::parse(body.trim_end()).unwrap();
        assert_eq!(
            parsed.get("status").and_then(|j| j.as_str()),
            Some("ok"),
            "{body}"
        );
        assert_eq!(parsed.get("epoch").and_then(|j| j.as_u64()), Some(0));
        assert_eq!(
            parsed
                .get("cache")
                .and_then(|c| c.get("capacity"))
                .and_then(|j| j.as_u64()),
            Some(AppConfig::default().cache_capacity as u64)
        );
        assert_eq!(
            parsed
                .get("cache")
                .and_then(|c| c.get("entries"))
                .and_then(|j| j.as_u64()),
            Some(0)
        );
        assert!(
            parsed.get("uptime_s").and_then(|j| j.as_u64()).is_some(),
            "{body}"
        );
        // No snapshot dir: cold start, tier disabled, but the schema is
        // always present.
        assert_eq!(
            parsed
                .get("snapshot")
                .and_then(|s| s.get("loaded"))
                .and_then(|j| j.as_bool()),
            Some(false),
            "{body}"
        );
        assert_eq!(
            parsed
                .get("disk_tier")
                .and_then(|t| t.get("enabled"))
                .and_then(|j| j.as_bool()),
            Some(false),
            "{body}"
        );
        // Canonical JSON: object keys appear in sorted order.
        let key_order: Vec<usize> = [
            "\"cache\"",
            "\"disk_tier\"",
            "\"epoch\"",
            "\"snapshot\"",
            "\"status\"",
            "\"uptime_s\"",
        ]
        .iter()
        .map(|key| body.find(key).expect(key))
        .collect();
        assert!(key_order.windows(2).all(|w| w[0] < w[1]), "{body}");
        let quit = app.handle(&request("/quitquitquit", &[]));
        assert_eq!((quit.status, quit.shutdown), (200, true));
        // Read-only routes reject POST; the ingest route rejects GET.
        let mut misdirected = request("/healthz", &[]);
        misdirected.method = "POST".to_string();
        assert_eq!(app.handle(&misdirected).status, 405);
        assert_eq!(app.handle(&request("/v1/challenge", &[])).status, 405);
    }

    #[test]
    fn isp_names_parse_case_insensitively() {
        assert_eq!(parse_isp("AT&T"), Some(Isp::Att));
        assert_eq!(parse_isp("at&t"), Some(Isp::Att));
        assert_eq!(parse_isp("CenturyLink"), Some(Isp::CenturyLink));
        assert_eq!(parse_isp("Comcast"), None);
    }

    /// The full challenge lifecycle over the handler: ingest advances
    /// the epoch, the published view is served consistently at both
    /// epochs, and the bytes equal a from-scratch rebuild at the same
    /// epoch (the incremental-recompute determinism contract, crossed
    /// with the HTTP layer).
    #[test]
    fn challenge_ingest_serves_consistent_epoch_views() {
        let app = tiny_app();
        let seed = app.config.default_seed;
        let scale = app.config.default_scale;

        // Find a valid (state, cbg, isp) address in the default world.
        let probe = World::generate_states(SynthConfig { seed, scale }, &UsState::study_states());
        let state = probe.states[0].state;
        let isp = probe.states[0].geography.cbgs[0].isp;
        let delta = ChallengeDelta {
            state,
            cbg: 0,
            isp,
            correction: Correction::Availability { rate_ppm: 50_000 },
        };

        // Pre-challenge view first, so epoch 0 is resident.
        let before = app.handle(&request("/v1/table2", &[]));
        assert_eq!(before.status, 200);

        let accepted = app.handle(&post("/v1/challenge", &(delta_to_json(&delta) + "\n")));
        assert_eq!(
            accepted.status,
            200,
            "{}",
            String::from_utf8_lossy(&accepted.body)
        );
        let reply =
            caf_obs::json::parse(String::from_utf8(accepted.body).unwrap().trim_end()).unwrap();
        assert_eq!(reply.get("epoch").and_then(|j| j.as_u64()), Some(1));
        assert_eq!(reply.get("applied").and_then(|j| j.as_u64()), Some(1));
        assert_eq!(app.live_epoch(), 1);

        // The ingest published epoch 1 into the cache: serving it is a
        // hit, and the epoch-0 view is still resident and unchanged.
        let inserts_before = app.cache_stats().inserts;
        assert_eq!(inserts_before, 1);
        let hits_before = app.cache_stats().hits;
        let after = app.handle(&request("/v1/table2", &[("epoch", "1")]));
        assert_eq!(after.status, 200);
        assert_eq!(app.cache_stats().hits, hits_before + 1);
        let again = app.handle(&request("/v1/table2", &[]));
        assert_eq!(again.body, before.body, "epoch 0 view must be unperturbed");

        // Envelope carries the epoch.
        let parsed =
            caf_obs::json::parse(std::str::from_utf8(&after.body).unwrap().trim_end()).unwrap();
        let envelope_epoch = parsed
            .get("scenario")
            .and_then(|s| s.get("epoch"))
            .and_then(|e| e.as_u64());
        assert_eq!(envelope_epoch, Some(1));

        // Byte-identity against a from-scratch rebuild at epoch 1.
        let fixture = Fixture::build_tuned_at(
            seed,
            scale,
            &UsState::study_states(),
            EngineConfig::serial(),
            std::slice::from_ref(&delta),
        )
        .unwrap();
        let expected = artifact::to_canonical_bytes(
            &ScenarioMeta::new(seed, scale)
                .at_epoch(1)
                .wrap(artifact::table2(&fixture.dataset)),
        );
        assert_eq!(after.body, expected.into_bytes());

        // Rejected batches are atomic: the epoch does not move.
        let bogus = app.handle(&post("/v1/challenge", "{\"not\": \"a delta\"}\n"));
        assert_eq!(bogus.status, 400);
        let out_of_range = ChallengeDelta {
            cbg: usize::MAX,
            ..delta
        };
        let rejected = app.handle(&post(
            "/v1/challenge",
            &(delta_to_json(&out_of_range) + "\n"),
        ));
        assert_eq!(rejected.status, 400);
        assert_eq!(app.live_epoch(), 1);
    }

    #[test]
    fn if_none_match_revalidation_returns_304() {
        let app = tiny_app();
        let first = app.handle(&request("/v1/table2", &[]));
        assert_eq!(first.status, 200);
        let etag = first
            .headers
            .iter()
            .find(|(name, _)| name == "ETag")
            .map(|(_, value)| value.clone())
            .expect("artifact responses carry an ETag");

        let mut revalidate = request("/v1/table2", &[]);
        revalidate
            .headers
            .push(("if-none-match".to_string(), etag.clone()));
        let cached = app.handle(&revalidate);
        assert_eq!(cached.status, 304);
        assert!(cached.body.is_empty(), "304 carries no body");
        assert_eq!(
            cached.headers.iter().find(|(n, _)| n == "ETag"),
            Some(&("ETag".to_string(), etag.clone()))
        );

        // A stale validator gets the full representation again.
        let mut stale = request("/v1/table2", &[]);
        stale
            .headers
            .push(("if-none-match".to_string(), "\"deadbeef\"".to_string()));
        assert_eq!(app.handle(&stale).status, 200);

        // Wildcard and list forms match too.
        let mut wildcard = request("/v1/table2", &[]);
        wildcard
            .headers
            .push(("if-none-match".to_string(), format!("\"x\", {etag}")));
        assert_eq!(app.handle(&wildcard).status, 304);
    }

    fn snap_temp_dir(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("caf-servesnap-{label}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// A delta guaranteed valid in the default world at this scale.
    fn valid_delta(seed: u64, scale: u32, rate_ppm: u32) -> ChallengeDelta {
        let probe = World::generate_states(SynthConfig { seed, scale }, &UsState::study_states());
        ChallengeDelta {
            state: probe.states[0].state,
            cbg: 0,
            isp: probe.states[0].geography.cbgs[0].isp,
            correction: Correction::Availability { rate_ppm },
        }
    }

    /// Blocks until no background snapshot write is in flight, so tests
    /// can safely drop the app and remove its snapshot directory.
    fn wait_for_background_snapshot(app: &App) {
        while app.snapshot_inflight.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// The tentpole contract end to end: snapshot, restart, and serve
    /// byte-identical views with zero recomputation — at epoch 0 and a
    /// post-challenge epoch, under both a serial and a multi-worker
    /// engine — then keep ingesting challenges on the restored world.
    #[test]
    fn snapshot_restart_serves_byte_identical_views() {
        let dir = snap_temp_dir("restart");
        let config = |engine: EngineConfig| AppConfig {
            default_scale: 2000,
            engine,
            snapshot_dir: Some(dir.clone()),
            ..AppConfig::default()
        };
        let seed = AppConfig::default().default_seed;
        let scale = 2000;
        let delta = valid_delta(seed, scale, 50_000);

        let app = App::new(config(EngineConfig::serial()));
        assert!(!app.snapshot_status().loaded, "nothing to restore yet");
        let before0 = app.handle(&request("/v1/table2", &[]));
        assert_eq!(before0.status, 200);
        let accepted = app.handle(&post("/v1/challenge", &(delta_to_json(&delta) + "\n")));
        assert_eq!(
            accepted.status,
            200,
            "{}",
            String::from_utf8_lossy(&accepted.body)
        );
        let before1 = app.handle(&request("/v1/table2", &[("epoch", "1")]));
        assert_eq!(before1.status, 200);
        let snap = app.handle(&post("/v1/snapshot", ""));
        assert_eq!(snap.status, 200, "{}", String::from_utf8_lossy(&snap.body));
        let reply = caf_obs::json::parse(String::from_utf8(snap.body).unwrap().trim_end()).unwrap();
        assert_eq!(reply.get("epoch").and_then(|j| j.as_u64()), Some(1));
        wait_for_background_snapshot(&app);
        drop(app);

        // Serial restart: restored views serve byte-identically, with
        // zero recomputation.
        let app = App::new(config(EngineConfig::serial()));
        assert!(app.snapshot_status().loaded, "snapshot must restore");
        assert_eq!(app.snapshot_status().epoch, 1);
        let after0 = app.handle(&request("/v1/table2", &[]));
        assert_eq!(after0.status, 200);
        assert_eq!(after0.body, before0.body, "epoch 0 bytes must match");
        let after1 = app.handle(&request("/v1/table2", &[("epoch", "1")]));
        assert_eq!(after1.status, 200);
        assert_eq!(after1.body, before1.body, "epoch 1 bytes must match");
        assert_eq!(
            app.cache_stats().misses,
            0,
            "restored views must serve without recomputation"
        );
        let health = app.handle(&request("/healthz", &[]));
        let parsed =
            caf_obs::json::parse(String::from_utf8(health.body).unwrap().trim_end()).unwrap();
        assert_eq!(parsed.get("epoch").and_then(|j| j.as_u64()), Some(1));
        let snapshot_obj = parsed.get("snapshot").expect("snapshot key");
        assert_eq!(
            snapshot_obj.get("loaded").and_then(|j| j.as_bool()),
            Some(true)
        );
        assert_eq!(snapshot_obj.get("epoch").and_then(|j| j.as_u64()), Some(1));

        // Challenges continue across the restart: the incremental audit
        // is rebuilt lazily on the restored world, and the result is
        // byte-identical to a never-restarted from-scratch rebuild.
        let delta2 = ChallengeDelta {
            correction: Correction::Availability { rate_ppm: 75_000 },
            ..delta
        };
        let accepted = app.handle(&post("/v1/challenge", &(delta_to_json(&delta2) + "\n")));
        assert_eq!(
            accepted.status,
            200,
            "{}",
            String::from_utf8_lossy(&accepted.body)
        );
        assert_eq!(app.live_epoch(), 2);
        let after2 = app.handle(&request("/v1/table2", &[("epoch", "2")]));
        assert_eq!(after2.status, 200);
        let fixture = Fixture::build_tuned_at(
            seed,
            scale,
            &UsState::study_states(),
            EngineConfig::serial(),
            &[delta, delta2],
        )
        .unwrap();
        let expected = artifact::to_canonical_bytes(
            &ScenarioMeta::new(seed, scale)
                .at_epoch(2)
                .wrap(artifact::table2(&fixture.dataset)),
        );
        assert_eq!(after2.body, expected.into_bytes());
        wait_for_background_snapshot(&app);
        drop(app);

        // A different worker count must restore the very same bytes
        // (the snapshot is engine-independent by construction).
        let app = App::new(config(EngineConfig::with_workers(4)));
        assert!(app.snapshot_status().loaded);
        let again0 = app.handle(&request("/v1/table2", &[]));
        assert_eq!(again0.body, before0.body);
        let again1 = app.handle(&request("/v1/table2", &[("epoch", "1")]));
        assert_eq!(again1.body, before1.body);
        assert_eq!(app.cache_stats().misses, 0);
        wait_for_background_snapshot(&app);
        drop(app);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Robustness: truncation, bit flips, unsupported versions, and
    /// scenario mismatches must all degrade to a cold build that still
    /// serves — never a panic, never wrong bytes.
    #[test]
    fn corrupt_or_mismatched_snapshots_fall_back_to_cold_build() {
        let dir = snap_temp_dir("robust");
        let config = AppConfig {
            default_scale: 2000,
            engine: EngineConfig::serial(),
            snapshot_dir: Some(dir.clone()),
            ..AppConfig::default()
        };

        // Seed a pristine epoch-0 snapshot through the API.
        {
            let app = App::new(config.clone());
            assert_eq!(app.handle(&request("/v1/table2", &[])).status, 200);
            assert_eq!(app.handle(&post("/v1/snapshot", "")).status, 200);
        }
        let path = dir.join(snapshot::file_name(config.default_seed, 2000, 0));
        let pristine = fs::read(&path).unwrap();

        // Truncated file: rejected at parse, and the server still
        // serves via a cold compute.
        fs::write(&path, &pristine[..pristine.len() / 2]).unwrap();
        let app = App::new(config.clone());
        assert!(!app.snapshot_status().loaded, "truncated must be rejected");
        assert_eq!(app.handle(&request("/v1/table2", &[])).status, 200);

        // A single flipped byte: the content hash catches it.
        let mut flipped = pristine.clone();
        let mid = flipped.len() - 10;
        flipped[mid] ^= 0x01;
        fs::write(&path, &flipped).unwrap();
        let app = App::new(config.clone());
        assert!(!app.snapshot_status().loaded, "bit flip must be rejected");

        // An unsupported format version: skipped during discovery.
        let mut wrong_version = pristine.clone();
        wrong_version[8] = 0xff;
        fs::write(&path, &wrong_version).unwrap();
        let app = App::new(config.clone());
        assert!(
            !app.snapshot_status().loaded,
            "future format version must be rejected"
        );

        // A snapshot for another scenario: ignored by discovery.
        fs::write(&path, &pristine).unwrap();
        let other = App::new(AppConfig {
            default_scale: 2500,
            ..config.clone()
        });
        assert!(
            !other.snapshot_status().loaded,
            "snapshot for a different scale must be ignored"
        );

        // Sanity: the pristine file does restore.
        let app = App::new(config);
        assert!(app.snapshot_status().loaded);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The disk tier under a capacity-1 cache: eviction spills, the
    /// next request promotes the spilled entry byte-identically instead
    /// of recomputing.
    #[test]
    fn disk_tier_promotes_evicted_scenarios_byte_identically() {
        let dir = snap_temp_dir("tier");
        let app = App::new(AppConfig {
            default_scale: 2000,
            engine: EngineConfig::serial(),
            cache_capacity: 1,
            snapshot_dir: Some(dir.clone()),
            ..AppConfig::default()
        });
        let a1 = app.handle(&request("/v1/table2", &[]));
        assert_eq!(a1.status, 200);
        // A second scenario evicts the first from the one-slot cache,
        // spilling it to disk.
        let b = app.handle(&request("/v1/table2", &[("scale", "2500")]));
        assert_eq!(b.status, 200);
        let stats = app.cache_stats();
        assert_eq!((stats.misses, stats.spills), (2, 1), "{stats:?}");
        // The first scenario promotes from the tier: byte-identical,
        // and no third computation.
        let a2 = app.handle(&request("/v1/table2", &[]));
        assert_eq!(a2.status, 200);
        assert_eq!(a2.body, a1.body, "promoted bytes must equal computed bytes");
        let stats = app.cache_stats();
        assert_eq!((stats.misses, stats.disk_hits), (2, 1), "{stats:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_route_requires_configuration() {
        let app = tiny_app();
        let denied = app.handle(&post("/v1/snapshot", ""));
        assert_eq!(denied.status, 400);
        let body = String::from_utf8(denied.body).unwrap();
        assert!(body.contains("--snapshot-dir"), "{body}");
        assert_eq!(app.handle(&request("/v1/snapshot", &[])).status, 405);
    }

    #[test]
    fn sweep_serves_cached_byte_identical_grids() {
        // The default cache holds 4 entries; this grid has 16 cells,
        // and without a disk tier an eviction means recomputation.
        let app = App::new(AppConfig {
            default_scale: 2000,
            engine: EngineConfig::serial(),
            cache_capacity: 32,
            ..AppConfig::default()
        });
        let grid = [
            ("states", "VT,NH"),
            ("tiers", "10_1,25_3"),
            ("caps", "0.75,1.0"),
            ("rules", "status_quo,full_buildout"),
        ];
        let first = app.handle(&request("/v1/sweep", &grid));
        assert_eq!(
            first.status,
            200,
            "{}",
            String::from_utf8_lossy(&first.body)
        );
        let body = caf_obs::json::parse(String::from_utf8(first.body.clone()).unwrap().trim_end())
            .unwrap();
        let artifact = body.get("artifact").expect("canonical envelope");
        assert_eq!(artifact.get("count").and_then(|j| j.as_u64()), Some(16));
        let Some(Json::Arr(cells)) = artifact.get("cells") else {
            panic!("cells array missing");
        };
        assert_eq!(cells.len(), 16);
        // Cells arrive in canonical grid order with their axes inline.
        assert_eq!(cells[0].get("state").and_then(|j| j.as_str()), Some("VT"));
        assert_eq!(
            cells[15].get("subsidy_rule").and_then(|j| j.as_str()),
            Some("full_buildout")
        );

        // Every cell is now cached: the re-request hits 16 times and
        // returns byte-identical bytes.
        let misses_before = app.cache_stats().misses;
        let second = app.handle(&request("/v1/sweep", &grid));
        assert_eq!(second.status, 200);
        assert_eq!(second.body, first.body);
        let stats = app.cache_stats();
        assert_eq!(stats.misses, misses_before, "no recomputation on re-run");
        assert!(stats.hits >= 16, "{stats:?}");

        // A sub-grid of the same axes reuses the same cell entries.
        let sub = app.handle(&request(
            "/v1/sweep",
            &[("states", "VT"), ("tiers", "25_3"), ("caps", "0.75")],
        ));
        assert_eq!(sub.status, 200);
        assert_eq!(app.cache_stats().misses, misses_before);

        // Conditional GET round-trips the ETag.
        let etag = first
            .headers
            .iter()
            .find(|(name, _)| name == "ETag")
            .map(|(_, value)| value.clone())
            .expect("sweep responses carry an ETag");
        let mut conditional = request("/v1/sweep", &grid);
        conditional
            .headers
            .push(("if-none-match".to_string(), etag));
        assert_eq!(app.handle(&conditional).status, 304);
    }

    #[test]
    fn sweep_rejects_bad_grids_with_400() {
        let app = tiny_app();
        for query in [
            vec![("states", "ZZ")],
            vec![("states", "VT,VT")],
            vec![("scales", "0")],
            vec![("scales", "abc")],
            vec![("tiers", "50_5")],
            vec![("caps", "0")],
            vec![("caps", "11")],
            vec![("rules", "statusquo")],
            vec![("epoch", "1")],
            vec![("isp", "AT&T")],
            vec![("scale", "2000")],
            // 15 states x 3 tiers x 2 caps = 90 cells > the inline cap.
            vec![
                ("states", "OH,MT,NM,CA,UT,WV,VT,AL,WI,GA,IL,NC,KS,NH,MN"),
                ("tiers", "10_1,25_3,100_20"),
                ("caps", "0.9,1.0"),
            ],
        ] {
            let response = app.handle(&request("/v1/sweep", &query));
            assert_eq!(response.status, 400, "query {query:?} must be rejected");
        }
    }

    #[test]
    fn sweep_cells_round_trip_through_the_disk_tier() {
        let dir = snap_temp_dir("sweeptier");
        let app = App::new(AppConfig {
            default_scale: 2000,
            engine: EngineConfig::serial(),
            cache_capacity: 2,
            snapshot_dir: Some(dir.clone()),
            ..AppConfig::default()
        });
        // Four cells through a two-slot cache: the overflow spills.
        let grid = [("states", "VT,NH"), ("caps", "0.75,1.0")];
        let first = app.handle(&request("/v1/sweep", &grid));
        assert_eq!(first.status, 200);
        let stats = app.cache_stats();
        assert!(stats.spills >= 2, "{stats:?}");
        // The re-request promotes the spilled cells byte-identically.
        let second = app.handle(&request("/v1/sweep", &grid));
        assert_eq!(second.status, 200);
        assert_eq!(second.body, first.body, "promoted bytes must match");
        let stats = app.cache_stats();
        assert_eq!(stats.misses, 4, "no recomputation after the spill");
        assert!(stats.disk_hits >= 1, "{stats:?}");
        wait_for_background_snapshot(&app);
        drop(app);
        fs::remove_dir_all(&dir).unwrap();
    }
}
