//! The application handler: routes HTTP requests to cached scenario
//! computations and renders canonical artifact bytes.
//!
//! The cache key is the *canonical scenario identity* — the parameters
//! that change the result. Compute-side knobs (`workers=`) are
//! deliberately excluded: asking for the same scenario at a different
//! worker count must hit the same entry, and — by the engine's
//! determinism contract — would have produced byte-identical artifacts
//! anyway. That contract is what lets `/v1/*` responses be compared
//! byte-for-byte against `repro --artifacts` goldens in CI.

use crate::cache::{CacheError, ScenarioCache};
use crate::http::{Request, Response};
use crate::server::Handler;
use caf_bench::Fixture;
use caf_core::{artifact, EngineConfig, Q3Analysis, ScenarioMeta};
use caf_geo::UsState;
use caf_synth::{Isp, World};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which pipeline a cache entry materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Kind {
    /// The Q1/Q2 fixture: world + campaign + serviceability/compliance.
    Q12,
    /// The Q3 monopoly/competitive analysis (its own world build).
    Q3,
}

/// Canonical scenario identity: result-changing parameters only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ScenarioKey {
    kind: Kind,
    seed: u64,
    scale: u32,
}

/// A materialized scenario bundle held by the cache.
enum Bundle {
    Q12(Box<Fixture>),
    Q3(Box<(World, Q3Analysis)>),
}

/// Tuning for [`App`].
#[derive(Debug, Clone)]
pub struct AppConfig {
    /// Seed used when a request omits `seed=`.
    pub default_seed: u64,
    /// Downscale factor used when a request omits `scale=`.
    pub default_scale: u32,
    /// Base engine budget for scenario computation; concurrent
    /// computations split it via [`EngineConfig::share`].
    pub engine: EngineConfig,
    /// Ready entries the scenario cache retains (LRU beyond this).
    pub cache_capacity: usize,
    /// How long a request waits on another request's in-flight
    /// computation before giving up with `503`.
    pub compute_timeout: Duration,
    /// Smallest accepted `scale=` (a low downscale factor means a huge
    /// world; this bounds per-request memory/CPU).
    pub min_scale: u32,
}

impl Default for AppConfig {
    fn default() -> AppConfig {
        AppConfig {
            default_seed: 0xCAF_2024,
            default_scale: 150,
            engine: EngineConfig::auto(),
            cache_capacity: 4,
            compute_timeout: Duration::from_secs(120),
            min_scale: 1,
        }
    }
}

/// The serving application: endpoint routing + scenario cache.
pub struct App {
    config: AppConfig,
    cache: ScenarioCache<ScenarioKey, Bundle>,
    active_computes: Arc<AtomicUsize>,
}

/// RAII share of the compute budget; see [`App::compute_engine`].
struct ActiveGuard(Arc<AtomicUsize>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl App {
    /// Creates the application with the given tuning.
    pub fn new(config: AppConfig) -> App {
        let cache = ScenarioCache::new(config.cache_capacity);
        App {
            config,
            cache,
            active_computes: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Exact cache counters (used by `serve_bench` for the hit ratio).
    pub fn cache_stats(&self) -> crate::cache::StatsSnapshot {
        self.cache.stats()
    }

    /// The `/metrics` report for this server process.
    fn metrics_response(&self) -> Response {
        let mut meta = BTreeMap::new();
        meta.insert("tool".to_string(), "caf-serve".to_string());
        meta.insert("seed".to_string(), self.config.default_seed.to_string());
        meta.insert(
            "workers".to_string(),
            self.config.engine.workers.to_string(),
        );
        meta.insert("scale".to_string(), self.config.default_scale.to_string());
        meta.insert(
            "cache_capacity".to_string(),
            self.config.cache_capacity.to_string(),
        );
        let mut body = caf_obs::RunReport::collect(meta).to_json_pretty();
        body.push('\n');
        Response::json(body.into_bytes())
    }

    /// Claims a share of the engine budget for one computation. The
    /// split is `base.share(active)` so two concurrent cold scenarios
    /// each get half the workers instead of oversubscribing the host.
    fn compute_engine(&self, base: EngineConfig) -> (EngineConfig, ActiveGuard) {
        let active = self.active_computes.fetch_add(1, Ordering::SeqCst) + 1;
        caf_obs::gauge("caf.serve.computes.active", active as u64);
        (
            base.share(active),
            ActiveGuard(Arc::clone(&self.active_computes)),
        )
    }

    fn scenario_response(&self, route: &str, request: &Request) -> Response {
        let params = match ScenarioParams::from_request(self, request) {
            Ok(params) => params,
            Err(response) => return *response,
        };
        if params.isp.is_some() && !matches!(route, "serviceability" | "compliance") {
            return Response::error(
                400,
                &format!("the isp filter is not supported on /v1/{route}"),
            );
        }

        let key = match route {
            "q3" => ScenarioKey {
                kind: Kind::Q3,
                seed: params.seed,
                scale: params.meta.q3_scale,
            },
            _ => ScenarioKey {
                kind: Kind::Q12,
                seed: params.seed,
                scale: params.meta.scale,
            },
        };
        let result = self
            .cache
            .get_or_compute(key, self.config.compute_timeout, || {
                let (engine, _guard) = self.compute_engine(params.engine);
                let _span = caf_obs::span_with(|| format!("serve.compute.{:?}", key.kind));
                match key.kind {
                    Kind::Q12 => Ok(Bundle::Q12(Box::new(Fixture::build_tuned(
                        key.seed,
                        key.scale,
                        &UsState::study_states(),
                        engine,
                    )))),
                    Kind::Q3 => Ok(Bundle::Q3(Box::new(Fixture::build_q3_tuned(
                        key.seed, key.scale, engine,
                    )))),
                }
            });
        let bundle = match result {
            Ok((bundle, _outcome)) => bundle,
            Err(CacheError::JoinTimeout) => {
                return Response::error(503, "scenario computation still in flight; retry shortly")
                    .with_header("Retry-After", "1".to_string());
            }
            Err(CacheError::Failed(message)) => {
                return Response::error(500, &format!("scenario computation failed: {message}"));
            }
        };

        let body = match (&*bundle, route) {
            (Bundle::Q12(fixture), "serviceability") => {
                artifact::serviceability(&fixture.serviceability, params.isp)
            }
            (Bundle::Q12(fixture), "compliance") => {
                artifact::compliance(&fixture.compliance, &fixture.dataset, params.isp)
            }
            (Bundle::Q12(fixture), "table2") => artifact::table2(&fixture.dataset),
            (Bundle::Q3(world_q3), "q3") => artifact::q3(&world_q3.1),
            _ => return Response::error(500, "bundle/route mismatch"),
        };
        let bytes = artifact::to_canonical_bytes(&params.meta.wrap(body));
        let etag = format!("\"{:016x}\"", fnv1a(bytes.as_bytes()));
        Response::json(bytes.into_bytes()).with_header("ETag", etag)
    }
}

/// 64-bit FNV-1a over the canonical body; deterministic across runs,
/// so clients can revalidate artifacts cheaply.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Parsed and validated `/v1/*` query parameters.
struct ScenarioParams {
    seed: u64,
    meta: ScenarioMeta,
    engine: EngineConfig,
    isp: Option<Isp>,
}

impl ScenarioParams {
    fn from_request(app: &App, request: &Request) -> Result<ScenarioParams, Box<Response>> {
        let seed = parse_or(request, "seed", app.config.default_seed)?;
        // The floor is never below 1: a zero scale would divide by zero
        // in `SynthConfig::scaled` and panic mid-computation.
        let floor = app.config.min_scale.max(1);
        let scale = parse_or(request, "scale", app.config.default_scale)?;
        check_scale_floor("scale", scale, floor)?;
        let mut meta = ScenarioMeta::new(seed, scale);
        meta.q3_scale = parse_or(request, "q3_scale", meta.q3_scale)?;
        check_scale_floor("q3_scale", meta.q3_scale, floor)?;
        let engine = match request.param("workers") {
            None => app.config.engine,
            Some(raw) => {
                let workers: usize = raw.parse().map_err(|_| {
                    Box::new(Response::error(400, &format!("invalid workers={raw:?}")))
                })?;
                if workers == 0 || workers > 512 {
                    return Err(Box::new(Response::error(
                        400,
                        "workers must be between 1 and 512",
                    )));
                }
                EngineConfig::with_workers(workers)
            }
        };
        let isp = match request.param("isp") {
            None => None,
            Some(raw) => Some(parse_isp(raw).ok_or_else(|| {
                let known: Vec<&str> = Isp::all().iter().map(|isp| isp.name()).collect();
                Box::new(Response::error(
                    400,
                    &format!("unknown isp {raw:?}; known: {}", known.join(", ")),
                ))
            })?),
        };
        Ok(ScenarioParams {
            seed,
            meta,
            engine,
            isp,
        })
    }
}

/// Rejects scales below the server's floor (which is itself at least 1,
/// so a divide-by-zero scale can never reach the synth pipeline).
fn check_scale_floor(name: &str, value: u32, floor: u32) -> Result<(), Box<Response>> {
    if value < floor {
        return Err(Box::new(Response::error(
            400,
            &format!("{name}={value} is below the server's minimum of {floor}"),
        )));
    }
    Ok(())
}

fn parse_or<T: std::str::FromStr>(
    request: &Request,
    name: &str,
    default: T,
) -> Result<T, Box<Response>> {
    match request.param(name) {
        None => Ok(default),
        Some(raw) => raw.parse().map_err(|_| {
            Box::new(Response::error(
                400,
                &format!("invalid {name}={raw:?}: expected a non-negative integer"),
            ))
        }),
    }
}

/// Case-insensitive match against the ISP registry names.
fn parse_isp(raw: &str) -> Option<Isp> {
    Isp::all()
        .into_iter()
        .find(|isp| isp.name().eq_ignore_ascii_case(raw))
}

impl Handler for App {
    fn handle(&self, request: &Request) -> Response {
        // Span names are interned forever by the caf-obs registry, so
        // only recognized routes get their own label; every other path
        // (arbitrary client input) shares one fixed name to keep the
        // registry and the /metrics body bounded.
        let label = match request.path.as_str() {
            "/healthz" => "serve.route.healthz",
            "/metrics" => "serve.route.metrics",
            "/quitquitquit" => "serve.route.quitquitquit",
            "/v1/serviceability" => "serve.route.v1.serviceability",
            "/v1/compliance" => "serve.route.v1.compliance",
            "/v1/table2" => "serve.route.v1.table2",
            "/v1/q3" => "serve.route.v1.q3",
            _ => "serve.route.not_found",
        };
        let _span = caf_obs::span(label);
        match request.path.as_str() {
            "/healthz" => Response::text("ok\n"),
            "/metrics" => self.metrics_response(),
            "/quitquitquit" => {
                let mut response = Response::text("shutting down\n");
                response.shutdown = true;
                response
            }
            path => match path.strip_prefix("/v1/") {
                Some(route @ ("serviceability" | "compliance" | "table2" | "q3")) => {
                    self.scenario_response(route, request)
                }
                _ => Response::error(404, &format!("no such endpoint: {path}")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    fn tiny_app() -> App {
        App::new(AppConfig {
            default_scale: 2000,
            engine: EngineConfig::serial(),
            ..AppConfig::default()
        })
    }

    #[test]
    fn rejects_bad_parameters_with_400() {
        let app = tiny_app();
        for (path, query) in [
            ("/v1/table2", vec![("seed", "not-a-number")]),
            ("/v1/table2", vec![("scale", "-3")]),
            ("/v1/table2", vec![("scale", "0")]),
            ("/v1/q3", vec![("q3_scale", "0")]), // would divide by zero
            ("/v1/table2", vec![("workers", "0")]),
            ("/v1/table2", vec![("isp", "Nonexistent ISP")]),
            ("/v1/table2", vec![("isp", "AT&T")]), // no filter on table2
            ("/v1/q3", vec![("isp", "AT&T")]),
        ] {
            let response = app.handle(&request(path, &query));
            assert_eq!(response.status, 400, "{path} {query:?}");
        }
        let response = app.handle(&request("/v1/nope", &[]));
        assert_eq!(response.status, 404);
        assert_eq!(app.cache_stats().misses, 0, "no computation was started");
    }

    #[test]
    fn scale_floor_is_enforced() {
        let app = App::new(AppConfig {
            min_scale: 100,
            ..AppConfig::default()
        });
        let response = app.handle(&request("/v1/table2", &[("scale", "99")]));
        assert_eq!(response.status, 400);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("minimum of 100"), "{body}");
        // q3_scale is a world scale too; the same floor applies.
        let response = app.handle(&request("/v1/q3", &[("q3_scale", "99")]));
        assert_eq!(response.status, 400);
        let body = String::from_utf8(response.body).unwrap();
        assert!(body.contains("q3_scale=99"), "{body}");
        assert_eq!(app.cache_stats().misses, 0, "no computation was started");
    }

    #[test]
    fn health_and_shutdown_routes() {
        let app = tiny_app();
        let health = app.handle(&request("/healthz", &[]));
        assert_eq!((health.status, health.shutdown), (200, false));
        assert_eq!(health.body, b"ok\n");
        let quit = app.handle(&request("/quitquitquit", &[]));
        assert_eq!((quit.status, quit.shutdown), (200, true));
    }

    #[test]
    fn isp_names_parse_case_insensitively() {
        assert_eq!(parse_isp("AT&T"), Some(Isp::Att));
        assert_eq!(parse_isp("at&t"), Some(Isp::Att));
        assert_eq!(parse_isp("CenturyLink"), Some(Isp::CenturyLink));
        assert_eq!(parse_isp("Comcast"), None);
    }
}
