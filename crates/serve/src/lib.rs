//! # caf-serve — a cached, backpressured query-serving layer
//!
//! The audit pipeline in `caf-core` is batch-shaped: `repro` builds a
//! synthetic world, runs the campaign, and prints Table 2. This crate
//! puts the same pipeline behind a tiny std-only HTTP/1.1 server so a
//! reviewer (or the CI gate in `ci.sh`) can *query* scenarios instead
//! of re-running binaries:
//!
//! * `GET /healthz` — liveness probe.
//! * `GET /metrics` — a `caf-obs` [`RunReport`](caf_obs::RunReport)
//!   for the server process, gated by `metrics_check` in CI.
//! * `GET /v1/{serviceability,compliance,q3,table2}` — canonical
//!   artifact JSON, **byte-identical** to what
//!   `repro --artifacts DIR` writes for the same `(seed, scale)`
//!   scenario at any server worker count.
//! * `GET /quitquitquit` — graceful shutdown (the server is std-only
//!   and `forbid(unsafe_code)`, so there is no signal handler; see
//!   `DESIGN.md`).
//!
//! The heart is the [`cache::ScenarioCache`]: materialized scenario
//! bundles (world + audit dataset + analyses) keyed by the canonical
//! scenario parameters, with LRU eviction and **single-flight**
//! deduplication — N concurrent requests for the same uncached
//! scenario trigger exactly one computation; the other N−1 block on
//! the in-flight entry and share the result.
//!
//! Backpressure is explicit and bounded everywhere: a fixed worker
//! pool (sized via [`caf_exec::EngineConfig::share`]) drains a bounded
//! accept queue; when the queue is full the acceptor sheds load with
//! an immediate `503` instead of queueing unboundedly, and
//! single-flight joiners time out (also `503`) rather than waiting
//! forever on a stuck computation.
//!
//! Two persistence layers extend the cache beyond process lifetime and
//! RAM (both built on the `caf-snap` container format):
//!
//! * [`snapshot`] — versioned world snapshots on disk. With
//!   `--snapshot-dir`, the server writes a snapshot after each epoch
//!   advance and restores the newest compatible one at startup,
//!   serving its first byte-identical response in milliseconds instead
//!   of rebuilding the world.
//! * [`tier`] — a disk LRU tier under the in-memory cache. Evicted
//!   ready entries spill to disk keyed by scenario + epoch and are
//!   promoted back on the next request, so the working set can exceed
//!   the in-memory capacity without paying recomputation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod scenario;
pub mod server;
pub mod snapshot;
pub mod tier;

pub use cache::{CacheOutcome, ScenarioCache};
pub use http::{Request, Response};
pub use scenario::{App, AppConfig};
pub use server::{Handler, ServeConfig, Server};
