//! The bounded accept/worker machinery.
//!
//! One acceptor thread pulls connections off the listener and pushes
//! them into a **bounded** `sync_channel`; a fixed pool of worker
//! threads drains it. The two overload responses are explicit:
//!
//! * queue full → the *acceptor* writes an immediate `503` and closes
//!   the connection (`caf.serve.shed`), so a burst degrades to fast
//!   rejections instead of unbounded queueing or accept-backlog
//!   timeouts;
//! * a single worker stuck on a slow client is bounded by per-socket
//!   read/write timeouts.
//!
//! Shutdown is cooperative: any handler response with
//! `shutdown = true` (the `/quitquitquit` endpoint), or an external
//! [`ShutdownHandle::trigger`], flips the shared flag; the acceptor is
//! unblocked with a loopback connection, drops the channel sender, and
//! the workers drain whatever was already queued and exit. `join`
//! returns only after every thread has exited, so a clean process exit
//! proves no thread leaked — `ci.sh` gates on exactly that.

use crate::http::{parse_request, Request, Response};
use caf_obs::{FlightRecorder, TraceCtx, TraceId};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Sizing and limits for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:0` for an ephemeral port.
    pub addr: String,
    /// Worker threads draining the accept queue.
    pub workers: usize,
    /// Accept-queue depth; connections beyond it are shed with `503`.
    pub queue: usize,
    /// Per-socket read/write timeout (slow-client bound).
    pub io_timeout: Duration,
    /// Seed for deterministic request IDs: the `seq`-th accepted
    /// connection gets `TraceId::derive(trace_seed, seq)`, echoed as
    /// `X-Request-Id` on every response.
    pub trace_seed: u64,
    /// Where finished request traces land (`/v1/debug/traces` reads the
    /// same recorder). `None` keeps IDs but records no traces.
    pub recorder: Option<Arc<FlightRecorder>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue: 64,
            io_timeout: Duration::from_secs(10),
            trace_seed: 0,
            recorder: None,
        }
    }
}

/// Routes one parsed request to a response. Implemented by
/// [`crate::App`] in production and by closures in tests.
pub trait Handler: Send + Sync + 'static {
    /// Produces the response for `request`.
    fn handle(&self, request: &Request) -> Response;
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

/// Triggers graceful shutdown from another thread (or from the worker
/// that served `/quitquitquit`).
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Flips the shutdown flag and unblocks the acceptor with a
    /// throwaway loopback connection. Idempotent.
    pub fn trigger(&self) {
        if self.flag.swap(true, Ordering::SeqCst) {
            return;
        }
        // The dummy connection is closed immediately; if a worker
        // drains it, the EOF parses as a 400 and the socket is gone.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server: acceptor + workers, plus the bound address.
pub struct Server {
    addr: SocketAddr,
    shutdown: ShutdownHandle,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts the acceptor and worker threads.
    pub fn start(config: ServeConfig, handler: Arc<dyn Handler>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let flag = Arc::new(AtomicBool::new(false));
        let shutdown = ShutdownHandle {
            flag: Arc::clone(&flag),
            addr,
        };
        let workers = config.workers.max(1);
        let queue = config.queue.max(1);
        let (sender, receiver) = sync_channel::<(u64, TcpStream)>(queue);
        let receiver = Arc::new(Mutex::new(receiver));
        let depth = Arc::new(AtomicU64::new(0));
        let trace_seed = config.trace_seed;
        let recorder = config.recorder.clone();

        let acceptor = {
            let flag = Arc::clone(&flag);
            let depth = Arc::clone(&depth);
            let recorder = recorder.clone();
            std::thread::Builder::new()
                .name("serve-acceptor".to_string())
                .spawn(move || {
                    // Accept counter: request IDs are a pure function of
                    // (trace_seed, seq), so accept order fixes identity —
                    // shed connections consume a seq too.
                    let mut accept_seq: u64 = 0;
                    for stream in listener.incoming() {
                        if flag.load(Ordering::SeqCst) {
                            break;
                        }
                        let stream = match stream {
                            Ok(stream) => stream,
                            Err(_) => continue,
                        };
                        let seq = accept_seq;
                        accept_seq += 1;
                        // Count the slot before handing the stream over, so a
                        // fast worker's decrement can never race ahead of it.
                        let now = depth.fetch_add(1, Ordering::SeqCst) + 1;
                        caf_obs::gauge("caf.serve.queue.depth", now);
                        match sender.try_send((seq, stream)) {
                            Ok(()) => {}
                            Err(TrySendError::Full((seq, stream))) => {
                                depth.fetch_sub(1, Ordering::SeqCst);
                                caf_obs::count("caf.serve.shed", 1);
                                // The 503 body is written off-thread: a slow
                                // client must not stall the single acceptor
                                // during overload, which is exactly when fast
                                // shedding matters. The thread is detached but
                                // bounded by the 1 s write timeout; if spawning
                                // fails the connection is simply dropped.
                                let recorder = recorder.clone();
                                let _ = std::thread::Builder::new()
                                    .name("serve-shed".to_string())
                                    .spawn(move || {
                                        let request_id = TraceId::derive(trace_seed, seq);
                                        // Shed 503s are always kept (5xx),
                                        // so overload leaves a trail in the
                                        // flight recorder.
                                        let trace =
                                            recorder.as_deref().map(|_| TraceCtx::new(request_id));
                                        if let Some(trace) = &trace {
                                            trace.annotate("route", "shed");
                                        }
                                        let mut stream = stream;
                                        let _ =
                                            stream.set_write_timeout(Some(Duration::from_secs(1)));
                                        let _ = Response::error(503, "server accept queue is full")
                                            .with_header("X-Request-Id", request_id.to_hex())
                                            .write_to(&mut stream);
                                        if let (Some(recorder), Some(trace)) =
                                            (recorder.as_deref(), &trace)
                                        {
                                            recorder.finish(trace, 503, "serve.request");
                                        }
                                    });
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                depth.fetch_sub(1, Ordering::SeqCst);
                                break;
                            }
                        }
                    }
                    // Dropping the sender lets workers drain the queue
                    // and observe the disconnect.
                })
                .expect("spawn acceptor thread")
        };

        let worker_handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let handler = Arc::clone(&handler);
                let shutdown = shutdown.clone();
                let depth = Arc::clone(&depth);
                let io_timeout = config.io_timeout;
                let recorder = recorder.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || loop {
                        let next = {
                            let receiver = receiver.lock().unwrap();
                            receiver.recv()
                        };
                        let (seq, stream) = match next {
                            Ok(next) => next,
                            Err(_) => break,
                        };
                        let now = depth.fetch_sub(1, Ordering::SeqCst) - 1;
                        caf_obs::gauge("caf.serve.queue.depth", now);
                        let request_id = TraceId::derive(trace_seed, seq);
                        if serve_connection(
                            stream,
                            handler.as_ref(),
                            io_timeout,
                            request_id,
                            recorder.as_deref(),
                        ) {
                            shutdown.trigger();
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();

        Ok(Server {
            addr,
            shutdown,
            acceptor,
            workers: worker_handles,
        })
    }

    /// The bound socket address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can trigger shutdown from any thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Blocks until the acceptor and every worker have exited.
    pub fn join(self) {
        self.acceptor.join().expect("acceptor thread panicked");
        for worker in self.workers {
            worker.join().expect("worker thread panicked");
        }
    }

    /// Triggers shutdown and waits for every thread to exit.
    pub fn shutdown(self) {
        self.shutdown.trigger();
        self.join();
    }
}

/// Serves one connection; returns true when the response requested
/// server shutdown.
///
/// Every response — parse errors, 405s, panic 500s included — carries
/// `X-Request-Id: <request_id>`. With a recorder present the whole
/// exchange runs under a `serve.request` root span inside a
/// [`TraceCtx`], and the finished trace is filed *before* the response
/// is written, so a client that reads its `X-Request-Id` can
/// immediately find the trace in `/v1/debug/traces`.
fn serve_connection(
    stream: TcpStream,
    handler: &dyn Handler,
    io_timeout: Duration,
    request_id: TraceId,
    recorder: Option<&FlightRecorder>,
) -> bool {
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let started = Instant::now();
    caf_obs::count("caf.serve.requests", 1);
    let trace = recorder.map(|_| TraceCtx::new(request_id));
    let response = {
        let _trace_guard = trace.as_ref().map(|ctx| ctx.enter());
        let _root = caf_obs::span("serve.request");
        let mut reader = BufReader::new(stream);
        let response = match parse_request(&mut reader) {
            Ok(request) => {
                if matches!(request.method.as_str(), "GET" | "POST") {
                    // A panicking handler must cost the client a 500, not the
                    // server a worker thread: an unwound worker never returns
                    // to the recv loop, and `Server::join` would panic on it.
                    // The app's shared state stays coherent across an unwind
                    // (the cache's FlightGuard fails the in-flight entry), so
                    // suppressing the UnwindSafe bound is sound here.
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handler.handle(&request)
                    }))
                    .unwrap_or_else(|_| {
                        caf_obs::count("caf.serve.handler_panics", 1);
                        eprintln!(
                            "caf-serve: handler panicked serving request {}",
                            request_id.to_hex()
                        );
                        Response::error(500, "internal error: handler panicked")
                    })
                } else {
                    Response::error(405, &format!("method {} not supported", request.method))
                }
            }
            Err(err) => Response::error(err.status, &err.message),
        };
        (reader, response)
    };
    let (reader, response) = response;
    caf_obs::count(&format!("caf.serve.http.{}", response.status), 1);
    if let (Some(recorder), Some(ctx)) = (recorder, trace.as_ref()) {
        recorder.finish(ctx, response.status, "serve.request");
    }
    let response = response.with_header("X-Request-Id", request_id.to_hex());
    let mut stream = reader.into_inner();
    let _ = response.write_to(&mut stream);
    caf_obs::observe("caf.serve.request_us", started.elapsed().as_micros() as u64);
    response.shutdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use std::sync::mpsc;

    fn echo_handler() -> Arc<dyn Handler> {
        Arc::new(|request: &Request| {
            if request.path == "/quitquitquit" {
                let mut resp = Response::text("bye\n");
                resp.shutdown = true;
                resp
            } else {
                Response::text(format!("path={}\n", request.path))
            }
        })
    }

    #[test]
    fn serves_requests_and_shuts_down_cleanly() {
        let server = Server::start(ServeConfig::default(), echo_handler()).unwrap();
        let addr = server.addr();
        let (status, body) = client::get(addr, "/hello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"path=/hello\n");
        let (status, _) = client::get(addr, "/quitquitquit").unwrap();
        assert_eq!(status, 200);
        server.join(); // would hang (and time the test out) on a leak
    }

    #[test]
    fn full_queue_sheds_with_503() {
        // One worker stuck on a slow handler + queue of 1: of two more
        // concurrent connections, exactly one fits the queue slot and
        // exactly one is shed. The invariant is order-free — which probe
        // queues and which sheds depends on accept order, and asserting
        // a particular victim (as this test once did, by polling the
        // global queue-depth gauge) races both the acceptor's
        // increment-before-enqueue and other tests sharing the registry.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let release_rx = Mutex::new(release_rx);
        let entered_tx = Mutex::new(entered_tx);
        let handler: Arc<dyn Handler> = Arc::new(move |_request: &Request| {
            let _ = entered_tx.lock().unwrap().send(());
            let _ = release_rx.lock().unwrap().recv();
            Response::text("slow\n")
        });
        let config = ServeConfig {
            workers: 1,
            queue: 1,
            ..ServeConfig::default()
        };
        let server = Server::start(config, handler).unwrap();
        let addr = server.addr();

        // First request occupies the worker (handshake proves the
        // handler has actually started, so the worker cannot drain the
        // queue slot underneath the probes below).
        let first = std::thread::spawn(move || client::get(addr, "/a").unwrap());
        entered_rx.recv().unwrap();

        // Two concurrent probes race for the single queue slot. The
        // worker is blocked, so only the shed probe can finish before
        // the release — either with the 503 body, or with a connection
        // reset when the shed thread closes the socket before the
        // client drains it. Both prove the shed.
        let (result_tx, result_rx) = mpsc::channel();
        for path in ["/b", "/c"] {
            let tx = result_tx.clone();
            std::thread::spawn(move || {
                let _ = tx.send(client::get(addr, path));
            });
        }
        match result_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("one probe must be shed while the worker is blocked")
        {
            Ok((status, body)) => {
                assert_eq!(status, 503);
                assert!(String::from_utf8(body).unwrap().contains("queue is full"));
            }
            Err(err) => assert!(err.contains("read"), "unexpected probe error: {err}"),
        }

        // Unblock the worker: the first request and the queued probe
        // both drain to 200.
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        assert_eq!(first.join().unwrap().0, 200);
        let (status, _) = result_rx
            .recv_timeout(Duration::from_secs(30))
            .expect("the queued probe must drain after release")
            .expect("the queued probe must get a clean response");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn responses_carry_deterministic_request_ids() {
        let config = ServeConfig {
            workers: 1, // serialize accept order == serve order
            trace_seed: 0xCAF_2024,
            ..ServeConfig::default()
        };
        let server = Server::start(config, echo_handler()).unwrap();
        let addr = server.addr();
        let header = |path: &str| {
            let (_, headers, _) = client::get_full(addr, path).unwrap();
            headers
                .iter()
                .find(|(name, _)| name == "x-request-id")
                .map(|(_, value)| value.clone())
                .expect("X-Request-Id on every response")
        };
        // IDs are a pure function of (trace_seed, accept counter).
        assert_eq!(header("/a"), TraceId::derive(0xCAF_2024, 0).to_hex());
        assert_eq!(header("/b"), TraceId::derive(0xCAF_2024, 1).to_hex());
        server.shutdown();
    }

    #[test]
    fn traces_land_in_the_flight_recorder_before_the_response() {
        let recorder = Arc::new(FlightRecorder::new(8, u64::MAX));
        let config = ServeConfig {
            workers: 1,
            trace_seed: 7,
            recorder: Some(Arc::clone(&recorder)),
            ..ServeConfig::default()
        };
        let server = Server::start(config, echo_handler()).unwrap();
        let addr = server.addr();
        let (status, _, _) = client::get_full(addr, "/traced").unwrap();
        assert_eq!(status, 200);
        // The response was written after the trace was filed, so the
        // recorder must already hold it.
        let recent = recorder.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].id, TraceId::derive(7, 0));
        assert_eq!(recent[0].status, 200);
        server.shutdown();
    }

    #[test]
    fn external_trigger_stops_an_idle_server() {
        let server = Server::start(ServeConfig::default(), echo_handler()).unwrap();
        let handle = server.shutdown_handle();
        handle.trigger();
        handle.trigger(); // idempotent
        server.join();
    }

    #[test]
    fn panicking_handler_returns_500_and_keeps_the_worker_alive() {
        let handler: Arc<dyn Handler> = Arc::new(|request: &Request| {
            if request.path == "/boom" {
                panic!("handler exploded");
            }
            Response::text("ok\n")
        });
        let config = ServeConfig {
            workers: 1, // one worker, so survival is actually exercised
            ..ServeConfig::default()
        };
        let server = Server::start(config, handler).unwrap();
        let addr = server.addr();
        let (status, body) = client::get(addr, "/boom").unwrap();
        assert_eq!(status, 500);
        assert!(String::from_utf8(body).unwrap().contains("panicked"));
        let (status, body) = client::get(addr, "/fine").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"ok\n");
        server.shutdown(); // join would panic if the worker had died
    }

    #[test]
    fn unsupported_methods_are_rejected() {
        let server = Server::start(ServeConfig::default(), echo_handler()).unwrap();
        let addr = server.addr();
        let (status, body) =
            client::request(addr, "PUT /hello HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(status, 405);
        assert!(String::from_utf8(body).unwrap().contains("PUT"));
        // POST reaches the handler (the app layer decides per route).
        let (status, _) = client::request(addr, "POST /hello HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }
}
