//! World snapshot files: naming, discovery, and status reporting.
//!
//! A snapshot is a `caf-snap` container holding everything the server
//! needs to answer its default scenario without rebuilding the world:
//!
//! * [`SECTION_WORLD`] — the full [`World`](caf_core::World) (geography,
//!   ground truth, challenge state, epoch).
//! * [`SECTION_LOG`] — the accepted challenge-delta log, so a restored
//!   server can keep serving per-epoch delta prefixes.
//! * [`SECTION_VIEWS`] — rendered scenario bundles (audit dataset +
//!   columnar index per epoch), i.e. the warm contents of the scenario
//!   cache. Restoring these is what makes restart-to-first-200 a
//!   decode instead of a recomputation.
//!
//! Files are named `world-<seed>-<scale>-<epoch>.snap`; the header
//! carries the same identity, and [`find_newest`] trusts only the
//! header (a renamed file cannot lie its way into a restore). Stale or
//! corrupt snapshots are rejected at parse time by `caf-snap`'s
//! checksums and the loader falls back to a cold build — a snapshot
//! can buy time, never wrongness.

use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};

use caf_snap::peek_header;

/// Section tag for the serialized [`World`](caf_core::World).
pub const SECTION_WORLD: u32 = 0x10;
/// Section tag for the accepted challenge-delta log.
pub const SECTION_LOG: u32 = 0x11;
/// Section tag for the warm scenario-cache views.
pub const SECTION_VIEWS: u32 = 0x20;

/// How the server started, surfaced in `/healthz` under `"snapshot"`.
#[derive(Debug, Clone, Default)]
pub struct SnapshotStatus {
    /// True when startup restored a snapshot (vs a cold build).
    pub loaded: bool,
    /// Epoch of the restored snapshot (0 when cold).
    pub epoch: u64,
    /// Microseconds spent restoring the serving views.
    pub restore_us: u64,
    /// File name of the restored snapshot, when any.
    pub file: Option<String>,
    /// Modification time of the restored file (for the `/healthz`
    /// snapshot age).
    pub mtime: Option<std::time::SystemTime>,
}

/// Canonical file name for a snapshot of the given scenario identity.
pub fn file_name(seed: u64, scale: u32, epoch: u64) -> String {
    format!("world-{seed:016x}-{scale}-{epoch}.snap")
}

/// Scans `dir` for the newest snapshot compatible with `(seed, scale)`:
/// every `*.snap` file's header is peeked (magic + format version +
/// identity — no full parse), incompatible or unreadable candidates are
/// skipped, and the highest-epoch match wins. Returns the path and its
/// header epoch.
pub fn find_newest(dir: &Path, seed: u64, scale: u32) -> Option<(PathBuf, u64)> {
    let mut best: Option<(PathBuf, u64)> = None;
    for entry in fs::read_dir(dir).ok()? {
        let Ok(entry) = entry else { continue };
        let path = entry.path();
        let is_snap = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".snap"));
        if !is_snap || !entry.metadata().is_ok_and(|m| m.is_file()) {
            continue;
        }
        // The fixed-width header prefix is 32 bytes; reading just that
        // keeps the scan cheap no matter how large the snapshots are.
        let mut prefix = [0u8; 32];
        let header = fs::File::open(&path)
            .ok()
            .and_then(|mut file| file.read_exact(&mut prefix).ok())
            .and_then(|()| peek_header(&prefix).ok());
        let Some(header) = header else { continue };
        if header.seed != seed || header.scale != scale {
            continue;
        }
        let better = match &best {
            Some((best_path, best_epoch)) => {
                header.epoch > *best_epoch
                    // Deterministic tie-break so repeated scans agree.
                    || (header.epoch == *best_epoch && path < *best_path)
            }
            None => true,
        };
        if better {
            best = Some((path, header.epoch));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use caf_snap::{write_atomic, SnapshotBuilder};

    fn temp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "caf-snapdir-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_snap(dir: &Path, seed: u64, scale: u32, epoch: u64) {
        let mut builder = SnapshotBuilder::new(seed, scale, epoch);
        builder.section(SECTION_WORLD, |w| w.put_u8(1));
        write_atomic(&dir.join(file_name(seed, scale, epoch)), &builder.finish()).unwrap();
    }

    #[test]
    fn newest_compatible_snapshot_wins() {
        let dir = temp_dir("newest");
        write_snap(&dir, 42, 150, 0);
        write_snap(&dir, 42, 150, 3);
        write_snap(&dir, 42, 150, 1);
        write_snap(&dir, 42, 99, 7); // wrong scale
        write_snap(&dir, 7, 150, 9); // wrong seed
        let (path, epoch) = find_newest(&dir, 42, 150).unwrap();
        assert_eq!(epoch, 3);
        assert_eq!(path, dir.join(file_name(42, 150, 3)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_and_foreign_files_are_skipped() {
        let dir = temp_dir("garbage");
        fs::write(dir.join("not-a-snapshot.snap"), b"short").unwrap();
        fs::write(dir.join("junk.snap"), vec![0xaa; 64]).unwrap();
        fs::write(dir.join("readme.txt"), b"ignored").unwrap();
        assert!(find_newest(&dir, 42, 150).is_none());
        write_snap(&dir, 42, 150, 2);
        assert_eq!(find_newest(&dir, 42, 150).unwrap().1, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_a_clean_none() {
        let dir = std::env::temp_dir().join("caf-snapdir-definitely-missing");
        assert!(find_newest(&dir, 1, 1).is_none());
    }
}
