//! `caf-serve` — serve cached audit-pipeline scenarios over HTTP.
//!
//! ```text
//! caf-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!           [--engine-workers N|auto] [--seed N] [--scale N]
//!           [--timeout-ms N] [--min-scale N] [--trace-capacity N]
//!           [--slow-ms N] [--snapshot-dir PATH] [--disk-tier-capacity N]
//!           [--port-file PATH] [--quiet]
//! ```
//!
//! * `--addr` defaults to `127.0.0.1:0` (ephemeral port); the bound
//!   address is printed on stdout and, with `--port-file`, written to a
//!   file so scripts can wait for startup without parsing logs.
//! * `--workers` sizes the HTTP worker pool; `--engine-workers` is the
//!   *compute* budget that concurrent scenario builds share.
//! * `--snapshot-dir` enables persistence: startup restores the newest
//!   compatible snapshot in the directory (millisecond warm restarts),
//!   every epoch advance writes a new snapshot in the background, and
//!   cache evictions spill to a disk LRU tier under `PATH/tier/`
//!   (`--disk-tier-capacity` bounds it, in entries).
//! * `--trace-capacity` sizes the flight recorder behind
//!   `GET /v1/debug/traces` (`0` disables trace capture); `--slow-ms`
//!   is the always-keep threshold and per-route SLO latency target.
//! * There is no signal handler (std-only, `forbid(unsafe_code)`):
//!   stop the server with `GET /quitquitquit`.

use caf_core::EngineConfig;
use caf_serve::{App, AppConfig, ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

fn die(message: &str) -> ! {
    eprintln!("caf-serve: {message}");
    std::process::exit(2);
}

fn main() {
    let mut serve = ServeConfig::default();
    let mut app = AppConfig::default();
    let mut port_file: Option<std::path::PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--addr" => serve.addr = value("--addr"),
            "--workers" => {
                serve.workers = value("--workers")
                    .parse()
                    .unwrap_or_else(|_| die("--workers needs an integer"));
            }
            "--queue" => {
                serve.queue = value("--queue")
                    .parse()
                    .unwrap_or_else(|_| die("--queue needs an integer"));
            }
            "--cache" => {
                app.cache_capacity = value("--cache")
                    .parse()
                    .unwrap_or_else(|_| die("--cache needs an integer"));
            }
            "--engine-workers" => {
                let raw = value("--engine-workers");
                app.engine = if raw == "auto" {
                    EngineConfig::auto()
                } else {
                    EngineConfig::with_workers(
                        raw.parse()
                            .unwrap_or_else(|_| die("--engine-workers needs an integer or auto")),
                    )
                };
            }
            "--seed" => {
                app.default_seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an integer"));
            }
            "--scale" => {
                app.default_scale = value("--scale")
                    .parse()
                    .unwrap_or_else(|_| die("--scale needs an integer"));
            }
            "--timeout-ms" => {
                let ms: u64 = value("--timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| die("--timeout-ms needs an integer"));
                app.compute_timeout = Duration::from_millis(ms);
                serve.io_timeout = Duration::from_millis(ms.max(1_000));
            }
            "--min-scale" => {
                app.min_scale = value("--min-scale")
                    .parse()
                    .unwrap_or_else(|_| die("--min-scale needs an integer"));
            }
            "--trace-capacity" => {
                app.trace_capacity = value("--trace-capacity")
                    .parse()
                    .unwrap_or_else(|_| die("--trace-capacity needs an integer"));
            }
            "--slow-ms" => {
                app.slow_ms = value("--slow-ms")
                    .parse()
                    .unwrap_or_else(|_| die("--slow-ms needs an integer"));
            }
            "--snapshot-dir" => app.snapshot_dir = Some(value("--snapshot-dir").into()),
            "--disk-tier-capacity" => {
                app.disk_tier_capacity = value("--disk-tier-capacity")
                    .parse()
                    .unwrap_or_else(|_| die("--disk-tier-capacity needs an integer"));
            }
            "--port-file" => port_file = Some(value("--port-file").into()),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "caf-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N] \
                     [--engine-workers N|auto] [--seed N] [--scale N] [--timeout-ms N] \
                     [--min-scale N] [--trace-capacity N] [--slow-ms N] \
                     [--snapshot-dir PATH] [--disk-tier-capacity N] \
                     [--port-file PATH] [--quiet]"
                );
                return;
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }

    caf_obs::set_enabled(true);
    let _startup = caf_obs::span("serve.startup");
    let handler = Arc::new(App::new(app.clone()));
    // Trace IDs are minted from the scenario seed, so a rerun against
    // the same seed produces the same request-id sequence — reproducing
    // a trace from a bug report is a matter of replaying the requests.
    serve.trace_seed = app.default_seed;
    if app.trace_capacity > 0 {
        serve.recorder = Some(handler.recorder());
    }
    let server = Server::start(
        serve.clone(),
        Arc::clone(&handler) as Arc<dyn caf_serve::Handler>,
    )
    .unwrap_or_else(|e| die(&format!("bind {}: {e}", serve.addr)));
    let addr = server.addr();
    drop(_startup);

    if let Some(path) = &port_file {
        // Write-then-rename so a watcher never reads a partial file.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, format!("{addr}\n"))
            .and_then(|()| std::fs::rename(&tmp, path))
            .unwrap_or_else(|e| die(&format!("write port file {path:?}: {e}")));
    }
    if !quiet {
        println!(
            "caf-serve: listening on http://{addr} (http workers {}, queue {}, \
             engine workers {}, cache {}, default seed {:#x} scale {})",
            serve.workers,
            serve.queue,
            app.engine.workers,
            app.cache_capacity,
            app.default_seed,
            app.default_scale,
        );
        if let Some(dir) = &app.snapshot_dir {
            let status = handler.snapshot_status();
            if status.loaded {
                println!(
                    "caf-serve: restored snapshot {} (epoch {}) in {:.1} ms from {}",
                    status.file.as_deref().unwrap_or("?"),
                    status.epoch,
                    status.restore_us as f64 / 1e3,
                    dir.display(),
                );
            } else {
                println!(
                    "caf-serve: no compatible snapshot in {} (cold start); \
                     snapshots will be written there after epoch advances",
                    dir.display(),
                );
            }
        }
        println!("caf-serve: GET /quitquitquit to stop (no signal handler)");
    }

    server.join();
    if !quiet {
        println!("caf-serve: shut down cleanly");
    }
}
