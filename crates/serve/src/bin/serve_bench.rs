//! `serve_bench` — throughput/latency benchmark for the serving layer.
//!
//! Starts an in-process `caf-serve` on an ephemeral port, fires a
//! fixed number of concurrent HTTP clients at a single scenario, and
//! writes a one-line `caf-obs` run report to `BENCH_serve.json`
//! (validated by `metrics_check --schema-only` in CI):
//!
//! * `throughput_rps`, `p50_ms` / `p95_ms` / `p99_ms` over all
//!   requests (via `caf_stats::quantile`);
//! * `cold_ms` — wall time of the first, cache-missing request;
//! * `cache_hit_ratio` — warm fraction; the burst also sanity-checks
//!   the single-flight invariant (exactly one computation ran);
//! * `trace_overhead_pct` — warm p50 with the flight recorder attached
//!   vs. without, as a percentage (sub-noise differences clamp to 0);
//!   `metrics_check --max-trace-overhead-pct` gates it in CI.
//! * `snapshot_restore_ms` — restart-to-first-200 from a snapshot
//!   (fresh app + `--snapshot-dir`, byte-compared against the cold
//!   build); `metrics_check --min-restart-speedup` gates the ratio
//!   `cold_ms / snapshot_restore_ms` in CI.
//! * `disk_tier_hit_ratio` — fraction of cache misses that the disk
//!   LRU tier absorbed in an A/B/A eviction-promotion pass under a
//!   capacity-1 cache.
//!
//! `CAF_BENCH_DIR` overrides the output directory (CI points it at an
//! artifact dir so the committed baseline stays clean);
//! `CAF_BENCH_SERVE_QUICK=1` shrinks the run for smoke testing.

use caf_core::EngineConfig;
use caf_serve::{client, App, AppConfig, ServeConfig, Server};
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 0xCAF_2024;
const SCALE: u32 = 150;

/// Sequential warm requests against `path`, returning sorted per-request
/// latencies in milliseconds (the cache is already hot, so every request
/// measures the serve path, not the scenario build).
fn warm_latencies_ms(addr: std::net::SocketAddr, path: &str, n: usize) -> Vec<f64> {
    let mut latencies = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now();
        let (status, _body) = client::get(addr, path).expect("warm request");
        latencies.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(status, 200);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    latencies
}

fn main() {
    let quick = std::env::var_os("CAF_BENCH_SERVE_QUICK").is_some();
    let clients: usize = if quick { 4 } else { 16 };
    let per_client: usize = if quick { 4 } else { 25 };

    caf_obs::set_enabled(true);
    let app = Arc::new(App::new(AppConfig {
        default_seed: SEED,
        default_scale: SCALE,
        engine: EngineConfig::auto(),
        ..AppConfig::default()
    }));
    let server = Server::start(
        ServeConfig {
            workers: clients,
            queue: clients * 2,
            ..ServeConfig::default()
        },
        Arc::clone(&app) as Arc<dyn caf_serve::Handler>,
    )
    .expect("bind ephemeral port");
    let addr = server.addr();
    let path = format!("/v1/table2?seed={SEED}&scale={SCALE}");

    // Cold request first: it pays the full scenario build.
    let cold_start = Instant::now();
    let (status, reference) = client::get(addr, &path).expect("cold request");
    let cold = cold_start.elapsed();
    assert_eq!(status, 200, "cold request failed");

    // Warm burst: `clients` threads, `per_client` sequential requests
    // each, all against the now-cached scenario.
    let burst_start = Instant::now();
    let reference = Arc::new(reference);
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let reference = Arc::clone(&reference);
            let path = path.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let start = Instant::now();
                    let (status, body) = client::get(addr, &path).expect("warm request");
                    latencies.push(start.elapsed().as_secs_f64() * 1e3);
                    assert_eq!(status, 200);
                    assert_eq!(body, *reference, "response bytes diverged");
                }
                latencies
            })
        })
        .collect();
    let mut latencies_ms: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = burst_start.elapsed();
    // Snapshot before the trace-overhead probe below adds extra hits.
    let stats = app.cache_stats();

    // Trace-overhead probe: warm p50 untraced (this server has no
    // recorder) vs. traced (same app, so the same hot cache, behind a
    // second listener with the flight recorder attached).
    let probes: usize = if quick { 20 } else { 200 };
    let plain = warm_latencies_ms(addr, &path, probes);
    server.shutdown();
    let traced_server = Server::start(
        ServeConfig {
            workers: clients,
            queue: clients * 2,
            trace_seed: SEED,
            recorder: Some(app.recorder()),
            ..ServeConfig::default()
        },
        Arc::clone(&app) as Arc<dyn caf_serve::Handler>,
    )
    .expect("bind traced listener");
    let traced = warm_latencies_ms(traced_server.addr(), &path, probes);
    traced_server.shutdown();
    // Snapshot phase: write a snapshot from a persistence-enabled app,
    // then measure restart-to-first-200 from it. The restored bytes
    // must equal the cold build's — a fast restart that serves wrong
    // bytes is not a restart.
    let snap_dir = std::env::temp_dir().join(format!("caf-bench-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    let persist_config = AppConfig {
        default_seed: SEED,
        default_scale: SCALE,
        engine: EngineConfig::auto(),
        snapshot_dir: Some(snap_dir.clone()),
        ..AppConfig::default()
    };
    {
        let writer = Server::start(
            ServeConfig::default(),
            Arc::new(App::new(persist_config.clone())) as Arc<dyn caf_serve::Handler>,
        )
        .expect("bind snapshot writer");
        let (status, _body) = client::get(writer.addr(), &path).expect("prime request");
        assert_eq!(status, 200);
        let (status, _body) = client::request(
            writer.addr(),
            "POST /v1/snapshot HTTP/1.1\r\nHost: bench\r\nContent-Length: 0\r\n\
             Connection: close\r\n\r\n",
        )
        .expect("snapshot request");
        assert_eq!(status, 200, "snapshot write failed");
        writer.shutdown();
    }
    let restart_start = Instant::now();
    let restored = Arc::new(App::new(persist_config));
    let restored_server = Server::start(
        ServeConfig::default(),
        Arc::clone(&restored) as Arc<dyn caf_serve::Handler>,
    )
    .expect("bind restored listener");
    let (status, restored_body) = client::get(restored_server.addr(), &path).expect("restored");
    let snapshot_restore_ms = restart_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(status, 200, "restored request failed");
    assert!(
        restored.snapshot_status().loaded,
        "restart did not restore the snapshot"
    );
    assert_eq!(
        restored_body, *reference,
        "snapshot-restored bytes diverged from the cold build"
    );
    restored_server.shutdown();
    let _ = std::fs::remove_dir_all(&snap_dir);

    // Disk-tier phase: a capacity-1 cache with the tier enabled.
    // Scenario A is computed, evicted by B (spilling to disk), then
    // requested again — the tier must promote it byte-identically.
    let tier_dir = std::env::temp_dir().join(format!("caf-bench-tier-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tier_dir);
    let tiered = Arc::new(App::new(AppConfig {
        default_seed: SEED,
        default_scale: SCALE,
        engine: EngineConfig::auto(),
        cache_capacity: 1,
        snapshot_dir: Some(tier_dir.clone()),
        ..AppConfig::default()
    }));
    let tier_server = Server::start(
        ServeConfig::default(),
        Arc::clone(&tiered) as Arc<dyn caf_serve::Handler>,
    )
    .expect("bind tiered listener");
    let tier_addr = tier_server.addr();
    let other = format!("/v1/table2?seed={SEED}&scale={}", SCALE + 1);
    let (status, tier_a1) = client::get(tier_addr, &path).expect("tier A");
    assert_eq!(status, 200);
    let (status, _b) = client::get(tier_addr, &other).expect("tier B");
    assert_eq!(status, 200);
    let (status, tier_a2) = client::get(tier_addr, &path).expect("tier A again");
    assert_eq!(status, 200);
    assert_eq!(tier_a1, tier_a2, "disk-tier promoted bytes diverged");
    let tier_stats = tiered.cache_stats();
    assert_eq!(
        (tier_stats.misses, tier_stats.disk_hits, tier_stats.spills),
        (2, 1, 2),
        "unexpected tier behavior: {tier_stats:?}"
    );
    let disk_tier_hit_ratio =
        tier_stats.disk_hits as f64 / (tier_stats.misses + tier_stats.disk_hits) as f64;
    tier_server.shutdown();
    let _ = std::fs::remove_dir_all(&tier_dir);

    let p50_plain = caf_stats::quantile(&plain, 0.50).expect("non-empty");
    let p50_traced = caf_stats::quantile(&traced, 0.50).expect("non-empty");
    // Differences under 50µs are scheduler noise on a localhost socket,
    // not tracing cost; clamp them (and any negative diff) to zero.
    let diff_ms = p50_traced - p50_plain;
    let trace_overhead_pct = if diff_ms <= 0.05 {
        0.0
    } else {
        diff_ms / p50_plain * 100.0
    };

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let quantile = |p: f64| caf_stats::quantile(&latencies_ms, p).expect("non-empty");
    let total = latencies_ms.len() as u64 + 1; // + the cold request
    let warm = stats.hits + stats.joins;
    assert_eq!(stats.misses, 1, "single-flight broken: {stats:?}");
    let hit_ratio = warm as f64 / total as f64;
    let throughput = latencies_ms.len() as f64 / wall.as_secs_f64();

    let mut meta = std::collections::BTreeMap::new();
    let mut put = |k: &str, v: String| {
        meta.insert(k.to_string(), v);
    };
    put("tool", "serve_bench".to_string());
    put("seed", SEED.to_string());
    put("scale", SCALE.to_string());
    put("workers", clients.to_string());
    put("clients", clients.to_string());
    put("requests_per_client", per_client.to_string());
    put("total_requests", total.to_string());
    put("cold_ms", format!("{:.1}", cold.as_secs_f64() * 1e3));
    put("wall_s", format!("{:.3}", wall.as_secs_f64()));
    put("throughput_rps", format!("{throughput:.1}"));
    put("p50_ms", format!("{:.2}", quantile(0.50)));
    put("p95_ms", format!("{:.2}", quantile(0.95)));
    put("p99_ms", format!("{:.2}", quantile(0.99)));
    put("cache_hit_ratio", format!("{hit_ratio:.3}"));
    put("trace_probe_requests", probes.to_string());
    put("trace_overhead_pct", format!("{trace_overhead_pct:.1}"));
    put("snapshot_restore_ms", format!("{snapshot_restore_ms:.1}"));
    put("disk_tier_hit_ratio", format!("{disk_tier_hit_ratio:.3}"));

    let report = caf_obs::RunReport::collect(meta);
    let default_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let dir = std::env::var("CAF_BENCH_DIR").unwrap_or_else(|_| default_dir.to_string());
    let path = std::path::Path::new(&dir).join("BENCH_serve.json");
    let mut line = report.to_json();
    line.push('\n');
    match std::fs::write(&path, line) {
        Ok(()) => eprintln!(
            "wrote bench summary to {} ({throughput:.0} req/s warm, p99 {:.2} ms, \
             cold {:.0} ms, hit ratio {hit_ratio:.3}, restore {snapshot_restore_ms:.1} ms, \
             tier hit ratio {disk_tier_hit_ratio:.3})",
            path.display(),
            quantile(0.99),
            cold.as_secs_f64() * 1e3,
        ),
        Err(error) => eprintln!("cannot write {}: {error}", path.display()),
    }
}
