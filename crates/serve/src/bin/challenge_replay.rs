//! `challenge_replay` — replay a challenge delta stream against the
//! audit pipeline and write the resulting artifacts.
//!
//! ```text
//! challenge_replay --deltas FILE [--seed N] [--scale N] [--batch N]
//!                  [--mode incremental|full] [--workers N|auto]
//!                  [--out DIR] [--emit-resolved FILE] [--quiet]
//! ```
//!
//! Two modes, one contract:
//!
//! * `--mode incremental` (default) builds the epoch-0 world and its
//!   [`IncrementalAudit`], then applies the stream in `--batch`-sized
//!   batches, refreshing only the invalidated cells after each.
//! * `--mode full` applies the whole stream in one shot and re-audits
//!   the world from scratch.
//!
//! By the incremental-recompute determinism contract the two modes
//! write **byte-identical** artifacts (`serviceability.json`,
//! `compliance.json`, `table2.json`) for any batch size and worker
//! count — `ci.sh` byte-diffs them.
//!
//! Delta streams address cells by `(state, cbg index)`; the `isp` field
//! is resolved against the generated world's geography before applying
//! (each `(state, cbg)` cell belongs to exactly one ISP, and which one
//! is RNG-dependent — resolving keeps committed streams valid across
//! seeds and RNG implementations).
//!
//! `--emit-resolved FILE` writes the post-resolution stream back out as
//! JSONL. A live `caf-serve` validates ISPs strictly, so the committed
//! placeholder stream cannot be POSTed to `/v1/challenge` directly;
//! the emitted stream can (ci.sh uses this for the snapshot restart
//! gate).

use caf_bench::campaign_config;
use caf_core::{
    artifact, Audit, AuditConfig, AuditIndex, ComplianceAnalysis, EngineConfig, IncrementalAudit,
    SamplingRule, ScenarioMeta, ServiceabilityAnalysis,
};
use caf_geo::UsState;
use caf_synth::challenge::deltas_from_jsonl;
use caf_synth::{ChallengeDelta, SynthConfig, World};
use std::time::Instant;

fn die(message: &str) -> ! {
    eprintln!("challenge_replay: {message}");
    std::process::exit(2);
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Incremental,
    Full,
}

fn main() {
    let mut deltas_path: Option<std::path::PathBuf> = None;
    let mut seed: u64 = 0xCAF_2024;
    let mut scale: u32 = 150;
    let mut batch: usize = 1;
    let mut mode = Mode::Incremental;
    let mut engine = EngineConfig::default();
    let mut out: Option<std::path::PathBuf> = None;
    let mut emit_resolved: Option<std::path::PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--deltas" => deltas_path = Some(value("--deltas").into()),
            "--seed" => {
                seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| die("--seed needs an integer"));
            }
            "--scale" => {
                scale = value("--scale")
                    .parse()
                    .unwrap_or_else(|_| die("--scale needs an integer"));
                if scale == 0 {
                    die("--scale must be at least 1");
                }
            }
            "--batch" => {
                batch = value("--batch")
                    .parse()
                    .unwrap_or_else(|_| die("--batch needs an integer"));
                if batch == 0 {
                    die("--batch must be at least 1");
                }
            }
            "--mode" => {
                mode = match value("--mode").as_str() {
                    "incremental" => Mode::Incremental,
                    "full" => Mode::Full,
                    other => die(&format!("unknown mode {other:?} (incremental|full)")),
                };
            }
            "--workers" => {
                let raw = value("--workers");
                engine = if raw == "auto" {
                    EngineConfig::auto()
                } else {
                    EngineConfig::with_workers(
                        raw.parse()
                            .unwrap_or_else(|_| die("--workers needs an integer or auto")),
                    )
                };
            }
            "--out" => out = Some(value("--out").into()),
            "--emit-resolved" => emit_resolved = Some(value("--emit-resolved").into()),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "challenge_replay --deltas FILE [--seed N] [--scale N] [--batch N] \
                     [--mode incremental|full] [--workers N|auto] [--out DIR] \
                     [--emit-resolved FILE] [--quiet]"
                );
                return;
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }
    let deltas_path = deltas_path.unwrap_or_else(|| die("--deltas FILE is required"));

    let text = std::fs::read_to_string(&deltas_path)
        .unwrap_or_else(|e| die(&format!("read {deltas_path:?}: {e}")));
    let deltas =
        deltas_from_jsonl(&text).unwrap_or_else(|e| die(&format!("parse {deltas_path:?}: {e}")));
    if deltas.is_empty() {
        die(&format!("{deltas_path:?} contains no deltas"));
    }

    let synth = SynthConfig { seed, scale };
    let states = UsState::study_states();
    let build_started = Instant::now();
    let mut world = World::generate_states_on(synth, &states, engine);
    let deltas = resolve_isps(&world, deltas);
    if let Some(path) = &emit_resolved {
        let mut lines = String::new();
        for delta in &deltas {
            lines.push_str(&caf_synth::challenge::delta_to_json(delta));
            lines.push('\n');
        }
        std::fs::write(path, lines).unwrap_or_else(|e| die(&format!("write {path:?}: {e}")));
        if !quiet {
            println!(
                "challenge_replay: wrote {} resolved delta(s) to {}",
                deltas.len(),
                path.display()
            );
        }
    }
    let audit = Audit::new(AuditConfig {
        synth,
        campaign: campaign_config(seed),
        rule: SamplingRule::paper(),
        resample_rounds: 2,
    });

    let replay_started;
    let dataset = match mode {
        Mode::Incremental => {
            let mut inc = IncrementalAudit::build(audit, &world, engine);
            replay_started = Instant::now();
            for chunk in deltas.chunks(batch) {
                let outcome = world
                    .apply_deltas(chunk)
                    .unwrap_or_else(|e| die(&format!("apply batch: {e}")));
                inc.refresh(&world, &outcome, engine);
            }
            inc.dataset()
        }
        Mode::Full => {
            replay_started = Instant::now();
            world
                .apply_deltas(&deltas)
                .unwrap_or_else(|e| die(&format!("apply stream: {e}")));
            audit.run_with(&world, engine)
        }
    };
    let replay_elapsed = replay_started.elapsed();

    let index = AuditIndex::build_at(&dataset, world.epoch);
    let serviceability = ServiceabilityAnalysis::from_index(&index);
    let compliance = ComplianceAnalysis::from_index(&dataset, &index);

    if let Some(dir) = &out {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("mkdir {dir:?}: {e}")));
        let meta = ScenarioMeta::new(seed, scale).at_epoch(world.epoch);
        let write = |name: &str, body: caf_obs::json::Json| {
            let path = dir.join(format!("{name}.json"));
            let bytes = artifact::to_canonical_bytes(&meta.wrap(body));
            std::fs::write(&path, bytes).unwrap_or_else(|e| die(&format!("write {path:?}: {e}")));
        };
        write(
            "serviceability",
            artifact::serviceability(&serviceability, None),
        );
        write(
            "compliance",
            artifact::compliance(&compliance, &dataset, None),
        );
        write("table2", artifact::table2(&dataset));
    }

    if !quiet {
        let mode_name = match mode {
            Mode::Incremental => "incremental",
            Mode::Full => "full",
        };
        let secs = replay_elapsed.as_secs_f64();
        println!(
            "challenge_replay: {} deltas -> epoch {} ({mode_name}, batch {batch}, \
             {} workers) in {secs:.3}s replay / {:.3}s total{}",
            deltas.len(),
            world.epoch,
            engine.workers,
            build_started.elapsed().as_secs_f64(),
            match &out {
                Some(dir) => format!("; artifacts in {}", dir.display()),
                None => String::new(),
            },
        );
    }
}

/// Rewrites each delta's `isp` to the owner of its `(state, cbg)` cell
/// in `world` (dying on an unknown state or out-of-range CBG index).
fn resolve_isps(world: &World, deltas: Vec<ChallengeDelta>) -> Vec<ChallengeDelta> {
    deltas
        .into_iter()
        .map(|mut delta| {
            let sw = world
                .states
                .iter()
                .find(|sw| sw.state == delta.state)
                .unwrap_or_else(|| {
                    die(&format!(
                        "state {:?} is not in the study world",
                        delta.state
                    ))
                });
            let cbg = sw.geography.cbgs.get(delta.cbg).unwrap_or_else(|| {
                die(&format!(
                    "cbg index {} out of range for {:?} ({} CBGs at this scale)",
                    delta.cbg,
                    delta.state,
                    sw.geography.cbgs.len()
                ))
            });
            delta.isp = cbg.isp;
            delta
        })
        .collect()
}
