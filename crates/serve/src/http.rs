//! A deliberately small HTTP/1.1 subset: enough to parse the GET and
//! POST requests the serving API accepts and to write deterministic
//! responses, with no external dependencies.
//!
//! Every response is `Connection: close` — one request per connection
//! keeps the worker loop trivially bounded and makes the byte-identity
//! contract easy to state: the response *body* for a `/v1/*` endpoint
//! is exactly the artifact file `repro --artifacts` writes.

use std::io::{BufRead, Read, Write};

/// Maximum accepted size of the request head (request line + headers).
/// Anything longer is rejected with `431`.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum accepted request body (`Content-Length`). Anything longer is
/// rejected with `413` before a byte of the body is read.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, decoded path, decoded query pairs, headers,
/// and (for POST) the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET` or `POST` for every supported endpoint).
    pub method: String,
    /// Percent-decoded path, e.g. `/v1/table2`.
    pub path: String,
    /// Percent-decoded query pairs in request order.
    pub query: Vec<(String, String)>,
    /// Headers as (lowercased name, trimmed value) pairs, in request
    /// order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless the request carried `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The last value for query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The last value for header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .rev()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A parse failure, carrying the HTTP status the server should answer
/// with (`400` or `431`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Status code to respond with.
    pub status: u16,
    /// Human-readable reason, echoed in the error body.
    pub message: String,
}

fn bad(message: impl Into<String>) -> ParseError {
    ParseError {
        status: 400,
        message: message.into(),
    }
}

/// Reads and parses one request from `stream`: the head, plus — when
/// the head carries `Content-Length` — a body of exactly that many
/// bytes, bounded by [`MAX_BODY_BYTES`] (`413` beyond it).
pub fn parse_request(stream: &mut impl BufRead) -> Result<Request, ParseError> {
    // `read_line` buffers a whole line before returning, so the size
    // check must bind the reader itself, not run after the fact: a
    // client streaming bytes with no newline would otherwise grow the
    // line buffer without bound. Capping at one byte past the limit
    // means a truncated read is always detected as `total` exceeding
    // `MAX_HEAD_BYTES` below.
    let mut stream = stream.take(MAX_HEAD_BYTES as u64 + 1);
    let mut line = String::new();
    let mut total = 0usize;
    let mut read_line = |stream: &mut dyn BufRead, line: &mut String| -> Result<(), ParseError> {
        line.clear();
        let n = stream
            .read_line(line)
            .map_err(|e| bad(format!("read: {e}")))?;
        if n == 0 {
            return Err(bad("connection closed before a full request"));
        }
        total += n;
        if total > MAX_HEAD_BYTES {
            return Err(ParseError {
                status: 431,
                message: "request head too large".to_string(),
            });
        }
        Ok(())
    };

    read_line(&mut stream, &mut line)?;
    let request_line = line.trim_end_matches(['\r', '\n']).to_string();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    let version = parts.next().ok_or_else(|| bad("missing HTTP version"))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(bad(format!("malformed request line: {request_line:?}")));
    }
    if method.is_empty() {
        return Err(bad("empty method"));
    }

    // Collect headers until the blank line; the loop enforces the
    // head-size bound. Names are lowercased so lookups are
    // case-insensitive; lines without a colon are ignored.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        read_line(&mut stream, &mut line)?;
        if line == "\r\n" || line == "\n" {
            break;
        }
        if let Some((name, value)) = line.trim_end_matches(['\r', '\n']).split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    // The head cap no longer applies: read the body (if declared) from
    // the raw stream, sized and bounded up front so a lying client
    // cannot make the server buffer more than MAX_BODY_BYTES.
    let stream = stream.into_inner();
    let mut body = Vec::new();
    if let Some(value) = headers
        .iter()
        .rev()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.as_str())
    {
        let len: usize = value
            .parse()
            .map_err(|_| bad(format!("invalid Content-Length {value:?}")))?;
        if len > MAX_BODY_BYTES {
            return Err(ParseError {
                status: 413,
                message: format!("request body of {len} bytes exceeds {MAX_BODY_BYTES}"),
            });
        }
        body = vec![0u8; len];
        stream
            .read_exact(&mut body)
            .map_err(|e| bad(format!("read body: {e}")))?;
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path, false)?;
    let mut query = Vec::new();
    if let Some(raw_query) = raw_query {
        for pair in raw_query.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k, true)?, percent_decode(v, true)?));
        }
    }
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Decodes `%XX` escapes (and, in query components, `+` as space).
fn percent_decode(raw: &str, plus_is_space: bool) -> Result<String, ParseError> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| bad(format!("truncated percent escape in {raw:?}")))?;
                let hex = std::str::from_utf8(hex).map_err(|_| bad("non-ASCII escape"))?;
                let byte = u8::from_str_radix(hex, 16)
                    .map_err(|_| bad(format!("invalid percent escape %{hex}")))?;
                out.push(byte);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| bad(format!("target is not UTF-8: {raw:?}")))
}

/// A response ready to serialize. Responses are always
/// `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value), written in order.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// When true, the server initiates graceful shutdown after this
    /// response is written (the `/quitquitquit` path).
    pub shutdown: bool,
}

impl Response {
    /// A `200` JSON response; `body` must already be canonical bytes.
    pub fn json(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
            shutdown: false,
        }
    }

    /// A `200` plain-text response.
    pub fn text(body: impl Into<Vec<u8>>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
            shutdown: false,
        }
    }

    /// A `304 Not Modified` response: no body, so the caller must still
    /// attach the entity's `ETag` via [`Response::with_header`].
    pub fn not_modified() -> Response {
        Response {
            status: 304,
            content_type: "application/json",
            headers: Vec::new(),
            body: Vec::new(),
            shutdown: false,
        }
    }

    /// An error response with a one-object JSON body
    /// `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\": ");
        body.push_str(&caf_obs::json::Json::Str(message.to_string()).to_compact());
        body.push_str("}\n");
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into_bytes(),
            shutdown: false,
        }
    }

    /// Adds a header (builder style).
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.headers.push((name.to_string(), value));
        self
    }

    /// Serializes the response to `out` (status line, headers, body).
    pub fn write_to(&self, out: &mut impl Write) -> std::io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        out.write_all(head.as_bytes())?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        parse_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_path_query_and_escapes() {
        let req = parse(
            "GET /v1/serviceability?seed=123&isp=AT%26T&note=a+b HTTP/1.1\r\nHost: x\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/serviceability");
        assert_eq!(req.param("seed"), Some("123"));
        assert_eq!(req.param("isp"), Some("AT&T"));
        assert_eq!(req.param("note"), Some("a b"));
        assert_eq!(req.param("absent"), None);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.header("absent"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn reads_post_bodies_bounded_by_content_length() {
        let req =
            parse("POST /v1/challenge HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhelloEXTRA")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello");

        // A declared body larger than the cap is rejected before any
        // read; a truncated body is a 400.
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(parse(&huge).unwrap_err().status, 413);
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\nshort")
                .unwrap_err()
                .status,
            400
        );
        assert_eq!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn rejects_malformed_heads() {
        assert_eq!(parse("GARBAGE\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(parse("GET /x SPDY/3\r\n\r\n").unwrap_err().status, 400);
        assert_eq!(
            parse("GET /x?b=%zz HTTP/1.1\r\n\r\n").unwrap_err().status,
            400
        );
        assert_eq!(parse("").unwrap_err().status, 400);
        let huge = format!(
            "GET /x HTTP/1.1\r\nA: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        assert_eq!(parse(&huge).unwrap_err().status, 431);
    }

    #[test]
    fn endless_line_is_rejected_without_buffering_it() {
        // No newline at all: the reader cap (not line buffering) must
        // stop this at MAX_HEAD_BYTES + 1 bytes and answer 431.
        let endless = "G".repeat(MAX_HEAD_BYTES * 4);
        assert_eq!(parse(&endless).unwrap_err().status, 431);
        let endless_header = format!("GET /x HTTP/1.1\r\nA: {}", "y".repeat(MAX_HEAD_BYTES * 4));
        assert_eq!(parse(&endless_header).unwrap_err().status, 431);
    }

    #[test]
    fn response_bytes_are_exact() {
        let mut out = Vec::new();
        Response::json(b"{}\n".to_vec())
            .with_header("ETag", "\"abc\"".to_string())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 3\r\nConnection: close\r\nETag: \"abc\"\r\n\r\n{}\n"
        );
        let mut err = Vec::new();
        Response::error(503, "queue full")
            .write_to(&mut err)
            .unwrap();
        let text = String::from_utf8(err).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.ends_with("{\"error\": \"queue full\"}\n"));
    }
}
