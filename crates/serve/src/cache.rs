//! The scenario cache: LRU over materialized results + single-flight
//! deduplication of concurrent identical computations.
//!
//! Scenario bundles are expensive (a `Fixture` at repro scale takes
//! seconds and holds the whole synthetic world), so the cache bounds
//! *both* axes of waste:
//!
//! * **Memory** — at most `capacity` ready entries; inserting past the
//!   cap evicts the least-recently-used entry. Recency is a monotonic
//!   tick under the cache lock, so eviction order is deterministic for
//!   a given access sequence (pinned by a unit test below).
//! * **CPU** — at most one in-flight computation per key. Late
//!   arrivals for a key that is already computing *join* the flight:
//!   they block on a condvar and share the `Arc`'d result instead of
//!   recomputing. A joiner that waits longer than its timeout gives up
//!   (the server maps that to `503`), but the flight itself keeps
//!   running and still populates the cache.
//!
//! Every outcome is counted twice: into the cache's own [`CacheStats`]
//! (exact, race-free snapshots for tests and `serve_bench`) and into
//! the global `caf-obs` registry under `caf.serve.cache.*` (for
//! `/metrics`).

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How a [`ScenarioCache::get_or_compute`] call obtained its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The value was already materialized in the cache.
    Hit,
    /// This call ran the computation (and populated the cache).
    Miss,
    /// Another call was already computing this key; this call blocked
    /// on the in-flight entry and shares its result.
    Joined,
    /// The value was promoted from the disk tier (a previously evicted
    /// entry) instead of being recomputed.
    DiskHit,
}

/// A second-chance tier under the in-memory LRU. Entries evicted from
/// the ready map are offered to [`SpillHook::spill`]; a miss consults
/// [`SpillHook::load`] before paying for a recomputation. The hook runs
/// *outside* the cache lock on both paths, so implementations may do
/// real I/O. A `load` implementation must return a value byte-for-byte
/// equivalent to what was spilled, or `None` — never a guess; the
/// serving layer's determinism contract rides on it.
pub trait SpillHook<K, V>: Send + Sync {
    /// Offers an evicted entry to the tier (e.g. serialize it to disk).
    fn spill(&self, key: &K, value: &V);
    /// Attempts to produce the value for `key` from the tier.
    fn load(&self, key: &K) -> Option<V>;
}

/// Why a [`ScenarioCache::get_or_compute`] call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// A join waited longer than its timeout for the in-flight
    /// computation. The flight keeps running; retrying later will
    /// typically hit.
    JoinTimeout,
    /// The computation itself failed (or its thread panicked). The
    /// error is shared verbatim with every joiner of that flight.
    Failed(String),
}

/// Exact counters for every cache outcome; see [`ScenarioCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Ready-entry hits.
    pub hits: u64,
    /// Computations started by a caller (cache population).
    pub misses: u64,
    /// Callers that joined an in-flight computation.
    pub joins: u64,
    /// Joins that gave up waiting.
    pub join_timeouts: u64,
    /// Ready entries evicted by the LRU cap.
    pub evictions: u64,
    /// Entries materialized directly via [`ScenarioCache::insert`]
    /// (e.g. a challenge ingest publishing an incrementally refreshed
    /// view) rather than through a cache miss.
    pub inserts: u64,
    /// Misses satisfied by promoting a spilled entry from the disk
    /// tier instead of recomputing.
    pub disk_hits: u64,
    /// Evicted entries offered to the disk tier.
    pub spills: u64,
}

#[derive(Default)]
struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    joins: AtomicU64,
    join_timeouts: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
    disk_hits: AtomicU64,
    spills: AtomicU64,
}

enum FlightState<V> {
    Running,
    Done(Arc<V>),
    Failed(String),
}

struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

struct ReadyEntry<V> {
    value: Arc<V>,
    last_used: u64,
}

struct Inner<K, V> {
    ready: HashMap<K, ReadyEntry<V>>,
    pending: HashMap<K, Arc<Flight<V>>>,
    tick: u64,
}

/// An LRU + single-flight cache of computed scenario bundles.
///
/// `K` is the canonical scenario key (only parameters that change the
/// *result* belong in it — compute-side knobs like worker counts must
/// stay out, or identical scenarios would miss). `V` is the
/// materialized bundle, always handed out behind an `Arc`.
pub struct ScenarioCache<K, V> {
    capacity: usize,
    inner: Mutex<Inner<K, V>>,
    stats: CacheStats,
    spill: Option<Arc<dyn SpillHook<K, V>>>,
}

/// Marks the flight failed if the computing closure panics, so joiners
/// wake with an error instead of waiting out their full timeout.
struct FlightGuard<'a, K: Eq + Hash + Clone, V> {
    cache: &'a ScenarioCache<K, V>,
    key: K,
    flight: Arc<Flight<V>>,
    armed: bool,
}

impl<K: Eq + Hash + Clone, V> Drop for FlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut inner = self.cache.inner.lock().unwrap();
        inner.pending.remove(&self.key);
        drop(inner);
        let mut state = self.flight.state.lock().unwrap();
        *state = FlightState::Failed("scenario computation panicked".to_string());
        self.flight.done.notify_all();
    }
}

impl<K: Eq + Hash + Clone, V> ScenarioCache<K, V> {
    /// Creates a cache holding at most `capacity` ready entries
    /// (minimum 1, so a just-computed bundle is always servable).
    pub fn new(capacity: usize) -> ScenarioCache<K, V> {
        ScenarioCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                ready: HashMap::new(),
                pending: HashMap::new(),
                tick: 0,
            }),
            stats: CacheStats::default(),
            spill: None,
        }
    }

    /// Like [`ScenarioCache::new`], with a [`SpillHook`] backing the
    /// LRU: evictions spill into the hook, and misses try
    /// [`SpillHook::load`] before recomputing.
    pub fn with_spill(capacity: usize, hook: Arc<dyn SpillHook<K, V>>) -> ScenarioCache<K, V> {
        let mut cache = ScenarioCache::new(capacity);
        cache.spill = Some(hook);
        cache
    }

    /// Returns the cached value for `key`, or computes it.
    ///
    /// Exactly one caller per key computes at a time; concurrent
    /// callers join the in-flight computation and wait up to
    /// `join_timeout` for it. The returned [`CacheOutcome`] says which
    /// path this call took.
    pub fn get_or_compute<F>(
        &self,
        key: K,
        join_timeout: Duration,
        compute: F,
    ) -> Result<(Arc<V>, CacheOutcome), CacheError>
    where
        F: FnOnce() -> Result<V, String>,
    {
        // One span per lookup regardless of outcome: on a miss it also
        // covers the compute, so trace durations show where the request
        // actually spent its time.
        let _span = caf_obs::span("cache.lookup");
        let flight = {
            let mut inner = self.inner.lock().unwrap();
            if let Some(entry) = inner.ready.get(&key) {
                let value = Arc::clone(&entry.value);
                inner.tick += 1;
                let tick = inner.tick;
                inner.ready.get_mut(&key).expect("entry present").last_used = tick;
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                caf_obs::count("caf.serve.cache.hits", 1);
                return Ok((value, CacheOutcome::Hit));
            }
            if let Some(flight) = inner.pending.get(&key) {
                Some(Arc::clone(flight))
            } else {
                let flight = Arc::new(Flight {
                    state: Mutex::new(FlightState::Running),
                    done: Condvar::new(),
                });
                inner.pending.insert(key.clone(), Arc::clone(&flight));
                drop(inner);
                // Miss vs disk-hit is decided inside the flight, after
                // the disk tier has had its chance.
                return self.run_flight(key, flight, compute);
            }
        };

        let flight = flight.expect("join path always has a flight");
        self.stats.joins.fetch_add(1, Ordering::Relaxed);
        caf_obs::count("caf.serve.cache.joins", 1);
        self.join_flight(&flight, join_timeout)
    }

    fn run_flight<F>(
        &self,
        key: K,
        flight: Arc<Flight<V>>,
        compute: F,
    ) -> Result<(Arc<V>, CacheOutcome), CacheError>
    where
        F: FnOnce() -> Result<V, String>,
    {
        let mut guard = FlightGuard {
            cache: self,
            key,
            flight: Arc::clone(&flight),
            armed: true,
        };
        // Second chance before recomputing: a previously evicted entry
        // may be sitting in the disk tier. The load runs with the
        // flight registered (joiners queue on it either way) and the
        // guard armed, so a panicking hook still fails joiners cleanly.
        if let Some(hook) = &self.spill {
            if let Some(value) = hook.load(&guard.key) {
                guard.armed = false;
                self.stats.disk_hits.fetch_add(1, Ordering::Relaxed);
                caf_obs::count("caf.serve.cache.disk_hits", 1);
                let value = self.land_flight(&guard.key, &flight, value);
                return Ok((value, CacheOutcome::DiskHit));
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        caf_obs::count("caf.serve.cache.misses", 1);
        let result = compute();
        guard.armed = false;
        match result {
            Ok(value) => {
                let value = self.land_flight(&guard.key, &flight, value);
                Ok((value, CacheOutcome::Miss))
            }
            Err(message) => {
                let mut inner = self.inner.lock().unwrap();
                inner.pending.remove(&guard.key);
                drop(inner);
                let mut state = flight.state.lock().unwrap();
                *state = FlightState::Failed(message.clone());
                drop(state);
                flight.done.notify_all();
                Err(CacheError::Failed(message))
            }
        }
    }

    /// Publishes a flight's value: installs the ready entry, clears the
    /// pending slot, wakes joiners, then spills whatever the LRU cap
    /// evicted (outside the cache lock, since spilling may do I/O).
    fn land_flight(&self, key: &K, flight: &Flight<V>, value: V) -> Arc<V> {
        let value = Arc::new(value);
        let mut inner = self.inner.lock().unwrap();
        inner.pending.remove(key);
        let evicted = self.insert_ready(&mut inner, key.clone(), Arc::clone(&value));
        drop(inner);
        let mut state = flight.state.lock().unwrap();
        *state = FlightState::Done(Arc::clone(&value));
        drop(state);
        flight.done.notify_all();
        self.spill_evicted(evicted);
        value
    }

    /// Offers evicted entries to the spill hook, if one is configured.
    /// Must be called with the cache lock released.
    fn spill_evicted(&self, evicted: Vec<(K, Arc<V>)>) {
        let Some(hook) = &self.spill else { return };
        for (key, value) in evicted {
            hook.spill(&key, &value);
            self.stats.spills.fetch_add(1, Ordering::Relaxed);
            caf_obs::count("caf.serve.cache.spills", 1);
        }
    }

    /// Materializes `value` for `key` directly, as if a computation for
    /// it had just finished: the entry becomes the most recently used
    /// and LRU eviction applies. Used by producers that *already hold*
    /// a fresh result — the challenge ingest path publishes its
    /// incrementally refreshed view here so subsequent reads hit
    /// without recomputing. An in-flight computation for the same key
    /// (if any) is left to finish and overwrite this entry with — by
    /// the determinism contract — identical contents.
    pub fn insert(&self, key: K, value: V) -> Arc<V> {
        let value = Arc::new(value);
        let mut inner = self.inner.lock().unwrap();
        let evicted = self.insert_ready(&mut inner, key, Arc::clone(&value));
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        caf_obs::count("caf.serve.cache.inserts", 1);
        drop(inner);
        self.spill_evicted(evicted);
        value
    }

    /// Installs a ready entry at the current tick and enforces the LRU
    /// cap (shared by [`ScenarioCache::insert`] and the miss path).
    /// Returns the entries the cap pushed out so the caller can offer
    /// them to the spill hook *after* releasing the cache lock.
    fn insert_ready(&self, inner: &mut Inner<K, V>, key: K, value: Arc<V>) -> Vec<(K, Arc<V>)> {
        inner.tick += 1;
        let tick = inner.tick;
        inner.ready.insert(
            key,
            ReadyEntry {
                value,
                last_used: tick,
            },
        );
        let mut evicted = Vec::new();
        while inner.ready.len() > self.capacity {
            let oldest = inner
                .ready
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map over capacity");
            let entry = inner.ready.remove(&oldest).expect("oldest key present");
            evicted.push((oldest, entry.value));
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            caf_obs::count("caf.serve.cache.evictions", 1);
        }
        caf_obs::gauge("caf.serve.cache.size", inner.ready.len() as u64);
        evicted
    }

    fn join_flight(
        &self,
        flight: &Flight<V>,
        join_timeout: Duration,
    ) -> Result<(Arc<V>, CacheOutcome), CacheError> {
        let deadline = std::time::Instant::now() + join_timeout;
        let mut state = flight.state.lock().unwrap();
        loop {
            match &*state {
                FlightState::Done(value) => {
                    return Ok((Arc::clone(value), CacheOutcome::Joined));
                }
                FlightState::Failed(message) => {
                    return Err(CacheError::Failed(message.clone()));
                }
                FlightState::Running => {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        self.stats.join_timeouts.fetch_add(1, Ordering::Relaxed);
                        caf_obs::count("caf.serve.cache.join_timeouts", 1);
                        return Err(CacheError::JoinTimeout);
                    }
                    let (next, _timed_out) =
                        flight.done.wait_timeout(state, deadline - now).unwrap();
                    state = next;
                }
            }
        }
    }

    /// Number of ready (materialized) entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ready.len()
    }

    /// True when no ready entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured LRU capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if `key` is currently materialized (does not touch recency).
    pub fn contains(&self, key: &K) -> bool {
        self.inner.lock().unwrap().ready.contains_key(key)
    }

    /// Every currently ready entry, most-recently-used last. Used by
    /// the snapshot writer to persist warm cache contents.
    pub fn ready_entries(&self) -> Vec<(K, Arc<V>)> {
        let inner = self.inner.lock().unwrap();
        let mut entries: Vec<(&K, &ReadyEntry<V>)> = inner.ready.iter().collect();
        entries.sort_by_key(|(_, entry)| entry.last_used);
        entries
            .into_iter()
            .map(|(key, entry)| (key.clone(), Arc::clone(&entry.value)))
            .collect()
    }

    /// An exact snapshot of every outcome counter.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            joins: self.stats.joins.load(Ordering::Relaxed),
            join_timeouts: self.stats.join_timeouts.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            inserts: self.stats.inserts.load(Ordering::Relaxed),
            disk_hits: self.stats.disk_hits.load(Ordering::Relaxed),
            spills: self.stats.spills.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    const LONG: Duration = Duration::from_secs(30);

    #[test]
    fn miss_then_hit_shares_one_computation() {
        let cache: ScenarioCache<u32, String> = ScenarioCache::new(4);
        let computed = AtomicUsize::new(0);
        let compute = || {
            computed.fetch_add(1, Ordering::SeqCst);
            Ok("value".to_string())
        };
        let (first, outcome) = cache.get_or_compute(7, LONG, compute).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (second, outcome) = cache
            .get_or_compute(7, LONG, || unreachable!("must not recompute"))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(computed.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.joins), (1, 1, 0));
    }

    #[test]
    fn concurrent_identical_keys_single_flight() {
        let cache: Arc<ScenarioCache<u32, u64>> = Arc::new(ScenarioCache::new(4));
        let computed = Arc::new(AtomicUsize::new(0));
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (entered_tx, entered_rx) = mpsc::channel::<()>();

        // One leader starts computing and blocks until released, so the
        // other callers are guaranteed to arrive while it is in flight.
        let leader = {
            let cache = Arc::clone(&cache);
            let computed = Arc::clone(&computed);
            std::thread::spawn(move || {
                cache
                    .get_or_compute(1, LONG, move || {
                        entered_tx.send(()).unwrap();
                        release_rx.recv().unwrap();
                        computed.fetch_add(1, Ordering::SeqCst);
                        Ok(42u64)
                    })
                    .unwrap()
            })
        };
        entered_rx.recv().unwrap();

        let joiners: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    cache
                        .get_or_compute(1, LONG, || unreachable!("joiners never compute"))
                        .unwrap()
                })
            })
            .collect();

        // Joiners are queued on the flight (they cannot have finished);
        // release the leader and check everyone got the same Arc.
        release_tx.send(()).unwrap();
        let (leader_value, leader_outcome) = leader.join().unwrap();
        assert_eq!(leader_outcome, CacheOutcome::Miss);
        assert_eq!(*leader_value, 42);
        for joiner in joiners {
            let (value, outcome) = joiner.join().unwrap();
            // A joiner that is scheduled only after the leader lands
            // sees a plain Hit; either way it must share the leader's
            // Arc and must never have computed.
            assert!(
                matches!(outcome, CacheOutcome::Joined | CacheOutcome::Hit),
                "unexpected joiner outcome {outcome:?}"
            );
            assert!(Arc::ptr_eq(&value, &leader_value));
        }
        assert_eq!(computed.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "single-flight broken: {stats:?}");
        assert_eq!(stats.joins + stats.hits, 8, "{stats:?}");
    }

    #[test]
    fn join_timeout_gives_up_but_flight_still_lands() {
        let cache: Arc<ScenarioCache<u32, u64>> = Arc::new(ScenarioCache::new(4));
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let leader = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache
                    .get_or_compute(9, LONG, move || {
                        entered_tx.send(()).unwrap();
                        release_rx.recv().unwrap();
                        Ok(5u64)
                    })
                    .unwrap()
            })
        };
        entered_rx.recv().unwrap();

        let err = cache
            .get_or_compute(9, Duration::from_millis(20), || unreachable!())
            .unwrap_err();
        assert_eq!(err, CacheError::JoinTimeout);
        assert_eq!(cache.stats().join_timeouts, 1);

        release_tx.send(()).unwrap();
        leader.join().unwrap();
        // The flight was not cancelled by the timed-out joiner.
        let (value, outcome) = cache.get_or_compute(9, LONG, || unreachable!()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(*value, 5);
    }

    #[test]
    fn failed_computation_is_shared_and_not_cached() {
        let cache: ScenarioCache<u32, u64> = ScenarioCache::new(4);
        let err = cache
            .get_or_compute(3, LONG, || Err("world too large".to_string()))
            .unwrap_err();
        assert_eq!(err, CacheError::Failed("world too large".to_string()));
        assert!(!cache.contains(&3));
        // Errors are not cached: the next caller recomputes.
        let (value, outcome) = cache.get_or_compute(3, LONG, || Ok(11)).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(*value, 11);
    }

    #[test]
    fn lru_evicts_in_deterministic_recency_order() {
        let cache: ScenarioCache<u32, u32> = ScenarioCache::new(2);
        let fill = |key: u32| {
            cache.get_or_compute(key, LONG, || Ok(key * 10)).unwrap();
        };
        fill(1);
        fill(2);
        // Touch 1 so 2 becomes the LRU entry.
        let (_, outcome) = cache.get_or_compute(1, LONG, || unreachable!()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        fill(3); // evicts 2
        assert!(cache.contains(&1) && cache.contains(&3) && !cache.contains(&2));
        fill(4); // evicts 1 (3 was used more recently)
        assert!(cache.contains(&3) && cache.contains(&4) && !cache.contains(&1));
        assert_eq!(cache.stats().evictions, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn direct_inserts_hit_and_participate_in_lru() {
        let cache: ScenarioCache<u32, u32> = ScenarioCache::new(2);
        let inserted = cache.insert(1, 10);
        assert_eq!(*inserted, 10);
        let (value, outcome) = cache.get_or_compute(1, LONG, || unreachable!()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&value, &inserted));
        // Inserts are recency-stamped like any other entry: fill to
        // capacity, then overflow — the oldest insert is evicted.
        cache.insert(2, 20);
        cache.insert(3, 30);
        assert!(!cache.contains(&1) && cache.contains(&2) && cache.contains(&3));
        let stats = cache.stats();
        assert_eq!((stats.inserts, stats.evictions, stats.hits), (3, 1, 1));
    }

    /// An in-memory stand-in for the disk tier: spills into a map,
    /// loads back out of it.
    struct MapSpill {
        store: Mutex<HashMap<u32, u32>>,
    }

    impl SpillHook<u32, u32> for MapSpill {
        fn spill(&self, key: &u32, value: &u32) {
            self.store.lock().unwrap().insert(*key, *value);
        }
        fn load(&self, key: &u32) -> Option<u32> {
            self.store.lock().unwrap().get(key).copied()
        }
    }

    #[test]
    fn evicted_entries_spill_and_promote_as_disk_hits() {
        let hook = Arc::new(MapSpill {
            store: Mutex::new(HashMap::new()),
        });
        let cache: ScenarioCache<u32, u32> =
            ScenarioCache::with_spill(1, Arc::clone(&hook) as Arc<dyn SpillHook<u32, u32>>);
        let fill = |key: u32| cache.get_or_compute(key, LONG, || Ok(key * 10)).unwrap();
        assert_eq!(fill(1).1, CacheOutcome::Miss);
        assert_eq!(fill(2).1, CacheOutcome::Miss); // evicts + spills 1
        assert!(!cache.contains(&1));
        assert_eq!(hook.store.lock().unwrap().get(&1), Some(&10));
        // Re-requesting 1 promotes it from the tier without recomputing
        // (the compute closure must never run), evicting + spilling 2.
        let (value, outcome) = cache
            .get_or_compute(1, LONG, || unreachable!("promoted, not recomputed"))
            .unwrap();
        assert_eq!((*value, outcome), (10, CacheOutcome::DiskHit));
        assert!(cache.contains(&1) && !cache.contains(&2));
        assert_eq!(hook.store.lock().unwrap().get(&2), Some(&20));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.disk_hits, stats.spills), (2, 1, 2));
        // A disk hit lands in the ready map like any other entry.
        let (again, outcome) = cache.get_or_compute(1, LONG, || unreachable!()).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&again, &value));
    }

    #[test]
    fn direct_inserts_spill_their_evictions_too() {
        let hook = Arc::new(MapSpill {
            store: Mutex::new(HashMap::new()),
        });
        let cache: ScenarioCache<u32, u32> =
            ScenarioCache::with_spill(1, Arc::clone(&hook) as Arc<dyn SpillHook<u32, u32>>);
        cache.insert(7, 70);
        cache.insert(8, 80);
        assert_eq!(hook.store.lock().unwrap().get(&7), Some(&70));
        assert_eq!(cache.stats().spills, 1);
    }

    #[test]
    fn ready_entries_are_ordered_oldest_first() {
        let cache: ScenarioCache<u32, u32> = ScenarioCache::new(4);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // Touch 1 so it becomes the most recently used.
        cache.get_or_compute(1, LONG, || unreachable!()).unwrap();
        let keys: Vec<u32> = cache.ready_entries().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![2, 1]);
    }

    #[test]
    fn panicked_computation_fails_joiners_instead_of_hanging() {
        let cache: Arc<ScenarioCache<u32, u64>> = Arc::new(ScenarioCache::new(4));
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let leader = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _ = cache.get_or_compute(2, LONG, move || {
                    entered_tx.send(()).unwrap();
                    std::thread::sleep(Duration::from_millis(50));
                    panic!("computation exploded");
                });
            })
        };
        entered_rx.recv().unwrap();
        let err = cache
            .get_or_compute(2, LONG, || unreachable!())
            .unwrap_err();
        assert!(matches!(err, CacheError::Failed(ref m) if m.contains("panicked")));
        assert!(leader.join().is_err());
        // The pending slot was cleaned up; the key is computable again.
        let (value, outcome) = cache.get_or_compute(2, LONG, || Ok(8)).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(*value, 8);
    }
}
