//! End-to-end tests for per-request tracing: deterministic
//! `X-Request-Id`s on every response, the flight recorder behind
//! `GET /v1/debug/traces`, the Prometheus exposition, and — the
//! load-bearing invariant — that tracing is observation-only: artifact
//! bytes are identical with the recorder attached or absent, at any
//! engine worker count.

use caf_core::EngineConfig;
use caf_geo::UsState;
use caf_obs::json::{self, Json};
use caf_obs::TraceId;
use caf_serve::{client, App, AppConfig, Handler, ServeConfig, Server};
use caf_synth::challenge::delta_to_json;
use caf_synth::{ChallengeDelta, Correction, SynthConfig, World};
use std::sync::Arc;

const SEED: u64 = 0xCAF_2024;
/// A high downscale factor (tiny world): these tests exercise the
/// serve path, not the scenario build.
const SCALE: u32 = 2000;

fn start(engine_workers: usize, traced: bool, trace_seed: u64) -> (Server, Arc<App>) {
    let app = Arc::new(App::new(AppConfig {
        default_seed: SEED,
        default_scale: SCALE,
        engine: if engine_workers <= 1 {
            EngineConfig::serial()
        } else {
            EngineConfig::with_workers(engine_workers)
        },
        ..AppConfig::default()
    }));
    let server = Server::start(
        ServeConfig {
            workers: 2,
            queue: 16,
            trace_seed,
            recorder: if traced { Some(app.recorder()) } else { None },
            ..ServeConfig::default()
        },
        Arc::clone(&app) as Arc<dyn Handler>,
    )
    .expect("bind ephemeral port");
    (server, app)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value.as_str())
}

/// Every response — success or error — carries an `X-Request-Id`, and
/// the IDs are the deterministic `derive(seed, accept-seq)` sequence,
/// so a rerun against the same seed reproduces them.
#[test]
fn every_response_carries_a_deterministic_request_id() {
    caf_obs::set_enabled(true);
    let trace_seed = 0xFEED_FACE;
    let (server, _) = start(1, true, trace_seed);
    let addr = server.addr();
    for (seq, (path, want_status)) in [
        ("/healthz", 200),
        ("/nope", 404),
        ("/v1/table2?seed=bogus", 400),
        ("/v1/table2?epoch=9", 404),
    ]
    .iter()
    .enumerate()
    {
        let (status, headers, _body) = client::get_full(addr, path).unwrap();
        assert_eq!(status, *want_status, "{path}");
        assert_eq!(
            header(&headers, "x-request-id"),
            Some(TraceId::derive(trace_seed, seq as u64).to_hex().as_str()),
            "{path}"
        );
    }
    server.shutdown();
}

/// The acceptance walk: one `/v1/table2` request is followable
/// end-to-end in `/v1/debug/traces` — the route span, the cache miss,
/// the render, the engine's per-state spans, and a total equal to the
/// root `serve.request` duration.
#[test]
fn a_scenario_request_is_followable_in_the_flight_recorder() {
    caf_obs::set_enabled(true);
    let (server, _) = start(2, true, SEED);
    let addr = server.addr();
    let (status, _) = client::get(addr, &format!("/v1/table2?seed={SEED}&scale={SCALE}")).unwrap();
    assert_eq!(status, 200);

    // The warm cache shows up in /healthz occupancy.
    let (status, body) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    let health = json::parse(String::from_utf8(body).unwrap().trim_end()).unwrap();
    assert_eq!(
        health
            .get("cache")
            .and_then(|c| c.get("entries"))
            .and_then(Json::as_u64),
        Some(1)
    );

    let (status, body) = client::get(addr, "/v1/debug/traces?route=v1.table2&epoch=0&k=5").unwrap();
    assert_eq!(status, 200);
    let parsed = json::parse(String::from_utf8(body).unwrap().trim_end()).unwrap();
    assert_eq!(parsed.get("matched").and_then(Json::as_u64), Some(1));
    let traces = match parsed.get("traces") {
        Some(Json::Arr(traces)) => traces,
        other => panic!("traces must be an array, got {other:?}"),
    };
    let trace = &traces[0];
    assert_eq!(
        trace.get("id").and_then(Json::as_str),
        Some(TraceId::derive(SEED, 0).to_hex().as_str()),
        "the first accepted connection owns the first trace id"
    );
    assert_eq!(trace.get("status").and_then(Json::as_u64), Some(200));
    let annotation = |key: &str| {
        trace
            .get("annotations")
            .and_then(|a| a.get(key))
            .and_then(Json::as_str)
    };
    assert_eq!(annotation("route"), Some("v1.table2"));
    assert_eq!(annotation("cache"), Some("miss"));
    assert_eq!(annotation("epoch"), Some("0"));

    let events = match trace.get("events") {
        Some(Json::Arr(events)) => events,
        other => panic!("events must be an array, got {other:?}"),
    };
    let event = |path: &str| {
        events
            .iter()
            .find(|event| event.get("path").and_then(Json::as_str) == Some(path))
    };
    // The span path through the serving layer...
    let route_chain = "serve.request/serve.route.v1.table2";
    assert!(event(&format!("{route_chain}/cache.lookup")).is_some());
    assert!(event(&format!("{route_chain}/render")).is_some());
    // ...and the engine spans handed off to pool workers.
    assert!(
        events.iter().any(|event| {
            event
                .get("path")
                .and_then(Json::as_str)
                .is_some_and(|path| path.contains("state."))
        }),
        "engine per-state spans must attach to the request trace"
    );
    let root = event("serve.request").expect("root span event");
    assert_eq!(
        trace.get("total_us").and_then(Json::as_u64),
        root.get("dur_us").and_then(Json::as_u64),
        "the trace total is the root span's duration"
    );
    server.shutdown();
}

/// The challenge lifecycle is followable too: the ingest trace carries
/// the incremental-refresh spans, and a post-challenge
/// `/v1/serviceability?epoch=1` read shows up as a cache hit at that
/// epoch (the ingest published the refreshed view).
#[test]
fn challenge_refresh_spans_attach_to_the_ingest_trace() {
    caf_obs::set_enabled(true);
    let (server, _) = start(1, true, 0xC0FFEE);
    let addr = server.addr();

    // A valid (state, cbg, isp) address in the default world.
    let probe = World::generate_states(
        SynthConfig {
            seed: SEED,
            scale: SCALE,
        },
        &UsState::study_states(),
    );
    let delta = ChallengeDelta {
        state: probe.states[0].state,
        cbg: 0,
        isp: probe.states[0].geography.cbgs[0].isp,
        correction: Correction::Availability { rate_ppm: 50_000 },
    };
    let body = delta_to_json(&delta) + "\n";
    let (status, reply) = client::request(
        addr,
        &format!(
            "POST /v1/challenge HTTP/1.1\r\nHost: caf-serve\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
    .unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&reply));

    let (status, _) = client::get(addr, "/v1/serviceability?epoch=1").unwrap();
    assert_eq!(status, 200);

    let (status, body) = client::get(addr, "/v1/debug/traces?route=v1.challenge").unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    let parsed = json::parse(text.trim_end()).unwrap();
    assert_eq!(parsed.get("matched").and_then(Json::as_u64), Some(1));
    for span in ["serve.challenge.refresh", "audit.incremental.refresh"] {
        assert!(
            text.contains(span),
            "ingest trace must carry the {span} span:\n{text}"
        );
    }

    let (status, body) =
        client::get(addr, "/v1/debug/traces?route=v1.serviceability&epoch=1").unwrap();
    assert_eq!(status, 200);
    let parsed = json::parse(String::from_utf8(body).unwrap().trim_end()).unwrap();
    assert_eq!(parsed.get("matched").and_then(Json::as_u64), Some(1));
    let trace = match parsed.get("traces") {
        Some(Json::Arr(traces)) => &traces[0],
        other => panic!("traces must be an array, got {other:?}"),
    };
    assert_eq!(
        trace
            .get("annotations")
            .and_then(|a| a.get("cache"))
            .and_then(Json::as_str),
        Some("hit"),
        "the ingest published epoch 1, so the read must hit"
    );
    server.shutdown();
}

/// Tracing is observation-only: `/v1/table2` bytes are identical with
/// the flight recorder attached or absent, at 1 and 4 engine workers.
#[test]
fn tracing_never_changes_artifact_bytes() {
    caf_obs::set_enabled(true);
    let path = format!("/v1/table2?seed={SEED}&scale={SCALE}");
    let mut bodies: Vec<(String, Vec<u8>)> = Vec::new();
    for engine_workers in [1usize, 4] {
        for traced in [false, true] {
            let (server, _) = start(engine_workers, traced, SEED);
            let (status, body) = client::get(server.addr(), &path).unwrap();
            assert_eq!(status, 200, "workers {engine_workers} traced {traced}");
            server.shutdown();
            bodies.push((format!("workers {engine_workers} traced {traced}"), body));
        }
    }
    let (reference_label, reference) = &bodies[0];
    for (label, body) in &bodies[1..] {
        assert_eq!(
            body, reference,
            "artifact bytes diverged between {reference_label} and {label}"
        );
    }
}

/// `/metrics?format=prometheus` renders the text exposition over the
/// same registry the JSON report reads; unknown formats are a 400.
#[test]
fn metrics_exposes_prometheus_format() {
    caf_obs::set_enabled(true);
    let (server, _) = start(1, true, 3);
    let addr = server.addr();
    let (status, _) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);

    let (status, body) = client::get(addr, "/metrics?format=prometheus").unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("# TYPE"), "{text}");
    assert!(
        text.contains("caf_span_duration_ns_bucket{path=\"serve.request\""),
        "the serve.request span must appear in the exposition:\n{text}"
    );
    assert!(text.lines().all(|line| !line.is_empty()), "{text}");

    // The default JSON report is unchanged and still schema-valid.
    let (status, body) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    caf_obs::validate_report_json(&String::from_utf8(body).unwrap()).expect("valid run report");

    let (status, _) = client::get(addr, "/metrics?format=csv").unwrap();
    assert_eq!(status, 400);
    server.shutdown();
}
