//! End-to-end tests over a real socket: the serving layer must
//! preserve the pipeline's determinism contract *across the network
//! boundary* — response bodies are canonical artifact bytes, identical
//! at any HTTP worker count and any engine worker count.

use caf_core::{artifact, EngineConfig, ScenarioMeta};
use caf_geo::UsState;
use caf_serve::{client, App, AppConfig, Handler, ServeConfig, Server};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 0xCAF_2024;
const SCALE: u32 = 150;

fn start_server(http_workers: usize, engine: EngineConfig) -> (Server, Arc<App>) {
    let app = Arc::new(App::new(AppConfig {
        default_seed: SEED,
        default_scale: SCALE,
        engine,
        cache_capacity: 4,
        compute_timeout: Duration::from_secs(120),
        min_scale: 1,
        ..AppConfig::default()
    }));
    let server = Server::start(
        ServeConfig {
            workers: http_workers,
            queue: 32,
            ..ServeConfig::default()
        },
        Arc::clone(&app) as Arc<dyn Handler>,
    )
    .expect("bind ephemeral port");
    (server, app)
}

#[test]
fn endpoints_are_byte_identical_across_worker_counts_and_match_direct_render() {
    // Server A: 1 HTTP worker, serial engine. Server B: 4 HTTP
    // workers, 4 engine workers. Every /v1 endpoint must agree to the
    // byte, and match the artifact bytes rendered without any server.
    let (server_a, _) = start_server(1, EngineConfig::serial());
    let (server_b, _) = start_server(4, EngineConfig::with_workers(4));

    let fixture = caf_bench::Fixture::build_tuned(
        SEED,
        SCALE,
        &UsState::study_states(),
        EngineConfig::serial(),
    );
    let (_, q3) = caf_bench::Fixture::build_q3_tuned(SEED, SCALE, EngineConfig::serial());
    let meta = ScenarioMeta::new(SEED, SCALE);
    let expected = [
        ("table2", artifact::table2(&fixture.dataset)),
        (
            "serviceability",
            artifact::serviceability(&fixture.serviceability, None),
        ),
        (
            "compliance",
            artifact::compliance(&fixture.compliance, &fixture.dataset, None),
        ),
        ("q3", artifact::q3(&q3)),
    ];

    for (route, body) in expected {
        let golden = artifact::to_canonical_bytes(&meta.wrap(body)).into_bytes();
        let path = format!("/v1/{route}?seed={SEED}&scale={SCALE}");
        let (status_a, body_a) = client::get(server_a.addr(), &path).unwrap();
        let (status_b, body_b) = client::get(server_b.addr(), &path).unwrap();
        assert_eq!((status_a, status_b), (200, 200), "{route}");
        assert_eq!(
            body_a, golden,
            "server A diverged from direct render on {route}"
        );
        assert_eq!(
            body_b, golden,
            "server B diverged from direct render on {route}"
        );
    }

    server_a.shutdown();
    server_b.shutdown();
}

#[test]
fn etag_matches_across_servers_and_repeat_requests() {
    let (server_a, _) = start_server(1, EngineConfig::serial());
    let (server_b, _) = start_server(2, EngineConfig::with_workers(2));
    let path = format!("/v1/table2?seed=7&scale={SCALE}");
    let fetch = |addr| {
        let (status, headers, body) = client::get_full(addr, &path).unwrap();
        assert_eq!(status, 200);
        let etag = headers
            .iter()
            .find(|(name, _)| name == "etag")
            .map(|(_, value)| value.clone())
            .expect("ETag header present");
        (etag, body)
    };
    // ETags are derived from the body bytes, so they must agree across
    // servers and across cold/warm requests.
    let (etag_cold, body_cold) = fetch(server_a.addr());
    let (etag_warm, body_warm) = fetch(server_a.addr());
    let (etag_other, body_other) = fetch(server_b.addr());
    assert_eq!(body_cold, body_warm);
    assert_eq!(body_cold, body_other);
    assert_eq!(etag_cold, etag_warm);
    assert_eq!(etag_cold, etag_other);
    server_a.shutdown();
    server_b.shutdown();
}

#[test]
fn health_metrics_and_errors_over_http() {
    caf_obs::set_enabled(true);
    let (server, _) = start_server(2, EngineConfig::serial());
    let addr = server.addr();

    let (status, body) = client::get(addr, "/healthz").unwrap();
    assert_eq!(status, 200);
    let health = caf_obs::json::parse(String::from_utf8(body).unwrap().trim_end()).unwrap();
    assert_eq!(health.get("status").and_then(|j| j.as_str()), Some("ok"));
    assert_eq!(health.get("epoch").and_then(|j| j.as_u64()), Some(0));

    // A scenario request first, so the report has spans to validate.
    let (status, _) = client::get(addr, &format!("/v1/table2?scale={SCALE}")).unwrap();
    assert_eq!(status, 200);

    let (status, body) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    let report = caf_obs::validate_report_json(&text).expect("valid run report");
    let meta = report.get("meta").unwrap();
    assert_eq!(meta.get("tool").unwrap().as_str(), Some("caf-serve"));

    let (status, _) = client::get(addr, "/v1/table2?seed=bogus").unwrap();
    assert_eq!(status, 400);
    let (status, _) = client::get(addr, "/nope").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

#[test]
fn compute_timeout_sheds_joiners_with_503() {
    // Tiny join timeout + a scenario slow enough (low downscale
    // factor) that the second request reliably arrives mid-flight.
    let app = Arc::new(App::new(AppConfig {
        default_seed: SEED,
        default_scale: SCALE,
        engine: EngineConfig::serial(),
        cache_capacity: 4,
        compute_timeout: Duration::from_millis(10),
        min_scale: 1,
        ..AppConfig::default()
    }));
    let server = Server::start(
        ServeConfig {
            workers: 2,
            queue: 8,
            ..ServeConfig::default()
        },
        Arc::clone(&app) as Arc<dyn Handler>,
    )
    .unwrap();
    let addr = server.addr();
    let path = "/v1/table2?seed=11&scale=60";

    let leader = std::thread::spawn(move || client::get(addr, path).unwrap());
    // The scale-60 build takes hundreds of ms in debug builds; 50 ms in
    // is comfortably mid-flight.
    std::thread::sleep(Duration::from_millis(50));
    let (status, body) = client::get(addr, path).unwrap();
    let text = String::from_utf8(body).unwrap();
    assert_eq!(status, 503, "{text}");
    assert!(text.contains("in flight"), "{text}");
    assert_eq!(app.cache_stats().join_timeouts, 1);

    let (status, _) = leader.join().unwrap();
    assert_eq!(status, 200, "the flight itself must still complete");
    server.shutdown();
}
