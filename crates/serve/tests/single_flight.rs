//! The single-flight acceptance test, in its own test binary so the
//! global `caf-obs` registry holds *only* this burst's counters: a
//! 16-client concurrent burst against one cold scenario must record
//! exactly 1 cache miss and 15 single-flight joins.

use caf_core::EngineConfig;
use caf_serve::{client, App, AppConfig, Handler, ServeConfig, Server};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const CLIENTS: usize = 16;

#[test]
fn sixteen_client_burst_computes_once_and_joins_fifteen_times() {
    caf_obs::set_enabled(true);
    let app = Arc::new(App::new(AppConfig {
        default_seed: 0xCAF_2024,
        default_scale: 150,
        engine: EngineConfig::serial(),
        cache_capacity: 4,
        compute_timeout: Duration::from_secs(120),
        min_scale: 1,
        ..AppConfig::default()
    }));
    // Enough HTTP workers that every client is in a handler at once —
    // the burst must contend on the *cache*, not the accept queue.
    let server = Server::start(
        ServeConfig {
            workers: CLIENTS,
            queue: CLIENTS * 2,
            ..ServeConfig::default()
        },
        Arc::clone(&app) as Arc<dyn Handler>,
    )
    .unwrap();
    let addr = server.addr();

    // The scale-100 scenario takes long enough to build (hundreds of
    // ms in debug builds) that all 16 requests — released together by
    // the barrier, connected within a few ms — overlap the flight.
    let path = "/v1/table2?seed=3&scale=100";
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                client::get(addr, path).unwrap()
            })
        })
        .collect();
    let mut bodies = Vec::new();
    for thread in clients {
        let (status, body) = thread.join().unwrap();
        assert_eq!(status, 200);
        bodies.push(body);
    }
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "joined responses must be byte-identical");
    }

    let stats = app.cache_stats();
    assert_eq!(stats.misses, 1, "exactly one computation: {stats:?}");
    assert_eq!(stats.joins, 15, "fifteen single-flight joins: {stats:?}");
    assert_eq!(stats.hits, 0, "no request should have come late: {stats:?}");

    // The same invariant must be visible through the public telemetry.
    let registry = caf_obs::registry();
    assert_eq!(registry.counter("caf.serve.cache.misses").get(), 1);
    assert_eq!(registry.counter("caf.serve.cache.joins").get(), 15);
    assert_eq!(registry.counter("caf.serve.requests").get(), CLIENTS as u64);
    assert_eq!(registry.counter("caf.serve.http.200").get(), CLIENTS as u64);
    assert_eq!(registry.counter("caf.serve.shed").get(), 0);

    server.shutdown();
}
