//! Convenience relational operations: rename, drop, computed columns,
//! value counts, and numeric summaries.

use crate::column::Column;
use crate::error::FrameError;
use crate::frame::{DataFrame, RowView};
use crate::groupby::{Agg, AggSpec};
use crate::value::{DataType, Value};

impl DataFrame {
    /// A new frame with column `old` renamed to `new`.
    pub fn rename(&self, old: &str, new: &str) -> Result<DataFrame, FrameError> {
        if !self.has_column(old) {
            return Err(FrameError::NoSuchColumn(old.to_string()));
        }
        if self.has_column(new) && new != old {
            return Err(FrameError::DuplicateColumn(new.to_string()));
        }
        let cols = self
            .names()
            .iter()
            .map(|name| {
                let out_name = if name == old { new } else { name.as_str() };
                Ok((out_name.to_string(), self.column(name)?.clone()))
            })
            .collect::<Result<Vec<_>, FrameError>>()?;
        DataFrame::new(cols)
    }

    /// A new frame without the named columns. Unknown names are an error
    /// (silently ignoring typos hides bugs).
    pub fn drop_columns(&self, names: &[&str]) -> Result<DataFrame, FrameError> {
        for &name in names {
            if !self.has_column(name) {
                return Err(FrameError::NoSuchColumn(name.to_string()));
            }
        }
        let cols = self
            .names()
            .iter()
            .filter(|name| !names.contains(&name.as_str()))
            .map(|name| Ok((name.clone(), self.column(name)?.clone())))
            .collect::<Result<Vec<_>, FrameError>>()?;
        DataFrame::new(cols)
    }

    /// A new frame with an extra column computed row-by-row.
    pub fn with_computed<F>(
        &self,
        name: &str,
        dtype: DataType,
        f: F,
    ) -> Result<DataFrame, FrameError>
    where
        F: Fn(RowView<'_>) -> Value,
    {
        let mut column = Column::empty(dtype);
        for row in self.rows() {
            column.push(f(row), name)?;
        }
        self.with_column(name, column)
    }

    /// Counts of each distinct value in a column, as a two-column frame
    /// `(value-column-name, "count")` sorted by descending count (ties by
    /// value order).
    pub fn value_counts(&self, name: &str) -> Result<DataFrame, FrameError> {
        self.column(name)?; // existence check
        let counted = self.group_by(&[name], &[AggSpec::new(Agg::Count, "count")])?;
        counted.sort_by(&[("count", false), (name, true)])
    }

    /// Per-numeric-column summaries: one row per numeric column with
    /// `column, n, nulls, min, mean, max`.
    pub fn describe(&self) -> DataFrame {
        let mut names: Vec<String> = Vec::new();
        let mut n: Vec<i64> = Vec::new();
        let mut nulls: Vec<i64> = Vec::new();
        let mut mins: Vec<Option<f64>> = Vec::new();
        let mut means: Vec<Option<f64>> = Vec::new();
        let mut maxs: Vec<Option<f64>> = Vec::new();
        for name in self.names() {
            let col = self.column(name).expect("own name");
            let Some(values) = col.numeric_values() else {
                continue;
            };
            names.push(name.clone());
            n.push(values.len() as i64);
            nulls.push(col.null_count() as i64);
            if values.is_empty() {
                mins.push(None);
                means.push(None);
                maxs.push(None);
            } else {
                mins.push(Some(values.iter().cloned().fold(f64::INFINITY, f64::min)));
                means.push(Some(values.iter().sum::<f64>() / values.len() as f64));
                maxs.push(Some(
                    values.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                ));
            }
        }
        DataFrame::new(vec![
            ("column", names.into_iter().collect::<Column>()),
            ("n", n.into_iter().collect::<Column>()),
            ("nulls", nulls.into_iter().collect::<Column>()),
            ("min", Column::Float(mins)),
            ("mean", Column::Float(means)),
            ("max", Column::Float(maxs)),
        ])
        .expect("columns constructed with equal lengths")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::new(vec![
            ("isp", ["att", "att", "cl"].into_iter().collect::<Column>()),
            ("speed", Column::Float(vec![Some(10.0), None, Some(100.0)])),
        ])
        .unwrap()
    }

    #[test]
    fn rename_moves_the_column() {
        let df = sample().rename("speed", "down_mbps").unwrap();
        assert!(df.has_column("down_mbps"));
        assert!(!df.has_column("speed"));
        assert_eq!(df.row(0).f64("down_mbps"), Some(10.0));
        assert!(sample().rename("nope", "x").is_err());
        assert!(sample().rename("speed", "isp").is_err());
        // Renaming to itself is a no-op, not a duplicate.
        assert!(sample().rename("isp", "isp").is_ok());
    }

    #[test]
    fn drop_columns_validates() {
        let df = sample().drop_columns(&["speed"]).unwrap();
        assert_eq!(df.names(), &["isp"]);
        assert!(sample().drop_columns(&["nope"]).is_err());
    }

    #[test]
    fn computed_column() {
        let df = sample()
            .with_computed("fast", DataType::Bool, |r| {
                Value::Bool(r.f64("speed").unwrap_or(0.0) >= 25.0)
            })
            .unwrap();
        assert_eq!(df.row(0).bool("fast"), Some(false));
        assert_eq!(df.row(2).bool("fast"), Some(true));
        // Type mismatch from the closure is surfaced, not ignored.
        let bad = sample().with_computed("x", DataType::Int, |_| Value::Str("no".into()));
        assert!(bad.is_err());
    }

    #[test]
    fn value_counts_sorted_desc() {
        let counts = sample().value_counts("isp").unwrap();
        assert_eq!(counts.n_rows(), 2);
        assert_eq!(counts.row(0).str("isp").unwrap(), "att");
        assert_eq!(counts.row(0).i64("count"), Some(2));
        assert_eq!(counts.row(1).i64("count"), Some(1));
        assert!(sample().value_counts("nope").is_err());
    }

    #[test]
    fn describe_covers_numeric_columns_only() {
        let d = sample().describe();
        assert_eq!(d.n_rows(), 1); // only "speed" is numeric
        assert_eq!(d.row(0).str("column").unwrap(), "speed");
        assert_eq!(d.row(0).i64("n"), Some(2));
        assert_eq!(d.row(0).i64("nulls"), Some(1));
        assert_eq!(d.row(0).f64("min"), Some(10.0));
        assert_eq!(d.row(0).f64("mean"), Some(55.0));
        assert_eq!(d.row(0).f64("max"), Some(100.0));
    }
}
