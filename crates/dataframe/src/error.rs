//! Error type for the dataframe engine.

use crate::value::DataType;
use std::fmt;

/// Errors produced by dataframe operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Referenced a column that does not exist.
    NoSuchColumn(String),
    /// Two columns with the same name in one frame.
    DuplicateColumn(String),
    /// Columns of differing lengths supplied to a frame constructor.
    RaggedColumns {
        /// Name of the offending column.
        column: String,
        /// Its length.
        got: usize,
        /// The frame's row count.
        expected: usize,
    },
    /// A row with the wrong number of cells pushed into a frame.
    RowArity {
        /// Cells supplied.
        got: usize,
        /// Columns in the frame.
        expected: usize,
    },
    /// A value of the wrong type for its column.
    TypeMismatch {
        /// Column name.
        column: String,
        /// The column's type.
        expected: DataType,
        /// The supplied value's type, or `None` for an untyped null.
        got: Option<DataType>,
    },
    /// An aggregation that requires a numeric column was applied to a
    /// non-numeric one.
    NonNumericAggregate {
        /// Column name.
        column: String,
        /// The column's actual type.
        dtype: DataType,
    },
    /// Join keys with incompatible types.
    KeyTypeMismatch {
        /// Left column type.
        left: DataType,
        /// Right column type.
        right: DataType,
    },
    /// CSV input that could not be parsed.
    Csv(String),
    /// An aggregation over zero non-null values where one is required.
    EmptyAggregate(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::NoSuchColumn(name) => write!(f, "no such column {name:?}"),
            FrameError::DuplicateColumn(name) => write!(f, "duplicate column {name:?}"),
            FrameError::RaggedColumns {
                column,
                got,
                expected,
            } => write!(
                f,
                "column {column:?} has {got} rows, frame expects {expected}"
            ),
            FrameError::RowArity { got, expected } => {
                write!(f, "row has {got} cells, frame has {expected} columns")
            }
            FrameError::TypeMismatch {
                column,
                expected,
                got,
            } => match got {
                Some(got) => write!(f, "column {column:?} expects {expected}, got a {got} value"),
                None => write!(f, "column {column:?} expects {expected}"),
            },
            FrameError::NonNumericAggregate { column, dtype } => {
                write!(f, "cannot numerically aggregate {dtype} column {column:?}")
            }
            FrameError::KeyTypeMismatch { left, right } => {
                write!(f, "join key types differ: {left} vs {right}")
            }
            FrameError::Csv(msg) => write!(f, "csv error: {msg}"),
            FrameError::EmptyAggregate(column) => {
                write!(f, "aggregate over column {column:?} has no non-null values")
            }
        }
    }
}

impl std::error::Error for FrameError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            FrameError::NoSuchColumn("isp".into()).to_string(),
            "no such column \"isp\""
        );
        let e = FrameError::TypeMismatch {
            column: "speed".into(),
            expected: DataType::Float,
            got: Some(DataType::Str),
        };
        assert!(e.to_string().contains("expects float"));
    }
}
