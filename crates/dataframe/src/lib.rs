//! # caf-dataframe — a small columnar table engine
//!
//! The paper's analysis is relational: the USAC CAF-Map is a table of
//! certified deployments, the BQT output is a table of query outcomes, and
//! every result is a filter → group-by → aggregate over their join. The
//! Python original would lean on pandas; the Rust dataframe ecosystem is
//! thin, so this crate implements the minimal-but-complete engine the
//! pipeline needs:
//!
//! * typed, nullable columns ([`Column`]) of integers, floats, strings and
//!   booleans;
//! * immutable-by-default tables ([`DataFrame`]) with row-wise building,
//!   column selection, closure-based filtering, and stable multi-key sorts;
//! * hash group-by with the aggregations the paper uses (count, sum, mean,
//!   median, min, max, weighted mean);
//! * inner and left hash joins;
//! * CSV serialization and aligned pretty-printing for the repro harness.
//!
//! The engine is deliberately synchronous and single-threaded: the
//! workspace's parallelism lives in the BQT campaign layer, and keeping the
//! relational core simple makes its behaviour easy to verify (the smoltcp
//! design stance: simplicity and robustness over cleverness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod csv;
pub mod display;
pub mod error;
pub mod frame;
pub mod groupby;
pub mod join;
pub mod ops;
pub mod value;

pub use column::Column;
pub use error::FrameError;
pub use frame::{DataFrame, RowView};
pub use groupby::{Agg, AggSpec};
pub use join::JoinKind;
pub use value::{DataType, Value};
