//! CSV serialization.
//!
//! The repro harness writes every regenerated table/figure series as CSV so
//! downstream plotting (or a reviewer's spreadsheet) can consume it. The
//! reader exists for round-tripping intermediate results between pipeline
//! stages; it infers column types from the data.

use crate::column::Column;
use crate::error::FrameError;
use crate::frame::DataFrame;
use crate::value::{DataType, Value};

/// Quotes a CSV field if it contains a delimiter, quote, or newline.
fn quote_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl DataFrame {
    /// Serializes the frame to CSV (header row + one line per row, `\n`
    /// line endings, RFC-4180 quoting). Nulls serialize as empty fields.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &self
                .names()
                .iter()
                .map(|n| quote_field(n))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in self.rows() {
            let line: Vec<String> = self
                .names()
                .iter()
                .map(|n| quote_field(&row.get(n).expect("own column").to_string()))
                .collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    /// Parses a CSV string produced by [`DataFrame::to_csv`] (or any
    /// RFC-4180 CSV). Column types are inferred per column: `Int` if every
    /// non-empty field parses as `i64`, else `Float` if every non-empty
    /// field parses as `f64`, else `Bool` if every non-empty field is
    /// `true`/`false`, else `Str`. Empty fields are nulls.
    pub fn from_csv(text: &str) -> Result<DataFrame, FrameError> {
        let rows = parse_csv(text)?;
        let mut iter = rows.into_iter();
        let header = iter
            .next()
            .ok_or_else(|| FrameError::Csv("empty input".into()))?;
        let records: Vec<Vec<String>> = iter.collect();
        for (i, rec) in records.iter().enumerate() {
            if rec.len() != header.len() {
                return Err(FrameError::Csv(format!(
                    "row {} has {} fields, header has {}",
                    i + 1,
                    rec.len(),
                    header.len()
                )));
            }
        }

        let mut cols: Vec<(String, Column)> = Vec::with_capacity(header.len());
        for (ci, name) in header.iter().enumerate() {
            let fields: Vec<&str> = records.iter().map(|r| r[ci].as_str()).collect();
            let dtype = infer_dtype(&fields);
            let mut col = Column::empty(dtype);
            for field in fields {
                let value = parse_field(field, dtype);
                col.push(value, name)?;
            }
            cols.push((name.clone(), col));
        }
        DataFrame::new(cols)
    }
}

fn infer_dtype(fields: &[&str]) -> DataType {
    let non_empty: Vec<&&str> = fields.iter().filter(|f| !f.is_empty()).collect();
    if non_empty.is_empty() {
        return DataType::Str;
    }
    if non_empty.iter().all(|f| f.parse::<i64>().is_ok()) {
        return DataType::Int;
    }
    if non_empty.iter().all(|f| f.parse::<f64>().is_ok()) {
        return DataType::Float;
    }
    if non_empty.iter().all(|f| **f == "true" || **f == "false") {
        return DataType::Bool;
    }
    DataType::Str
}

fn parse_field(field: &str, dtype: DataType) -> Value {
    if field.is_empty() {
        return Value::Null;
    }
    match dtype {
        DataType::Int => Value::Int(field.parse().expect("inferred int parses")),
        DataType::Float => Value::Float(field.parse().expect("inferred float parses")),
        DataType::Bool => Value::Bool(field == "true"),
        DataType::Str => Value::Str(field.to_string()),
    }
}

/// A minimal RFC-4180 parser: handles quoted fields, escaped quotes, and
/// both `\n` and `\r\n` line endings. Rejects unterminated quotes.
fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, FrameError> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut field_started = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() && !field_started => {
                in_quotes = true;
                field_started = true;
            }
            ',' => {
                row.push(std::mem::take(&mut field));
                field_started = false;
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
                field_started = false;
            }
            '\n' => {
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
                field_started = false;
            }
            _ => {
                field.push(c);
                field_started = true;
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Csv("unterminated quoted field".into()));
    }
    if field_started || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::new(vec![
            ("isp", ["at&t", "frontier, inc"].into_iter().collect()),
            ("speed", [10.5, 100.0].into_iter().collect()),
            ("n", [3i64, 4].into_iter().collect()),
            ("served", [true, false].into_iter().collect()),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_shape_and_values() {
        let df = sample();
        let csv = df.to_csv();
        let back = DataFrame::from_csv(&csv).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert_eq!(back.names(), df.names());
        assert_eq!(back.row(0).str("isp").unwrap(), "at&t");
        assert_eq!(back.row(1).str("isp").unwrap(), "frontier, inc");
        assert_eq!(back.row(0).f64("speed"), Some(10.5));
        assert_eq!(back.row(0).i64("n"), Some(3));
        assert_eq!(back.row(1).bool("served"), Some(false));
    }

    #[test]
    fn quoting_applied_where_needed() {
        let csv = sample().to_csv();
        assert!(csv.contains("\"frontier, inc\""));
        assert!(csv.starts_with("isp,speed,n,served\n"));
    }

    #[test]
    fn embedded_quotes_and_newlines() {
        let df = DataFrame::new(vec![(
            "note",
            ["say \"hi\"", "two\nlines"].into_iter().collect(),
        )])
        .unwrap();
        let back = DataFrame::from_csv(&df.to_csv()).unwrap();
        assert_eq!(back.row(0).str("note").unwrap(), "say \"hi\"");
        assert_eq!(back.row(1).str("note").unwrap(), "two\nlines");
    }

    #[test]
    fn nulls_roundtrip_as_empty_fields() {
        let df = DataFrame::new(vec![
            ("x", Column::Float(vec![Some(1.0), None])),
            ("s", Column::Str(vec![None, Some("b".into())])),
        ])
        .unwrap();
        let back = DataFrame::from_csv(&df.to_csv()).unwrap();
        assert_eq!(back.row(1).get("x").unwrap(), Value::Null);
        assert_eq!(back.row(0).get("s").unwrap(), Value::Null);
        assert_eq!(back.row(0).f64("x"), Some(1.0));
    }

    #[test]
    fn crlf_accepted() {
        let df = DataFrame::from_csv("a,b\r\n1,2\r\n3,4\r\n").unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.row(1).i64("b"), Some(4));
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(DataFrame::from_csv("").is_err());
        assert!(DataFrame::from_csv("a,b\n1\n").is_err());
        assert!(DataFrame::from_csv("a\n\"unterminated\n").is_err());
    }

    #[test]
    fn type_inference_prefers_narrowest() {
        let df = DataFrame::from_csv("i,f,b,s\n1,1.5,true,x\n2,2,false,y\n").unwrap();
        assert_eq!(df.column("i").unwrap().dtype(), DataType::Int);
        assert_eq!(df.column("f").unwrap().dtype(), DataType::Float);
        assert_eq!(df.column("b").unwrap().dtype(), DataType::Bool);
        assert_eq!(df.column("s").unwrap().dtype(), DataType::Str);
    }
}
