//! Typed, nullable column storage.

use crate::error::FrameError;
use crate::value::{DataType, Value};

/// A named, typed, nullable column.
///
/// Storage is a dense `Vec<Option<T>>` per type. The CAF tables are a few
/// hundred thousand rows; dense options keep the code simple and the cache
/// behaviour predictable without a separate validity bitmap.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Integer column.
    Int(Vec<Option<i64>>),
    /// Float column.
    Float(Vec<Option<f64>>),
    /// String column.
    Str(Vec<Option<String>>),
    /// Boolean column.
    Bool(Vec<Option<bool>>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(dtype: DataType) -> Column {
        match dtype {
            DataType::Int => Column::Int(Vec::new()),
            DataType::Float => Column::Float(Vec::new()),
            DataType::Str => Column::Str(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
        }
    }

    /// The column's type.
    pub fn dtype(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Float(_) => DataType::Float,
            Column::Str(_) => DataType::Str,
            Column::Bool(_) => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::Bool(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cell at `row` as a dynamic [`Value`].
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => v[row].map(Value::Int).unwrap_or(Value::Null),
            Column::Float(v) => v[row].map(Value::Float).unwrap_or(Value::Null),
            Column::Str(v) => v[row]
                .as_ref()
                .map(|s| Value::Str(s.clone()))
                .unwrap_or(Value::Null),
            Column::Bool(v) => v[row].map(Value::Bool).unwrap_or(Value::Null),
        }
    }

    /// Appends a value, checking the type. Integers are accepted into
    /// float columns (widened); everything else must match exactly.
    pub fn push(&mut self, value: Value, column_name: &str) -> Result<(), FrameError> {
        let expected = self.dtype();
        let mismatch = move |got: Option<DataType>| FrameError::TypeMismatch {
            column: column_name.to_string(),
            expected,
            got,
        };
        match (self, value) {
            (Column::Int(v), Value::Int(x)) => v.push(Some(x)),
            (Column::Int(v), Value::Null) => v.push(None),
            (Column::Float(v), Value::Float(x)) => v.push(Some(x)),
            (Column::Float(v), Value::Int(x)) => v.push(Some(x as f64)),
            (Column::Float(v), Value::Null) => v.push(None),
            (Column::Str(v), Value::Str(x)) => v.push(Some(x)),
            (Column::Str(v), Value::Null) => v.push(None),
            (Column::Bool(v), Value::Bool(x)) => v.push(Some(x)),
            (Column::Bool(v), Value::Null) => v.push(None),
            (_, value) => return Err(mismatch(value.dtype())),
        }
        Ok(())
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Str(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Non-null cells as `f64`, if the column is numeric.
    pub fn numeric_values(&self) -> Option<Vec<f64>> {
        match self {
            Column::Int(v) => Some(v.iter().flatten().map(|&x| x as f64).collect()),
            Column::Float(v) => Some(v.iter().flatten().copied().collect()),
            _ => None,
        }
    }

    /// A new column containing the rows at `indices`, in order.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn take(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(indices.iter().map(|&i| v[i]).collect()),
            Column::Float(v) => Column::Float(indices.iter().map(|&i| v[i]).collect()),
            Column::Str(v) => Column::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            Column::Bool(v) => Column::Bool(indices.iter().map(|&i| v[i]).collect()),
        }
    }
}

/// Builds an integer column from an iterator.
impl FromIterator<i64> for Column {
    fn from_iter<I: IntoIterator<Item = i64>>(iter: I) -> Column {
        Column::Int(iter.into_iter().map(Some).collect())
    }
}

/// Builds a float column from an iterator.
impl FromIterator<f64> for Column {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Column {
        Column::Float(iter.into_iter().map(Some).collect())
    }
}

/// Builds a string column from an iterator.
impl<'a> FromIterator<&'a str> for Column {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> Column {
        Column::Str(iter.into_iter().map(|s| Some(s.to_string())).collect())
    }
}

/// Builds a string column from owned strings.
impl FromIterator<String> for Column {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Column {
        Column::Str(iter.into_iter().map(Some).collect())
    }
}

/// Builds a boolean column from an iterator.
impl FromIterator<bool> for Column {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Column {
        Column::Bool(iter.into_iter().map(Some).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_roundtrip() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::Float(1.5), "x").unwrap();
        c.push(Value::Int(2), "x").unwrap(); // widened
        c.push(Value::Null, "x").unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Float(1.5));
        assert_eq!(c.get(1), Value::Float(2.0));
        assert_eq!(c.get(2), Value::Null);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::empty(DataType::Int);
        let err = c.push(Value::Str("x".into()), "count").unwrap_err();
        assert_eq!(
            err,
            FrameError::TypeMismatch {
                column: "count".into(),
                expected: DataType::Int,
                got: Some(DataType::Str),
            }
        );
        // Int column does not accept floats (would silently truncate).
        assert!(c.push(Value::Float(1.5), "count").is_err());
    }

    #[test]
    fn numeric_values_skips_nulls() {
        let c = Column::Int(vec![Some(1), None, Some(3)]);
        assert_eq!(c.numeric_values().unwrap(), vec![1.0, 3.0]);
        let s: Column = ["a", "b"].into_iter().collect();
        assert_eq!(s.numeric_values(), None);
    }

    #[test]
    fn take_reorders_and_duplicates() {
        let c: Column = [10i64, 20, 30].into_iter().collect();
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.get(0), Value::Int(30));
        assert_eq!(t.get(1), Value::Int(10));
        assert_eq!(t.get(2), Value::Int(10));
    }

    #[test]
    fn from_iterators() {
        let c: Column = [1.0, 2.0].into_iter().collect();
        assert_eq!(c.dtype(), DataType::Float);
        let c: Column = [true, false].into_iter().collect();
        assert_eq!(c.dtype(), DataType::Bool);
        let c: Column = ["a".to_string()].into_iter().collect();
        assert_eq!(c.dtype(), DataType::Str);
        assert!(!c.is_empty());
    }
}
