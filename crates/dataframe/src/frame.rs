//! The [`DataFrame`] table type and its row accessor.

use crate::column::Column;
use crate::error::FrameError;
use crate::value::{DataType, Value};
use std::collections::HashMap;

/// A named collection of equal-length typed columns.
#[derive(Debug, Clone, PartialEq)]
pub struct DataFrame {
    names: Vec<String>,
    columns: Vec<Column>,
    index: HashMap<String, usize>,
}

impl DataFrame {
    /// Creates a frame from `(name, column)` pairs. All columns must have
    /// the same length and distinct names.
    pub fn new<S: Into<String>>(cols: Vec<(S, Column)>) -> Result<DataFrame, FrameError> {
        let mut frame = DataFrame {
            names: Vec::with_capacity(cols.len()),
            columns: Vec::with_capacity(cols.len()),
            index: HashMap::with_capacity(cols.len()),
        };
        let mut expected_len: Option<usize> = None;
        for (name, column) in cols {
            let name = name.into();
            if frame.index.contains_key(&name) {
                return Err(FrameError::DuplicateColumn(name));
            }
            if let Some(expected) = expected_len {
                if column.len() != expected {
                    return Err(FrameError::RaggedColumns {
                        column: name,
                        got: column.len(),
                        expected,
                    });
                }
            } else {
                expected_len = Some(column.len());
            }
            frame.index.insert(name.clone(), frame.columns.len());
            frame.names.push(name);
            frame.columns.push(column);
        }
        Ok(frame)
    }

    /// Creates an empty frame with the given schema, ready for
    /// [`DataFrame::push_row`].
    pub fn with_schema(schema: &[(&str, DataType)]) -> Result<DataFrame, FrameError> {
        DataFrame::new(
            schema
                .iter()
                .map(|&(name, dtype)| (name, Column::empty(dtype)))
                .collect(),
        )
    }

    /// Appends one row of values, in column order.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), FrameError> {
        if row.len() != self.columns.len() {
            return Err(FrameError::RowArity {
                got: row.len(),
                expected: self.columns.len(),
            });
        }
        // Validate all cells before mutating any column so a failed push
        // leaves the frame unchanged.
        for (i, value) in row.iter().enumerate() {
            let col = &self.columns[i];
            let ok = matches!(
                (col.dtype(), value),
                (_, Value::Null)
                    | (DataType::Int, Value::Int(_))
                    | (DataType::Float, Value::Float(_) | Value::Int(_))
                    | (DataType::Str, Value::Str(_))
                    | (DataType::Bool, Value::Bool(_))
            );
            if !ok {
                return Err(FrameError::TypeMismatch {
                    column: self.names[i].clone(),
                    expected: col.dtype(),
                    got: value.dtype(),
                });
            }
        }
        for (i, value) in row.into_iter().enumerate() {
            let name = &self.names[i];
            self.columns[i]
                .push(value, name)
                .expect("pre-validated push cannot fail");
        }
        Ok(())
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names, in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Whether a column exists.
    pub fn has_column(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// A column by name.
    pub fn column(&self, name: &str) -> Result<&Column, FrameError> {
        self.index
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| FrameError::NoSuchColumn(name.to_string()))
    }

    /// Internal: column position by name.
    fn col_idx(&self, name: &str) -> Result<usize, FrameError> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| FrameError::NoSuchColumn(name.to_string()))
    }

    /// A lightweight view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= n_rows()`.
    pub fn row(&self, row: usize) -> RowView<'_> {
        assert!(row < self.n_rows(), "row {row} out of range");
        RowView { frame: self, row }
    }

    /// Iterates over all rows.
    pub fn rows(&self) -> impl Iterator<Item = RowView<'_>> {
        (0..self.n_rows()).map(move |row| RowView { frame: self, row })
    }

    /// A new frame with only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame, FrameError> {
        let cols = names
            .iter()
            .map(|&name| Ok((name, self.column(name)?.clone())))
            .collect::<Result<Vec<_>, FrameError>>()?;
        DataFrame::new(cols)
    }

    /// A new frame with rows for which `predicate` returns true.
    pub fn filter<F>(&self, predicate: F) -> DataFrame
    where
        F: Fn(RowView<'_>) -> bool,
    {
        let indices: Vec<usize> = (0..self.n_rows())
            .filter(|&i| {
                predicate(RowView {
                    frame: self,
                    row: i,
                })
            })
            .collect();
        self.take(&indices)
    }

    /// A new frame containing the rows at `indices`, in order (duplicates
    /// allowed).
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        DataFrame {
            names: self.names.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            index: self.index.clone(),
        }
    }

    /// The first `n` rows (all rows if `n > n_rows`).
    pub fn head(&self, n: usize) -> DataFrame {
        let indices: Vec<usize> = (0..self.n_rows().min(n)).collect();
        self.take(&indices)
    }

    /// A stable sort by the given key columns, each ascending or not.
    ///
    /// Nulls sort first within ascending keys (last within descending),
    /// matching the [`Value::total_cmp`] order.
    pub fn sort_by(&self, keys: &[(&str, bool)]) -> Result<DataFrame, FrameError> {
        let key_cols: Vec<(usize, bool)> = keys
            .iter()
            .map(|&(name, asc)| Ok((self.col_idx(name)?, asc)))
            .collect::<Result<Vec<_>, FrameError>>()?;
        let mut indices: Vec<usize> = (0..self.n_rows()).collect();
        indices.sort_by(|&a, &b| {
            for &(col, asc) in &key_cols {
                let va = self.columns[col].get(a);
                let vb = self.columns[col].get(b);
                let ord = va.total_cmp(&vb);
                if ord != std::cmp::Ordering::Equal {
                    return if asc { ord } else { ord.reverse() };
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(self.take(&indices))
    }

    /// A new frame with `column` appended under `name`.
    pub fn with_column<S: Into<String>>(
        &self,
        name: S,
        column: Column,
    ) -> Result<DataFrame, FrameError> {
        let name = name.into();
        if self.index.contains_key(&name) {
            return Err(FrameError::DuplicateColumn(name));
        }
        if column.len() != self.n_rows() && self.n_cols() > 0 {
            return Err(FrameError::RaggedColumns {
                column: name,
                got: column.len(),
                expected: self.n_rows(),
            });
        }
        let mut out = self.clone();
        out.index.insert(name.clone(), out.columns.len());
        out.names.push(name);
        out.columns.push(column);
        Ok(out)
    }

    /// Concatenates `other`'s rows below this frame's. Schemas (names,
    /// order, types) must match exactly.
    pub fn vstack(&self, other: &DataFrame) -> Result<DataFrame, FrameError> {
        if self.names != other.names {
            let missing = self
                .names
                .iter()
                .find(|n| !other.has_column(n))
                .cloned()
                .unwrap_or_else(|| "<column order>".to_string());
            return Err(FrameError::NoSuchColumn(missing));
        }
        let mut out = self.clone();
        for (i, col) in out.columns.iter_mut().enumerate() {
            let rhs = &other.columns[i];
            if col.dtype() != rhs.dtype() {
                return Err(FrameError::TypeMismatch {
                    column: out.names[i].clone(),
                    expected: col.dtype(),
                    got: Some(rhs.dtype()),
                });
            }
            match (col, rhs) {
                (Column::Int(a), Column::Int(b)) => a.extend_from_slice(b),
                (Column::Float(a), Column::Float(b)) => a.extend_from_slice(b),
                (Column::Str(a), Column::Str(b)) => a.extend(b.iter().cloned()),
                (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
                _ => unreachable!("dtype checked above"),
            }
        }
        Ok(out)
    }
}

/// A borrowed view of one row of a [`DataFrame`].
#[derive(Debug, Clone, Copy)]
pub struct RowView<'a> {
    frame: &'a DataFrame,
    row: usize,
}

impl<'a> RowView<'a> {
    /// The row index within the frame.
    pub fn index(&self) -> usize {
        self.row
    }

    /// The cell in the named column.
    pub fn get(&self, name: &str) -> Result<Value, FrameError> {
        Ok(self.frame.column(name)?.get(self.row))
    }

    /// The cell as `f64`, or `None` if null/non-numeric/missing column.
    pub fn f64(&self, name: &str) -> Option<f64> {
        self.get(name).ok().and_then(|v| v.as_f64())
    }

    /// The cell as `i64`, or `None`.
    pub fn i64(&self, name: &str) -> Option<i64> {
        self.get(name).ok().and_then(|v| v.as_i64())
    }

    /// The cell as an owned `String`, or `None`.
    pub fn str(&self, name: &str) -> Option<String> {
        self.get(name).ok().and_then(|v| match v {
            Value::Str(s) => Some(s),
            _ => None,
        })
    }

    /// The cell as `bool`, or `None`.
    pub fn bool(&self, name: &str) -> Option<bool> {
        self.get(name).ok().and_then(|v| v.as_bool())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::new(vec![
            (
                "isp",
                ["att", "frontier", "att", "lumen"].into_iter().collect(),
            ),
            ("speed", [10.0, 25.0, 0.768, 100.0].into_iter().collect()),
            ("served", [true, true, false, true].into_iter().collect()),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let df = sample();
        assert_eq!(df.n_rows(), 4);
        assert_eq!(df.n_cols(), 3);
        assert_eq!(df.names(), &["isp", "speed", "served"]);
        assert!(df.has_column("isp"));
        assert!(!df.has_column("state"));
    }

    #[test]
    fn ragged_and_duplicate_rejected() {
        let short: Column = [1.0].into_iter().collect();
        let long: Column = [1.0, 2.0].into_iter().collect();
        assert!(matches!(
            DataFrame::new(vec![("a", short.clone()), ("b", long)]),
            Err(FrameError::RaggedColumns { .. })
        ));
        assert!(matches!(
            DataFrame::new(vec![("a", short.clone()), ("a", short)]),
            Err(FrameError::DuplicateColumn(_))
        ));
    }

    #[test]
    fn push_row_validates_atomically() {
        let mut df = DataFrame::with_schema(&[("n", DataType::Int), ("s", DataType::Str)]).unwrap();
        df.push_row(vec![Value::Int(1), Value::Str("x".into())])
            .unwrap();
        // Second cell bad: first column must not grow.
        let err = df.push_row(vec![Value::Int(2), Value::Int(3)]).unwrap_err();
        assert!(matches!(err, FrameError::TypeMismatch { .. }));
        assert_eq!(df.n_rows(), 1);
        assert!(matches!(
            df.push_row(vec![Value::Int(1)]),
            Err(FrameError::RowArity {
                got: 1,
                expected: 2
            })
        ));
    }

    #[test]
    fn filter_select_head() {
        let df = sample();
        let served = df.filter(|r| r.bool("served") == Some(true));
        assert_eq!(served.n_rows(), 3);
        let just_isp = served.select(&["isp"]).unwrap();
        assert_eq!(just_isp.n_cols(), 1);
        assert_eq!(just_isp.head(2).n_rows(), 2);
        assert!(df.select(&["nope"]).is_err());
    }

    #[test]
    fn sort_is_stable_and_multi_key() {
        let df = sample();
        let sorted = df.sort_by(&[("isp", true), ("speed", false)]).unwrap();
        let isps: Vec<String> = sorted.rows().map(|r| r.str("isp").unwrap()).collect();
        assert_eq!(isps, vec!["att", "att", "frontier", "lumen"]);
        // Within "att", speed descending.
        assert_eq!(sorted.row(0).f64("speed"), Some(10.0));
        assert_eq!(sorted.row(1).f64("speed"), Some(0.768));
    }

    #[test]
    fn with_column_and_vstack() {
        let df = sample();
        let extra: Column = [1i64, 2, 3, 4].into_iter().collect();
        let wider = df.with_column("rank", extra).unwrap();
        assert_eq!(wider.n_cols(), 4);
        assert!(wider
            .with_column("rank", Column::empty(DataType::Int))
            .is_err());

        let stacked = df.vstack(&df).unwrap();
        assert_eq!(stacked.n_rows(), 8);
        assert!(df.vstack(&wider).is_err());
    }

    #[test]
    fn row_view_accessors() {
        let df = sample();
        let r = df.row(1);
        assert_eq!(r.str("isp").unwrap(), "frontier");
        assert_eq!(r.f64("speed"), Some(25.0));
        assert_eq!(r.bool("served"), Some(true));
        assert_eq!(r.i64("speed"), None); // float, not int
        assert_eq!(r.f64("missing"), None);
        assert_eq!(r.index(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_out_of_range_panics() {
        let _ = sample().row(99);
    }
}
