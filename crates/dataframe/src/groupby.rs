//! Hash group-by and aggregation.
//!
//! Every rate in the paper is a group-by: serviceability per CBG, per ISP,
//! per state, per (state, ISP) pair; average download speed per census
//! block and mode. Groups preserve first-appearance order so results are
//! deterministic run to run.

use crate::column::Column;
use crate::error::FrameError;
use crate::frame::DataFrame;
use crate::value::Value;
use std::collections::HashMap;

/// An aggregation over one group.
#[derive(Debug, Clone, PartialEq)]
pub enum Agg {
    /// Number of rows in the group.
    Count,
    /// Sum of a numeric column (nulls skipped).
    Sum(String),
    /// Mean of a numeric column (nulls skipped).
    Mean(String),
    /// Median of a numeric column (nulls skipped).
    Median(String),
    /// Interpolated `p`-quantile of a numeric column (nulls skipped).
    /// The level must lie in `[0, 1]`.
    Quantile {
        /// Column holding the values.
        column: String,
        /// Quantile level in `[0, 1]`.
        level: f64,
    },
    /// Minimum of a numeric column (nulls skipped).
    Min(String),
    /// Maximum of a numeric column (nulls skipped).
    Max(String),
    /// Weighted mean of `value` weighted by `weight` (rows with a null in
    /// either are skipped).
    WeightedMean {
        /// Column holding the values.
        value: String,
        /// Column holding the weights.
        weight: String,
    },
    /// Fraction of rows in the group where the boolean column is true
    /// (nulls count as false). The workhorse for serviceability rates.
    FractionTrue(String),
}

/// An aggregation and the name of its output column.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// What to compute.
    pub agg: Agg,
    /// The output column name.
    pub output: String,
}

impl AggSpec {
    /// Convenience constructor.
    pub fn new(agg: Agg, output: impl Into<String>) -> AggSpec {
        AggSpec {
            agg,
            output: output.into(),
        }
    }
}

/// A hashable encoding of a group key cell. Floats key by bit pattern
/// (all NaNs collapse to one group).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyAtom {
    Null,
    Int(i64),
    Float(u64),
    Str(String),
    Bool(bool),
}

impl KeyAtom {
    fn from_value(v: &Value) -> KeyAtom {
        match v {
            Value::Null => KeyAtom::Null,
            Value::Int(x) => KeyAtom::Int(*x),
            Value::Float(x) => {
                let canonical = if x.is_nan() { f64::NAN } else { *x };
                KeyAtom::Float(canonical.to_bits())
            }
            Value::Str(s) => KeyAtom::Str(s.clone()),
            Value::Bool(b) => KeyAtom::Bool(*b),
        }
    }
}

impl DataFrame {
    /// Groups rows by the key columns and computes `specs` per group.
    ///
    /// The output frame has one row per distinct key (in first-appearance
    /// order), the key columns first, then one column per spec.
    pub fn group_by(&self, keys: &[&str], specs: &[AggSpec]) -> Result<DataFrame, FrameError> {
        // Validate all referenced columns up front.
        for &k in keys {
            self.column(k)?;
        }
        for spec in specs {
            for col in spec.agg.input_columns() {
                let c = self.column(col)?;
                let needs_numeric = !matches!(spec.agg, Agg::FractionTrue(_));
                if needs_numeric && c.numeric_values().is_none() {
                    return Err(FrameError::NonNumericAggregate {
                        column: col.to_string(),
                        dtype: c.dtype(),
                    });
                }
            }
        }

        // Bucket row indices by key, preserving first-appearance order.
        let mut order: Vec<Vec<KeyAtom>> = Vec::new();
        let mut buckets: HashMap<Vec<KeyAtom>, Vec<usize>> = HashMap::new();
        for row in 0..self.n_rows() {
            let key: Vec<KeyAtom> = keys
                .iter()
                .map(|&k| KeyAtom::from_value(&self.column(k).expect("validated").get(row)))
                .collect();
            match buckets.get_mut(&key) {
                Some(rows) => rows.push(row),
                None => {
                    order.push(key.clone());
                    buckets.insert(key, vec![row]);
                }
            }
        }

        // Build the output: key columns then aggregate columns.
        let mut out_cols: Vec<(String, Column)> = Vec::new();
        for (ki, &key_name) in keys.iter().enumerate() {
            let src = self.column(key_name).expect("validated");
            let representative: Vec<usize> = order.iter().map(|key| buckets[key][0]).collect();
            let _ = ki;
            out_cols.push((key_name.to_string(), src.take(&representative)));
        }
        for spec in specs {
            let mut col = Column::empty(spec.agg.output_dtype());
            for key in &order {
                let rows = &buckets[key];
                let v = spec.agg.compute(self, rows)?;
                col.push(v, &spec.output)?;
            }
            out_cols.push((spec.output.clone(), col));
        }
        DataFrame::new(out_cols)
    }
}

/// Interpolated (type-7) quantile of a group's values, or null for an
/// empty group. Out-of-range levels clamp to [0, 1].
fn quantile_value(mut xs: Vec<f64>, level: f64) -> Value {
    if xs.is_empty() {
        return Value::Null;
    }
    let level = level.clamp(0.0, 1.0);
    xs.sort_by(|a, b| a.total_cmp(b));
    let h = level * (xs.len() as f64 - 1.0);
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let v = if lo == hi {
        xs[lo]
    } else {
        xs[lo] + (h - lo as f64) * (xs[hi] - xs[lo])
    };
    Value::Float(v)
}

impl Agg {
    fn input_columns(&self) -> Vec<&str> {
        match self {
            Agg::Count => vec![],
            Agg::Sum(c) | Agg::Mean(c) | Agg::Median(c) | Agg::Min(c) | Agg::Max(c) => vec![c],
            Agg::Quantile { column, .. } => vec![column],
            Agg::WeightedMean { value, weight } => vec![value, weight],
            Agg::FractionTrue(c) => vec![c],
        }
    }

    fn output_dtype(&self) -> crate::value::DataType {
        match self {
            Agg::Count => crate::value::DataType::Int,
            _ => crate::value::DataType::Float,
        }
    }

    fn compute(&self, frame: &DataFrame, rows: &[usize]) -> Result<Value, FrameError> {
        let numeric = |name: &str| -> Vec<f64> {
            let col = frame.column(name).expect("validated");
            rows.iter().filter_map(|&r| col.get(r).as_f64()).collect()
        };
        Ok(match self {
            Agg::Count => Value::Int(rows.len() as i64),
            Agg::Sum(c) => Value::Float(numeric(c).iter().sum()),
            Agg::Mean(c) => {
                let xs = numeric(c);
                if xs.is_empty() {
                    Value::Null
                } else {
                    Value::Float(xs.iter().sum::<f64>() / xs.len() as f64)
                }
            }
            Agg::Median(c) => quantile_value(numeric(c), 0.5),
            Agg::Quantile { column, level } => quantile_value(numeric(column), *level),
            Agg::Min(c) => numeric(c)
                .into_iter()
                .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.min(x))))
                .map(Value::Float)
                .unwrap_or(Value::Null),
            Agg::Max(c) => numeric(c)
                .into_iter()
                .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.max(x))))
                .map(Value::Float)
                .unwrap_or(Value::Null),
            Agg::WeightedMean { value, weight } => {
                let vcol = frame.column(value).expect("validated");
                let wcol = frame.column(weight).expect("validated");
                let mut num = 0.0;
                let mut den = 0.0;
                for &r in rows {
                    if let (Some(v), Some(w)) = (vcol.get(r).as_f64(), wcol.get(r).as_f64()) {
                        num += v * w;
                        den += w;
                    }
                }
                if den > 0.0 {
                    Value::Float(num / den)
                } else {
                    Value::Null
                }
            }
            Agg::FractionTrue(c) => {
                let col = frame.column(c).expect("validated");
                if rows.is_empty() {
                    Value::Null
                } else {
                    let t = rows
                        .iter()
                        .filter(|&&r| col.get(r).as_bool() == Some(true))
                        .count();
                    Value::Float(t as f64 / rows.len() as f64)
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::new(vec![
            (
                "isp",
                ["att", "att", "frontier", "att", "frontier"]
                    .into_iter()
                    .collect(),
            ),
            (
                "state",
                ["CA", "CA", "CA", "GA", "WI"].into_iter().collect(),
            ),
            (
                "speed",
                [10.0, 50.0, 25.0, 0.0, 100.0].into_iter().collect(),
            ),
            ("weight", [1.0, 3.0, 1.0, 2.0, 1.0].into_iter().collect()),
            (
                "served",
                [true, true, false, false, true].into_iter().collect(),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn count_and_mean_per_group() {
        let df = sample();
        let g = df
            .group_by(
                &["isp"],
                &[
                    AggSpec::new(Agg::Count, "n"),
                    AggSpec::new(Agg::Mean("speed".into()), "mean_speed"),
                ],
            )
            .unwrap();
        // First-appearance order: att, frontier.
        assert_eq!(g.n_rows(), 2);
        assert_eq!(g.row(0).str("isp").unwrap(), "att");
        assert_eq!(g.row(0).i64("n"), Some(3));
        assert_eq!(g.row(0).f64("mean_speed"), Some(20.0));
        assert_eq!(g.row(1).str("isp").unwrap(), "frontier");
        assert_eq!(g.row(1).f64("mean_speed"), Some(62.5));
    }

    #[test]
    fn multi_key_groups() {
        let df = sample();
        let g = df
            .group_by(&["isp", "state"], &[AggSpec::new(Agg::Count, "n")])
            .unwrap();
        assert_eq!(g.n_rows(), 4); // (att,CA), (frontier,CA), (att,GA), (frontier,WI)
    }

    #[test]
    fn weighted_mean_matches_hand_computation() {
        let df = sample();
        let g = df
            .group_by(
                &["isp"],
                &[AggSpec::new(
                    Agg::WeightedMean {
                        value: "speed".into(),
                        weight: "weight".into(),
                    },
                    "wmean",
                )],
            )
            .unwrap();
        // att: (10*1 + 50*3 + 0*2) / 6 = 160/6.
        let wmean = g.row(0).f64("wmean").unwrap();
        assert!((wmean - 160.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_true_is_the_serviceability_shape() {
        let df = sample();
        let g = df
            .group_by(
                &["isp"],
                &[AggSpec::new(Agg::FractionTrue("served".into()), "rate")],
            )
            .unwrap();
        assert!((g.row(0).f64("rate").unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((g.row(1).f64("rate").unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_aggregation() {
        let df = sample();
        let g = df
            .group_by(
                &["isp"],
                &[
                    AggSpec::new(
                        Agg::Quantile {
                            column: "speed".into(),
                            level: 0.5,
                        },
                        "p50",
                    ),
                    AggSpec::new(
                        Agg::Quantile {
                            column: "speed".into(),
                            level: 1.0,
                        },
                        "p100",
                    ),
                ],
            )
            .unwrap();
        // att speeds: [10, 50, 0] → p50 = 10, p100 = 50.
        assert_eq!(g.row(0).f64("p50"), Some(10.0));
        assert_eq!(g.row(0).f64("p100"), Some(50.0));
        // Quantile agrees with Median for the same groups.
        let m = df
            .group_by(&["isp"], &[AggSpec::new(Agg::Median("speed".into()), "m")])
            .unwrap();
        assert_eq!(g.row(0).f64("p50"), m.row(0).f64("m"));
    }

    #[test]
    fn median_min_max_sum() {
        let df = sample();
        let g = df
            .group_by(
                &["isp"],
                &[
                    AggSpec::new(Agg::Median("speed".into()), "p50"),
                    AggSpec::new(Agg::Min("speed".into()), "lo"),
                    AggSpec::new(Agg::Max("speed".into()), "hi"),
                    AggSpec::new(Agg::Sum("speed".into()), "sum"),
                ],
            )
            .unwrap();
        assert_eq!(g.row(0).f64("p50"), Some(10.0));
        assert_eq!(g.row(0).f64("lo"), Some(0.0));
        assert_eq!(g.row(0).f64("hi"), Some(50.0));
        assert_eq!(g.row(0).f64("sum"), Some(60.0));
    }

    #[test]
    fn validates_columns() {
        let df = sample();
        assert!(df.group_by(&["nope"], &[]).is_err());
        assert!(df
            .group_by(&["isp"], &[AggSpec::new(Agg::Mean("nope".into()), "x")])
            .is_err());
        assert!(matches!(
            df.group_by(&["isp"], &[AggSpec::new(Agg::Mean("state".into()), "x")]),
            Err(FrameError::NonNumericAggregate { .. })
        ));
    }

    #[test]
    fn empty_frame_groups_to_empty() {
        let df = DataFrame::new(vec![
            ("k", Column::empty(crate::value::DataType::Str)),
            ("v", Column::empty(crate::value::DataType::Float)),
        ])
        .unwrap();
        let g = df
            .group_by(&["k"], &[AggSpec::new(Agg::Count, "n")])
            .unwrap();
        assert_eq!(g.n_rows(), 0);
    }
}
