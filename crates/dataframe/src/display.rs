//! Aligned pretty-printing for the repro harness.

use crate::frame::DataFrame;
use std::fmt;

/// Maximum rows printed before eliding the middle.
const MAX_DISPLAY_ROWS: usize = 40;

impl fmt::Display for DataFrame {
    /// Renders the frame as an aligned text table, eliding the middle of
    /// frames longer than 40 rows, with a trailing row count. Floats are
    /// shown with up to four significant decimals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let render_cell = |name: &str, row: usize| -> String {
            match self.column(name).expect("own column").get(row) {
                crate::value::Value::Float(v) => {
                    if v == v.trunc() && v.abs() < 1e12 {
                        format!("{v:.1}")
                    } else {
                        format!("{v:.4}")
                    }
                }
                other => other.to_string(),
            }
        };

        let n = self.n_rows();
        let (head, tail) = if n > MAX_DISPLAY_ROWS {
            (MAX_DISPLAY_ROWS / 2, MAX_DISPLAY_ROWS / 2)
        } else {
            (n, 0)
        };
        let shown: Vec<usize> = (0..head).chain(n.saturating_sub(tail)..n).collect();

        // Compute column widths over header + shown cells.
        let mut widths: Vec<usize> = self.names().iter().map(|n| n.len()).collect();
        for &row in &shown {
            for (ci, name) in self.names().iter().enumerate() {
                widths[ci] = widths[ci].max(render_cell(name, row).len());
            }
        }

        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, &w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "| {} |", parts.join(" | "))
        };

        let header: Vec<String> = self.names().to_vec();
        write_row(f, &header)?;
        let rule: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        write_row(f, &rule)?;
        for (i, &row) in shown.iter().enumerate() {
            if i == head && tail > 0 {
                let dots: Vec<String> = widths.iter().map(|_| "…".to_string()).collect();
                write_row(f, &dots)?;
            }
            let cells: Vec<String> = self
                .names()
                .iter()
                .map(|name| render_cell(name, row))
                .collect();
            write_row(f, &cells)?;
        }
        write!(f, "({n} rows)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn small_frame_renders_fully() {
        let df = DataFrame::new(vec![
            ("isp", ["att", "frontier"].into_iter().collect::<Column>()),
            ("rate", [0.3153, 0.7171].into_iter().collect::<Column>()),
        ])
        .unwrap();
        let s = df.to_string();
        assert!(s.contains("isp |"), "{s}");
        assert!(s.contains("0.3153"));
        assert!(s.contains("0.7171"));
        assert!(s.contains("(2 rows)"));
        // Aligned: every line has the same length up to the final count.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn long_frame_is_elided() {
        let col: Column = (0..100i64).collect();
        let df = DataFrame::new(vec![("n", col)]).unwrap();
        let s = df.to_string();
        assert!(s.contains('…'));
        assert!(s.contains("(100 rows)"));
        assert!(s.contains("| 99 |"));
        assert!(s.lines().count() < 50);
    }

    #[test]
    fn whole_floats_render_with_one_decimal() {
        let df = DataFrame::new(vec![(
            "speed",
            [100.0f64, 0.768].into_iter().collect::<Column>(),
        )])
        .unwrap();
        let s = df.to_string();
        assert!(s.contains("100.0"));
        assert!(s.contains("0.7680"));
    }
}
