//! Cell values and column types.

use std::cmp::Ordering;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings.
    Str,
    /// Booleans.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A single cell value, possibly null.
///
/// `Value` is the dynamic interchange type used at the API boundary
/// (building rows, reading cells); storage inside a frame stays typed.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A missing value.
    Null,
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The value's type, or `None` for null.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Whether the value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as an `f64` if it is numeric (`Int` widens losslessly for
    /// magnitudes below 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `bool` if it is boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A total order over values for sorting: nulls first, then by type
    /// (int/float compared numerically together), strings lexicographic,
    /// bools false < true. NaN sorts after all other floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Int(_) | Float(_) => 1,
                Str(_) => 2,
                Bool(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(i64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert_eq!(Value::from(Some(1i64)), Value::Int(1));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(1.5).as_f64(), Some(1.5));
        assert_eq!(Value::Str("a".into()).as_f64(), None);
        assert_eq!(Value::Str("a".into()).as_str(), Some("a"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.dtype(), None);
        assert_eq!(Value::Int(0).dtype(), Some(DataType::Int));
    }

    #[test]
    fn total_order() {
        let mut vals = vec![
            Value::Str("b".into()),
            Value::Int(2),
            Value::Null,
            Value::Float(1.5),
            Value::Str("a".into()),
            Value::Int(1),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Int(1),
                Value::Float(1.5),
                Value::Int(2),
                Value::Str("a".into()),
                Value::Str("b".into()),
            ]
        );
    }

    #[test]
    fn nan_sorts_last_among_floats() {
        let mut vals = [Value::Float(f64::NAN), Value::Float(1.0)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Float(1.0));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }
}
