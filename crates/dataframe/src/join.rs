//! Hash joins.
//!
//! The pipeline joins BQT query outcomes back onto the USAC address table
//! (inner join on address id) and attaches Form-477 competition modes to
//! census blocks (left join on block GEOID).

use crate::column::Column;
use crate::error::FrameError;
use crate::frame::DataFrame;
use crate::value::Value;
use std::collections::HashMap;

/// The kind of join to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only rows with a match on both sides.
    Inner,
    /// Keep all left rows; unmatched right columns become null.
    Left,
}

/// A hashable join key; floats are intentionally excluded — joining on
/// floats is a correctness hazard, and every key in the workspace is an
/// id, GEOID, or name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    Null,
    Int(i64),
    Str(String),
    Bool(bool),
}

impl JoinKey {
    fn from_value(v: &Value) -> Result<JoinKey, FrameError> {
        match v {
            Value::Null => Ok(JoinKey::Null),
            Value::Int(x) => Ok(JoinKey::Int(*x)),
            Value::Str(s) => Ok(JoinKey::Str(s.clone())),
            Value::Bool(b) => Ok(JoinKey::Bool(*b)),
            Value::Float(_) => Err(FrameError::KeyTypeMismatch {
                left: crate::value::DataType::Float,
                right: crate::value::DataType::Float,
            }),
        }
    }
}

impl DataFrame {
    /// Joins `self` (left) with `right` on equality of the key columns.
    ///
    /// Output columns are the left columns followed by the right columns
    /// except the right key columns; a right column whose name collides
    /// with a left column is suffixed `_right`. Null keys never match
    /// (SQL semantics). Right-side matches preserve row order; a left row
    /// with multiple matches expands to multiple output rows.
    pub fn join(
        &self,
        right: &DataFrame,
        left_keys: &[&str],
        right_keys: &[&str],
        kind: JoinKind,
    ) -> Result<DataFrame, FrameError> {
        assert_eq!(
            left_keys.len(),
            right_keys.len(),
            "join requires one right key per left key"
        );
        // Validate key columns and types.
        for (&lk, &rk) in left_keys.iter().zip(right_keys) {
            let lc = self.column(lk)?;
            let rc = right.column(rk)?;
            if lc.dtype() != rc.dtype() {
                return Err(FrameError::KeyTypeMismatch {
                    left: lc.dtype(),
                    right: rc.dtype(),
                });
            }
        }

        // Build the hash table over the right side.
        let mut table: HashMap<Vec<JoinKey>, Vec<usize>> = HashMap::new();
        for row in 0..right.n_rows() {
            let key = right_keys
                .iter()
                .map(|&k| JoinKey::from_value(&right.column(k).expect("validated").get(row)))
                .collect::<Result<Vec<_>, _>>()?;
            if key.contains(&JoinKey::Null) {
                continue; // null keys never match
            }
            table.entry(key).or_default().push(row);
        }

        // Probe with the left side.
        let mut left_rows: Vec<usize> = Vec::new();
        let mut right_rows: Vec<Option<usize>> = Vec::new();
        for row in 0..self.n_rows() {
            let key = left_keys
                .iter()
                .map(|&k| JoinKey::from_value(&self.column(k).expect("validated").get(row)))
                .collect::<Result<Vec<_>, _>>()?;
            let matches = if key.contains(&JoinKey::Null) {
                None
            } else {
                table.get(&key)
            };
            match matches {
                Some(rows) => {
                    for &r in rows {
                        left_rows.push(row);
                        right_rows.push(Some(r));
                    }
                }
                None => {
                    if kind == JoinKind::Left {
                        left_rows.push(row);
                        right_rows.push(None);
                    }
                }
            }
        }

        // Materialize output columns.
        let mut out: Vec<(String, Column)> = Vec::new();
        for (name, col) in self.names().iter().zip(self.columns_iter()) {
            out.push((name.clone(), col.take(&left_rows)));
        }
        let right_key_set: Vec<&str> = right_keys.to_vec();
        for (name, col) in right.names().iter().zip(right.columns_iter()) {
            if right_key_set.contains(&name.as_str()) {
                continue;
            }
            let out_name = if self.has_column(name) {
                format!("{name}_right")
            } else {
                name.clone()
            };
            let mut new_col = Column::empty(col.dtype());
            for r in &right_rows {
                let v = match r {
                    Some(r) => col.get(*r),
                    None => Value::Null,
                };
                new_col.push(v, &out_name)?;
            }
            out.push((out_name, new_col));
        }
        DataFrame::new(out)
    }

    /// Internal iterator over columns in order (used by join).
    pub(crate) fn columns_iter(&self) -> impl Iterator<Item = &Column> {
        self.names()
            .iter()
            .map(move |n| self.column(n).expect("own name"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addresses() -> DataFrame {
        DataFrame::new(vec![
            ("addr", [1i64, 2, 3, 4].into_iter().collect()),
            (
                "isp",
                ["att", "att", "frontier", "lumen"].into_iter().collect(),
            ),
        ])
        .unwrap()
    }

    fn outcomes() -> DataFrame {
        DataFrame::new(vec![
            ("addr", [1i64, 3, 3, 9].into_iter().collect()),
            ("served", [true, false, true, true].into_iter().collect()),
        ])
        .unwrap()
    }

    #[test]
    fn inner_join_keeps_matches_only() {
        let j = addresses()
            .join(&outcomes(), &["addr"], &["addr"], JoinKind::Inner)
            .unwrap();
        // addr 1 matches once, addr 3 matches twice, addr 2 and 4 drop.
        assert_eq!(j.n_rows(), 3);
        let addrs: Vec<i64> = j.rows().map(|r| r.i64("addr").unwrap()).collect();
        assert_eq!(addrs, vec![1, 3, 3]);
        assert_eq!(j.names(), &["addr", "isp", "served"]);
    }

    #[test]
    fn left_join_nulls_unmatched() {
        let j = addresses()
            .join(&outcomes(), &["addr"], &["addr"], JoinKind::Left)
            .unwrap();
        assert_eq!(j.n_rows(), 5); // 1, 2(null), 3, 3, 4(null)
        let row2 = j.rows().find(|r| r.i64("addr") == Some(2)).unwrap();
        assert_eq!(row2.get("served").unwrap(), Value::Null);
    }

    #[test]
    fn name_collision_gets_suffixed() {
        let left = DataFrame::new(vec![
            ("k", [1i64, 2].into_iter().collect()),
            ("v", [10.0, 20.0].into_iter().collect()),
        ])
        .unwrap();
        let right = DataFrame::new(vec![
            ("k", [1i64, 2].into_iter().collect()),
            ("v", [99.0, 98.0].into_iter().collect()),
        ])
        .unwrap();
        let j = left.join(&right, &["k"], &["k"], JoinKind::Inner).unwrap();
        assert_eq!(j.names(), &["k", "v", "v_right"]);
        assert_eq!(j.row(0).f64("v"), Some(10.0));
        assert_eq!(j.row(0).f64("v_right"), Some(99.0));
    }

    #[test]
    fn null_keys_never_match() {
        let left = DataFrame::new(vec![("k", Column::Int(vec![Some(1), None]))]).unwrap();
        let right = DataFrame::new(vec![
            ("k", Column::Int(vec![Some(1), None])),
            ("x", [true, false].into_iter().collect()),
        ])
        .unwrap();
        let inner = left.join(&right, &["k"], &["k"], JoinKind::Inner).unwrap();
        assert_eq!(inner.n_rows(), 1);
        let lj = left.join(&right, &["k"], &["k"], JoinKind::Left).unwrap();
        assert_eq!(lj.n_rows(), 2);
        assert_eq!(lj.row(1).get("x").unwrap(), Value::Null);
    }

    #[test]
    fn type_mismatch_and_float_keys_rejected() {
        let ints = DataFrame::new(vec![("k", [1i64].into_iter().collect())]).unwrap();
        let strs = DataFrame::new(vec![("k", ["a"].into_iter().collect())]).unwrap();
        assert!(matches!(
            ints.join(&strs, &["k"], &["k"], JoinKind::Inner),
            Err(FrameError::KeyTypeMismatch { .. })
        ));
        let floats = DataFrame::new(vec![("k", [1.0].into_iter().collect())]).unwrap();
        assert!(floats
            .join(&floats, &["k"], &["k"], JoinKind::Inner)
            .is_err());
    }

    #[test]
    fn missing_key_column_rejected() {
        assert!(addresses()
            .join(&outcomes(), &["nope"], &["addr"], JoinKind::Inner)
            .is_err());
    }
}
