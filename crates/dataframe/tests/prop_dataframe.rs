//! Property-based tests for the dataframe engine.

use caf_dataframe::{Agg, AggSpec, Column, DataFrame, JoinKind, Value};
use proptest::prelude::*;

/// Strategy: a frame with a small string key column and a float value
/// column, 0–60 rows.
fn keyed_frame() -> impl Strategy<Value = DataFrame> {
    prop::collection::vec(("[a-d]", -1.0e3f64..1.0e3), 0..60).prop_map(|rows| {
        let keys: Column = rows.iter().map(|(k, _)| k.as_str()).collect();
        let vals: Column = rows.iter().map(|(_, v)| *v).collect();
        DataFrame::new(vec![("k", keys), ("v", vals)]).unwrap()
    })
}

proptest! {
    /// Group sizes sum to the frame's row count; group count ≤ distinct keys.
    #[test]
    fn group_sizes_partition_the_frame(df in keyed_frame()) {
        let g = df
            .group_by(&["k"], &[AggSpec::new(Agg::Count, "n")])
            .unwrap();
        let total: i64 = g.rows().map(|r| r.i64("n").unwrap()).sum();
        prop_assert_eq!(total as usize, df.n_rows());
        prop_assert!(g.n_rows() <= 4);
    }

    /// The grand mean equals the count-weighted mean of group means.
    #[test]
    fn group_means_recombine_to_grand_mean(df in keyed_frame()) {
        prop_assume!(df.n_rows() > 0);
        let g = df
            .group_by(
                &["k"],
                &[
                    AggSpec::new(Agg::Count, "n"),
                    AggSpec::new(Agg::Mean("v".into()), "mean"),
                ],
            )
            .unwrap();
        let mut weighted = 0.0;
        let mut total = 0.0;
        for r in g.rows() {
            let n = r.i64("n").unwrap() as f64;
            weighted += n * r.f64("mean").unwrap();
            total += n;
        }
        let grand: f64 = df.rows().map(|r| r.f64("v").unwrap()).sum::<f64>() / total;
        prop_assert!((weighted / total - grand).abs() < 1e-6);
    }

    /// Filtering then counting equals counting matching rows directly.
    #[test]
    fn filter_is_consistent_with_row_scan(df in keyed_frame(), cutoff in -1.0e3f64..1.0e3) {
        let filtered = df.filter(|r| r.f64("v").unwrap() > cutoff);
        let direct = df.rows().filter(|r| r.f64("v").unwrap() > cutoff).count();
        prop_assert_eq!(filtered.n_rows(), direct);
    }

    /// Sorting preserves the multiset of rows and orders the key column.
    #[test]
    fn sort_permutes_and_orders(df in keyed_frame()) {
        let sorted = df.sort_by(&[("v", true)]).unwrap();
        prop_assert_eq!(sorted.n_rows(), df.n_rows());
        let vals: Vec<f64> = sorted.rows().map(|r| r.f64("v").unwrap()).collect();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut orig: Vec<f64> = df.rows().map(|r| r.f64("v").unwrap()).collect();
        let mut after = vals;
        orig.sort_by(|a, b| a.total_cmp(b));
        after.sort_by(|a, b| a.total_cmp(b));
        prop_assert_eq!(orig, after);
    }

    /// CSV round-trip preserves every cell (strings restricted to avoid
    /// ambiguity with inferred numerics).
    #[test]
    fn csv_roundtrip(df in keyed_frame()) {
        let back = DataFrame::from_csv(&df.to_csv());
        prop_assume!(df.n_rows() > 0);
        let back = back.unwrap();
        prop_assert_eq!(back.n_rows(), df.n_rows());
        for (a, b) in df.rows().zip(back.rows()) {
            prop_assert_eq!(a.str("k"), b.str("k"));
            let (x, y) = (a.f64("v").unwrap(), b.f64("v").unwrap());
            prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()));
        }
    }

    /// Inner join row count equals the sum over left rows of match counts;
    /// a self-join on a unique key is the identity on row count.
    #[test]
    fn join_row_counts(df in keyed_frame()) {
        // Build a unique-key right side: one row per distinct key.
        let g = df
            .group_by(&["k"], &[AggSpec::new(Agg::Count, "n")])
            .unwrap();
        let j = df.join(&g, &["k"], &["k"], JoinKind::Inner).unwrap();
        prop_assert_eq!(j.n_rows(), df.n_rows());
        let lj = df.join(&g, &["k"], &["k"], JoinKind::Left).unwrap();
        prop_assert_eq!(lj.n_rows(), df.n_rows());
        // Every joined row's n matches its group size.
        for r in j.rows() {
            let k = r.str("k").unwrap();
            let expected = df.rows().filter(|x| x.str("k").unwrap() == k).count() as i64;
            prop_assert_eq!(r.i64("n").unwrap(), expected);
        }
    }

    /// vstack concatenates: lengths add and cells line up.
    #[test]
    fn vstack_concatenates(df in keyed_frame()) {
        let stacked = df.vstack(&df).unwrap();
        prop_assert_eq!(stacked.n_rows(), 2 * df.n_rows());
        for i in 0..df.n_rows() {
            prop_assert_eq!(
                stacked.row(i + df.n_rows()).get("v").unwrap(),
                df.row(i).get("v").unwrap()
            );
        }
    }
}

#[test]
fn take_out_of_range_panics() {
    let df = DataFrame::new(vec![("x", [1i64].into_iter().collect::<Column>())]).unwrap();
    let result = std::panic::catch_unwind(|| df.take(&[5]));
    assert!(result.is_err());
}

#[test]
fn value_null_propagates_through_groupby() {
    let df = DataFrame::new(vec![
        ("k", ["a", "a", "b"].into_iter().collect::<Column>()),
        ("v", Column::Float(vec![Some(1.0), None, None])),
    ])
    .unwrap();
    let g = df
        .group_by(&["k"], &[AggSpec::new(Agg::Mean("v".into()), "m")])
        .unwrap();
    assert_eq!(g.row(0).f64("m"), Some(1.0)); // null skipped
    assert_eq!(g.row(1).get("m").unwrap(), Value::Null); // all null
}
