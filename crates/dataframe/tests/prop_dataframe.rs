//! Property-based tests for the dataframe engine.
//!
//! Each invariant lives in a plain helper function so it has exactly one
//! definition with two drivers: the `proptest!` properties explore the
//! parameter space under the real proptest crate, and the `smoke_*`
//! tests pin a handful of fixed frames that always run — including under
//! the offline proptest stub, whose `proptest!` macro discards property
//! bodies entirely.

use caf_dataframe::{Agg, AggSpec, Column, DataFrame, JoinKind, Value};
use proptest::prelude::*;

/// A frame with a small string key column and a float value column.
fn frame_from(rows: &[(String, f64)]) -> DataFrame {
    let keys: Column = rows.iter().map(|(k, _)| k.as_str()).collect();
    let vals: Column = rows.iter().map(|(_, v)| *v).collect();
    DataFrame::new(vec![("k", keys), ("v", vals)]).unwrap()
}

/// Group sizes sum to the frame's row count; group count ≤ distinct keys.
fn check_group_sizes_partition_the_frame(df: &DataFrame) {
    let g = df
        .group_by(&["k"], &[AggSpec::new(Agg::Count, "n")])
        .unwrap();
    let total: i64 = g.rows().map(|r| r.i64("n").unwrap()).sum();
    assert_eq!(total as usize, df.n_rows());
    assert!(g.n_rows() <= 4);
}

/// The grand mean equals the count-weighted mean of group means.
fn check_group_means_recombine_to_grand_mean(df: &DataFrame) {
    if df.n_rows() == 0 {
        return;
    }
    let g = df
        .group_by(
            &["k"],
            &[
                AggSpec::new(Agg::Count, "n"),
                AggSpec::new(Agg::Mean("v".into()), "mean"),
            ],
        )
        .unwrap();
    let mut weighted = 0.0;
    let mut total = 0.0;
    for r in g.rows() {
        let n = r.i64("n").unwrap() as f64;
        weighted += n * r.f64("mean").unwrap();
        total += n;
    }
    let grand: f64 = df.rows().map(|r| r.f64("v").unwrap()).sum::<f64>() / total;
    assert!((weighted / total - grand).abs() < 1e-6);
}

/// Filtering then counting equals counting matching rows directly.
fn check_filter_is_consistent_with_row_scan(df: &DataFrame, cutoff: f64) {
    let filtered = df.filter(|r| r.f64("v").unwrap() > cutoff);
    let direct = df.rows().filter(|r| r.f64("v").unwrap() > cutoff).count();
    assert_eq!(filtered.n_rows(), direct);
}

/// Sorting preserves the multiset of rows and orders the key column.
fn check_sort_permutes_and_orders(df: &DataFrame) {
    let sorted = df.sort_by(&[("v", true)]).unwrap();
    assert_eq!(sorted.n_rows(), df.n_rows());
    let vals: Vec<f64> = sorted.rows().map(|r| r.f64("v").unwrap()).collect();
    for w in vals.windows(2) {
        assert!(w[0] <= w[1]);
    }
    let mut orig: Vec<f64> = df.rows().map(|r| r.f64("v").unwrap()).collect();
    let mut after = vals;
    orig.sort_by(|a, b| a.total_cmp(b));
    after.sort_by(|a, b| a.total_cmp(b));
    assert_eq!(orig, after);
}

/// CSV round-trip preserves every cell (strings restricted to avoid
/// ambiguity with inferred numerics).
fn check_csv_roundtrip(df: &DataFrame) {
    let back = DataFrame::from_csv(&df.to_csv());
    if df.n_rows() == 0 {
        return;
    }
    let back = back.unwrap();
    assert_eq!(back.n_rows(), df.n_rows());
    for (a, b) in df.rows().zip(back.rows()) {
        assert_eq!(a.str("k"), b.str("k"));
        let (x, y) = (a.f64("v").unwrap(), b.f64("v").unwrap());
        assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()));
    }
}

/// Inner join row count equals the sum over left rows of match counts;
/// a self-join on a unique key is the identity on row count.
fn check_join_row_counts(df: &DataFrame) {
    // Build a unique-key right side: one row per distinct key.
    let g = df
        .group_by(&["k"], &[AggSpec::new(Agg::Count, "n")])
        .unwrap();
    let j = df.join(&g, &["k"], &["k"], JoinKind::Inner).unwrap();
    assert_eq!(j.n_rows(), df.n_rows());
    let lj = df.join(&g, &["k"], &["k"], JoinKind::Left).unwrap();
    assert_eq!(lj.n_rows(), df.n_rows());
    // Every joined row's n matches its group size.
    for r in j.rows() {
        let k = r.str("k").unwrap();
        let expected = df.rows().filter(|x| x.str("k").unwrap() == k).count() as i64;
        assert_eq!(r.i64("n").unwrap(), expected);
    }
}

/// vstack concatenates: lengths add and cells line up.
fn check_vstack_concatenates(df: &DataFrame) {
    let stacked = df.vstack(df).unwrap();
    assert_eq!(stacked.n_rows(), 2 * df.n_rows());
    for i in 0..df.n_rows() {
        assert_eq!(
            stacked.row(i + df.n_rows()).get("v").unwrap(),
            df.row(i).get("v").unwrap()
        );
    }
}

proptest! {
    #[test]
    fn group_sizes_partition_the_frame(
        rows in prop::collection::vec(("[a-d]", -1.0e3f64..1.0e3), 0..60),
    ) {
        check_group_sizes_partition_the_frame(&frame_from(&rows));
    }

    #[test]
    fn group_means_recombine_to_grand_mean(
        rows in prop::collection::vec(("[a-d]", -1.0e3f64..1.0e3), 0..60),
    ) {
        check_group_means_recombine_to_grand_mean(&frame_from(&rows));
    }

    #[test]
    fn filter_is_consistent_with_row_scan(
        rows in prop::collection::vec(("[a-d]", -1.0e3f64..1.0e3), 0..60),
        cutoff in -1.0e3f64..1.0e3,
    ) {
        check_filter_is_consistent_with_row_scan(&frame_from(&rows), cutoff);
    }

    #[test]
    fn sort_permutes_and_orders(
        rows in prop::collection::vec(("[a-d]", -1.0e3f64..1.0e3), 0..60),
    ) {
        check_sort_permutes_and_orders(&frame_from(&rows));
    }

    #[test]
    fn csv_roundtrip(
        rows in prop::collection::vec(("[a-d]", -1.0e3f64..1.0e3), 0..60),
    ) {
        check_csv_roundtrip(&frame_from(&rows));
    }

    #[test]
    fn join_row_counts(
        rows in prop::collection::vec(("[a-d]", -1.0e3f64..1.0e3), 0..60),
    ) {
        check_join_row_counts(&frame_from(&rows));
    }

    #[test]
    fn vstack_concatenates(
        rows in prop::collection::vec(("[a-d]", -1.0e3f64..1.0e3), 0..60),
    ) {
        check_vstack_concatenates(&frame_from(&rows));
    }
}

/// Deterministic fixed frames: empty, single row, duplicate keys, and a
/// larger mixed frame covering all four key values.
fn smoke_frames() -> Vec<DataFrame> {
    let mixed: Vec<(String, f64)> = (0..40)
        .map(|i| {
            let k = ["a", "b", "c", "d"][i % 4].to_string();
            (k, ((i * 31) % 97) as f64 - 48.0)
        })
        .collect();
    vec![
        frame_from(&[]),
        frame_from(&[("a".to_string(), 1.5)]),
        frame_from(&[
            ("b".to_string(), -2.0),
            ("b".to_string(), 7.25),
            ("a".to_string(), 0.0),
        ]),
        frame_from(&mixed),
    ]
}

#[test]
fn smoke_frame_invariants_hold_on_fixed_frames() {
    for df in smoke_frames() {
        check_group_sizes_partition_the_frame(&df);
        check_group_means_recombine_to_grand_mean(&df);
        check_filter_is_consistent_with_row_scan(&df, 0.0);
        check_sort_permutes_and_orders(&df);
        check_csv_roundtrip(&df);
        check_join_row_counts(&df);
        check_vstack_concatenates(&df);
    }
}

#[test]
fn take_out_of_range_panics() {
    let df = DataFrame::new(vec![("x", [1i64].into_iter().collect::<Column>())]).unwrap();
    let result = std::panic::catch_unwind(|| df.take(&[5]));
    assert!(result.is_err());
}

#[test]
fn value_null_propagates_through_groupby() {
    let df = DataFrame::new(vec![
        ("k", ["a", "a", "b"].into_iter().collect::<Column>()),
        ("v", Column::Float(vec![Some(1.0), None, None])),
    ])
    .unwrap();
    let g = df
        .group_by(&["k"], &[AggSpec::new(Agg::Mean("v".into()), "m")])
        .unwrap();
    assert_eq!(g.row(0).f64("m"), Some(1.0)); // null skipped
    assert_eq!(g.row(1).get("m").unwrap(), Value::Null); // all null
}
