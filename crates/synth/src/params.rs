//! Calibration parameters: the paper's published marginals, encoded.
//!
//! Everything the synthetic world needs to look like the paper's data is
//! concentrated here: the Table-3 presence matrix (which ISP was queried
//! in which state, and how many addresses), per-(ISP, state) serviceability
//! bases tuned so the weighted aggregates land on the paper's §4.1 rates,
//! the Table-1 advertised-tier distributions, the Table-2 error mixes, the
//! Figure-11 query-time parameters, and the §4.3 census-block outcome
//! splits. Calibration tests in `caf-core` assert the pipeline recovers
//! these targets.

use crate::isp::Isp;
use caf_geo::UsState;

/// Global configuration of the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Master seed; every stochastic decision derives from it.
    pub seed: u64,
    /// Scale denominator: paper-scale counts are divided by this. `1`
    /// reproduces the paper's 537 k-address campaign; the default of `10`
    /// (≈54 k addresses) keeps the full pipeline under a minute.
    pub scale: u32,
}

impl SynthConfig {
    /// A config with the given seed at the default 1:10 scale.
    pub fn with_seed(seed: u64) -> SynthConfig {
        SynthConfig { seed, scale: 10 }
    }

    /// Scales a paper-scale count down, keeping at least 1 for non-zero
    /// inputs so small state-ISP cells never vanish.
    pub fn scaled(&self, paper_count: u64) -> u64 {
        if paper_count == 0 {
            0
        } else {
            (paper_count / u64::from(self.scale)).max(1)
        }
    }
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            seed: 0xCAF_2024,
            scale: 10,
        }
    }
}

/// One cell of the Table-3 presence matrix: how many CAF street addresses,
/// census blocks, and census block groups the paper queried for an
/// (ISP, state) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresenceTarget {
    /// CAF street addresses queried (paper scale).
    pub addresses: u64,
    /// Census blocks those addresses span.
    pub blocks: u64,
    /// Census block groups those addresses span.
    pub cbgs: u64,
}

/// One cell of the Table-4 matrix: CAF and non-CAF addresses queried for
/// the Q3 analysis per (ISP, state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Q3Target {
    /// CAF addresses queried (paper scale).
    pub caf: u64,
    /// Non-CAF addresses queried (paper scale).
    pub non_caf: u64,
}

/// A named traceback error category (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCategory {
    /// "Select Drop-down Address" — the address never appeared in the
    /// site's dropdown resolver.
    SelectDropdown,
    /// "Analyzing Result" — the result page could not be classified.
    AnalyzingResult,
    /// "Empty traceback" — the query died without diagnostics.
    EmptyTraceback,
    /// "Clicking Button" — a page element could not be driven.
    ClickingButton,
    /// Anything else.
    Other,
}

impl ErrorCategory {
    /// All categories, in Table 2's column order.
    pub fn all() -> [ErrorCategory; 5] {
        [
            ErrorCategory::SelectDropdown,
            ErrorCategory::AnalyzingResult,
            ErrorCategory::EmptyTraceback,
            ErrorCategory::ClickingButton,
            ErrorCategory::Other,
        ]
    }

    /// The paper's column header.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCategory::SelectDropdown => "Select Drop-down Address",
            ErrorCategory::AnalyzingResult => "Analyzing Result",
            ErrorCategory::EmptyTraceback => "Empty traceback",
            ErrorCategory::ClickingButton => "Clicking Button",
            ErrorCategory::Other => "Other Error",
        }
    }
}

/// Static access to every calibration constant.
pub struct CalibrationParams;

impl CalibrationParams {
    /// The Table-3 presence matrix at paper scale. `None` means the ISP was
    /// not queried in that state.
    pub fn presence(state: UsState, isp: Isp) -> Option<PresenceTarget> {
        use Isp::*;
        use UsState::*;
        let t = |addresses: u64, blocks: u64, cbgs: u64| {
            Some(PresenceTarget {
                addresses,
                blocks,
                cbgs,
            })
        };
        match (state, isp) {
            (California, Att) => t(69_711, 10_707, 1_759),
            (California, Frontier) => t(48_447, 8_786, 664),
            (Georgia, Att) => t(37_772, 6_344, 753),
            (Georgia, CenturyLink) => t(464, 74, 19),
            (Georgia, Frontier) => t(850, 82, 14),
            (Illinois, Att) => t(8_745, 2_124, 303),
            (Illinois, CenturyLink) => t(1_461, 478, 66),
            (Illinois, Consolidated) => t(1_332, 480, 39),
            (Illinois, Frontier) => t(33_260, 8_394, 681),
            (NewHampshire, Consolidated) => t(7_229, 1_154, 175),
            (NorthCarolina, Att) => t(12_525, 1_153, 215),
            (NorthCarolina, CenturyLink) => t(28_411, 3_623, 812),
            (NorthCarolina, Frontier) => t(7_834, 591, 106),
            (Ohio, Att) => t(22_185, 3_711, 542),
            (Ohio, CenturyLink) => t(25_780, 5_083, 639),
            (Ohio, Frontier) => t(49_631, 6_665, 558),
            (Utah, CenturyLink) => t(1_749, 498, 178),
            (Utah, Frontier) => t(2_332, 531, 28),
            (Alabama, Att) => t(23_862, 4_869, 669),
            (Alabama, CenturyLink) => t(10_083, 3_211, 427),
            (Alabama, Consolidated) => t(295, 57, 5),
            (Alabama, Frontier) => t(4_401, 670, 56),
            (Florida, Att) => t(11_029, 1_829, 344),
            (Florida, CenturyLink) => t(10_104, 2_845, 625),
            (Florida, Consolidated) => t(4_010, 535, 49),
            (Florida, Frontier) => t(578, 136, 5),
            (Iowa, CenturyLink) => t(9_757, 3_700, 624),
            (Iowa, Frontier) => t(4_092, 1_720, 89),
            (Mississippi, Att) => t(38_069, 9_208, 950),
            (Mississippi, CenturyLink) => t(2, 1, 1),
            (Mississippi, Frontier) => t(1_237, 197, 20),
            (Nebraska, CenturyLink) => t(3_986, 1_666, 261),
            (Nebraska, Frontier) => t(2_648, 1_208, 63),
            (NewJersey, CenturyLink) => t(980, 269, 88),
            (Vermont, Consolidated) => t(9_940, 1_502, 201),
            (Wisconsin, Att) => t(9_349, 2_287, 303),
            (Wisconsin, CenturyLink) => t(19_064, 7_850, 686),
            (Wisconsin, Frontier) => t(14_456, 2_621, 224),
            _ => None,
        }
    }

    /// The states an ISP serves in the study (derived from the presence
    /// matrix), in study-state order.
    pub fn states_for(isp: Isp) -> Vec<UsState> {
        UsState::study_states()
            .into_iter()
            .filter(|&s| Self::presence(s, isp).is_some())
            .collect()
    }

    /// Latent base serviceability for an (ISP, state): the probability
    /// that a certified address is genuinely served, before CBG-level
    /// variation. Tuned so the address-weighted per-ISP aggregates land on
    /// §4.1's 31.53 / 90.42 / 70.71 / 83.95 %, with the outlier pairs the
    /// paper calls out (CenturyLink–New Jersey, Frontier–Florida).
    pub fn serviceability_base(isp: Isp, state: UsState) -> f64 {
        use UsState::*;
        match isp {
            Isp::Att => match state {
                California => 0.30,
                Georgia => 0.26,
                Mississippi => 0.38,
                Alabama => 0.40,
                Ohio => 0.33,
                NorthCarolina => 0.18,
                Florida => 0.42,
                Wisconsin => 0.30,
                Illinois => 0.30,
                _ => 0.30,
            },
            Isp::CenturyLink => match state {
                NewJersey => 0.40,
                _ => 0.91,
            },
            Isp::Frontier => match state {
                Florida => 0.25,
                _ => 0.71,
            },
            Isp::Consolidated => 0.84,
            // Not audited; plausible defaults for completeness.
            Isp::Windstream => 0.75,
            Isp::Xfinity | Isp::Spectrum => 0.97,
        }
    }

    /// CBG-level spread of serviceability around the base rate: the
    /// concentration (kappa) of the Beta distribution. Lower kappa gives
    /// the wide inter-quartile ranges visible in Figure 2.
    pub fn serviceability_concentration(isp: Isp) -> f64 {
        match isp {
            Isp::Att => 8.0,
            Isp::Frontier => 4.0,
            Isp::CenturyLink => 8.0,
            Isp::Consolidated => 7.0,
            _ => 10.0,
        }
    }

    /// Strength of the population-density → serviceability coupling for an
    /// (ISP, state): the CBG's base rate is multiplied by
    /// `1 + coupling · (density_percentile − 0.5)`. The paper observes a
    /// strong positive correlation for AT&T in every state *except
    /// Mississippi* (§4.1, Figure 3).
    pub fn density_coupling(isp: Isp, state: UsState) -> f64 {
        match (isp, state) {
            (Isp::Att, UsState::Mississippi) => 0.0,
            (Isp::Att, _) => 1.4,
            _ => 0.15,
        }
    }

    /// The advertised *maximum* speed-tier distribution for served
    /// addresses, as `(catalog tier label, relative weight)`. Weights are
    /// Table 1's advertised column conditioned on being served, with the
    /// coarse `11–99` / `100–999` / `1000+` bands split across the ISP's
    /// catalog tiers in those bands.
    pub fn advertised_tier_weights(isp: Isp) -> &'static [(&'static str, f64)] {
        match isp {
            Isp::Att => &[
                ("AT&T Internet Air", 15.62),
                ("DSL 768k", 3.57),
                ("DSL 1", 3.02),
                ("DSL 3", 5.52),
                ("DSL 5", 7.67),
                ("Internet 10", 9.69),
                ("Internet 25", 14.89),
                ("Internet 50", 14.88),
                ("Fiber 300", 1.11),
                ("Fiber 1000", 20.02),
                ("Fiber 5000", 4.00),
            ],
            Isp::CenturyLink => &[
                ("DSL 0.5", 0.33),
                ("DSL 1.5", 2.18),
                ("DSL 3", 16.44),
                ("DSL 6", 6.19),
                ("Simply Internet 10", 35.56),
                ("Simply Internet 40", 18.67),
                ("Simply Internet 80", 18.67),
                ("Fiber 200", 1.00),
                ("Fiber 940", 0.96),
            ],
            Isp::Frontier => &[
                ("Frontier Internet", 76.75),
                ("Unknown Plan", 17.49),
                ("Fiber 500", 0.14),
                ("Fiber 1 Gig", 4.62),
                ("Fiber 5 Gig", 1.00),
            ],
            Isp::Consolidated => &[
                ("DSL 3", 0.03),
                ("DSL 7", 0.21),
                ("Internet 10", 14.60),
                ("Internet 50", 49.52),
                ("Internet 250", 1.36),
                ("Fidium 1 Gig", 30.00),
                ("Fidium 2 Gig", 4.28),
            ],
            Isp::Windstream => &[
                ("Kinetic 25", 40.0),
                ("Kinetic 100", 40.0),
                ("Kinetic 1 Gig", 20.0),
            ],
            Isp::Xfinity => &[
                ("Connect 150", 30.0),
                ("Fast 400", 35.0),
                ("Gigabit", 30.0),
                ("Gigabit X2", 5.0),
            ],
            Isp::Spectrum => &[
                ("Internet 300", 55.0),
                ("Internet Ultra 500", 30.0),
                ("Internet Gig", 15.0),
            ],
        }
    }

    /// The certified download-speed distribution ISPs report to USAC, as
    /// `(Mbps, relative weight)` — Table 1's certified columns. Certified
    /// speeds all satisfy the 10 Mbps floor, which is exactly the
    /// discrepancy the paper exposes.
    pub fn certified_tier_weights(isp: Isp) -> &'static [(f64, f64)] {
        match isp {
            Isp::Att => &[(10.0, 100.0)],
            Isp::CenturyLink => &[(10.0, 100.0)],
            Isp::Consolidated => &[
                (10.0, 88.20),
                (25.0, 10.434),
                (100.0, 0.557),
                (1000.0, 0.801),
            ],
            Isp::Frontier => &[(10.0, 99.957), (100.0, 0.042)],
            Isp::Windstream => &[(10.0, 90.0), (25.0, 10.0)],
            Isp::Xfinity | Isp::Spectrum => &[],
        }
    }

    /// Per-attempt transient error probability for an ISP's website —
    /// bot-detection walls, dropdown failures, human-verification pages.
    /// Tuned so expected traceback-error counts land near Table 2.
    pub fn transient_error_rate(isp: Isp) -> f64 {
        match isp {
            Isp::Att => 0.21,
            Isp::Frontier => 0.13,
            Isp::CenturyLink => 0.058,
            Isp::Consolidated => 0.42,
            Isp::Windstream => 0.10,
            Isp::Xfinity | Isp::Spectrum => 0.05,
        }
    }

    /// Fraction of addresses that can never be resolved on the ISP's site
    /// (every retry fails — §5's "unavoidable errors"). These end as
    /// Unknown and are excluded from serviceability.
    pub fn hard_failure_rate(isp: Isp) -> f64 {
        match isp {
            Isp::Att => 0.010,
            Isp::Frontier => 0.046,
            Isp::CenturyLink => 0.016,
            Isp::Consolidated => 0.185,
            Isp::Windstream => 0.02,
            Isp::Xfinity | Isp::Spectrum => 0.012,
        }
    }

    /// Relative weights of traceback error categories per ISP (Table 2's
    /// row, in [`ErrorCategory::all`] order).
    pub fn error_category_weights(isp: Isp) -> [f64; 5] {
        match isp {
            Isp::Att => [43_781.0, 10_130.0, 7_606.0, 0.0, 14.0],
            Isp::Frontier => [17_614.0, 0.0, 6_210.0, 2_967.0, 0.0],
            Isp::CenturyLink => [0.0, 0.0, 6_939.0, 0.0, 0.0],
            Isp::Consolidated => [15_510.0, 33.0, 0.0, 0.0, 8.0],
            // Unreported ISPs: a generic dropdown-dominated mix.
            _ => [10.0, 2.0, 3.0, 1.0, 1.0],
        }
    }

    /// Fraction of served addresses where the site answers ambiguously
    /// (AT&T's "Call to Order" page, §5) — excluded from the analysis and
    /// resampled.
    pub fn ambiguous_response_rate(isp: Isp) -> f64 {
        match isp {
            Isp::Att => 0.06,
            Isp::Consolidated => 0.03,
            _ => 0.01,
        }
    }

    /// Lognormal query-time parameters `(mu of ln-seconds, sigma)` per ISP
    /// (Figure 11). AT&T's anti-bot defenses give it the widest spread.
    pub fn query_time_params(isp: Isp) -> (f64, f64) {
        match isp {
            Isp::Att => (25.0_f64.ln(), 1.00),
            Isp::CenturyLink => (10.0_f64.ln(), 0.40),
            Isp::Frontier => (12.0_f64.ln(), 0.50),
            Isp::Consolidated => (15.0_f64.ln(), 0.55),
            Isp::Windstream => (10.0_f64.ln(), 0.45),
            Isp::Xfinity => (8.0_f64.ln(), 0.40),
            Isp::Spectrum => (8.0_f64.ln(), 0.40),
        }
    }

    /// The Table-4 Q3 matrix at paper scale: CAF / non-CAF addresses
    /// queried per (state, ISP). Zero-valued cells mean "not queried".
    pub fn q3_target(state: UsState, isp: Isp) -> Q3Target {
        use Isp::*;
        use UsState::*;
        let t = |caf: u64, non_caf: u64| Q3Target { caf, non_caf };
        match (state, isp) {
            (California, Att) => t(39_894, 22_071),
            (California, Frontier) => t(30_360, 8_843),
            (California, CenturyLink) => t(0, 211),
            (California, Consolidated) => t(0, 57),
            (California, Xfinity) => t(0, 9_608),
            (California, Spectrum) => t(0, 6_096),
            (Georgia, Att) => t(20_303, 12_034),
            (Georgia, Frontier) => t(494, 444),
            (Georgia, CenturyLink) => t(306, 675),
            (Georgia, Consolidated) => t(0, 7),
            (Georgia, Xfinity) => t(0, 2_158),
            (Georgia, Spectrum) => t(0, 1_066),
            (Illinois, Att) => t(2_824, 1_452),
            (Illinois, Frontier) => t(14_345, 6_988),
            (Illinois, CenturyLink) => t(373, 422),
            (Illinois, Consolidated) => t(0, 137),
            (Illinois, Xfinity) => t(406, 163),
            (Illinois, Spectrum) => t(0, 249),
            (NorthCarolina, Att) => t(8_716, 5_530),
            (NorthCarolina, Frontier) => t(3_878, 3_045),
            (NorthCarolina, CenturyLink) => t(21_757, 22_341),
            (NorthCarolina, Xfinity) => t(0, 186),
            (NorthCarolina, Spectrum) => t(0, 7_067),
            (NewHampshire, Consolidated) => t(2_665, 1_570),
            (NewHampshire, Xfinity) => t(0, 112),
            (NewHampshire, Spectrum) => t(0, 447),
            (Ohio, Att) => t(13_852, 4_691),
            (Ohio, Frontier) => t(36_710, 16_206),
            (Ohio, CenturyLink) => t(18_356, 7_553),
            (Ohio, Consolidated) => t(0, 892),
            (Ohio, Xfinity) => t(0, 503),
            (Ohio, Spectrum) => t(0, 5_673),
            (Utah, Frontier) => t(741, 193),
            (Utah, CenturyLink) => t(603, 517),
            (Utah, Xfinity) => t(0, 573),
            _ => Q3Target::default(),
        }
    }

    /// The census-block type mix for the Q3 analysis at paper scale:
    /// `(Type A, Type B, Type C)` block counts (§4.3: 8.76 k / 0.56 k /
    /// 0.10 k).
    pub fn q3_block_mix() -> (u64, u64, u64) {
        (8_760, 560, 100)
    }

    /// Type-A outcome split: probability that a block's CAF addresses are
    /// offered (better, identical, worse) plans than its monopoly-served
    /// neighbors (§4.3: 27 % / 54 % / 17 %, normalized).
    pub fn type_a_outcome_split() -> [f64; 3] {
        [0.2755, 0.5510, 0.1735]
    }

    /// Type-B outcome split: (CAF better, tie, competition better)
    /// (§4.3: 32.1 % / 37.2 % / 30.7 %). The generator enforces the drawn
    /// relation against tier quantization (see `q3::escape_tier_above`),
    /// so measured splits track these draws.
    pub fn type_b_outcome_split() -> [f64; 3] {
        [0.321, 0.372, 0.307]
    }

    /// Lognormal parameters of the *relative* CAF speed uplift in blocks
    /// where CAF wins: median +75 %, 80th percentile +400 % (Figure 4c).
    /// sigma = ln(4.00 / 0.75) / z_0.8.
    pub fn caf_uplift_params() -> (f64, f64) {
        let mu = 0.75_f64.ln();
        let sigma = (4.00_f64 / 0.75).ln() / 0.841_621;
        (mu, sigma)
    }

    /// Lognormal parameters of block base average download speed in Q3
    /// blocks: median ≈ 10 Mbps with ≈90 % of blocks under 100 Mbps
    /// (Figures 4b/5b).
    pub fn q3_base_speed_params() -> (f64, f64) {
        (10.0_f64.ln(), 1.60)
    }

    /// Fraction of Type-B blocks whose CAF speeds ride the competition
    /// spillover (Figure 6a: in 20 % of blocks, Type-B CAF speeds exceed
    /// Type-A by over 90 Mbps), and the lognormal boost parameters.
    pub fn type_b_spillover() -> (f64, f64, f64) {
        (0.25, 130.0_f64.ln(), 0.60)
    }

    /// FCC CAF service standard: minimum download / upload speeds in Mbps.
    pub fn fcc_speed_floor() -> (f64, f64) {
        (10.0, 1.0)
    }

    /// The FCC's 2024 benchmark rate cap for 10/1 Mbps service (§2.2).
    pub fn fcc_rate_cap_usd() -> f64 {
        89.0
    }
}

#[cfg(test)]
// The paper's Frontier serviceability (70.71 %) is coincidentally
// 1/sqrt(2); it is published data, not an approximated math constant.
#[allow(clippy::approx_constant)]
mod tests {
    use super::*;

    /// Address-weighted aggregate of per-state bases for one ISP.
    fn weighted_base(isp: Isp) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for state in UsState::study_states() {
            if let Some(p) = CalibrationParams::presence(state, isp) {
                let w = p.addresses as f64;
                num += w * CalibrationParams::serviceability_base(isp, state);
                den += w;
            }
        }
        num / den
    }

    #[test]
    fn presence_totals_match_table_3() {
        let mut totals = std::collections::HashMap::new();
        for state in UsState::study_states() {
            for isp in Isp::audited() {
                if let Some(p) = CalibrationParams::presence(state, isp) {
                    *totals.entry(isp).or_insert(0u64) += p.addresses;
                }
            }
        }
        assert_eq!(totals[&Isp::Att], 233_247);
        assert_eq!(totals[&Isp::CenturyLink], 111_841);
        assert_eq!(totals[&Isp::Consolidated], 22_806);
        assert_eq!(totals[&Isp::Frontier], 169_766);
        // Grand total: the paper's 537 k CAF addresses.
        let grand: u64 = totals.values().sum();
        assert_eq!(grand, 537_660);
    }

    #[test]
    fn state_counts_match_paper() {
        // AT&T serves 9 of the 15 states, CenturyLink 12, Frontier 12,
        // Consolidated 5 (§9.2).
        assert_eq!(CalibrationParams::states_for(Isp::Att).len(), 9);
        assert_eq!(CalibrationParams::states_for(Isp::CenturyLink).len(), 12);
        assert_eq!(CalibrationParams::states_for(Isp::Frontier).len(), 12);
        assert_eq!(CalibrationParams::states_for(Isp::Consolidated).len(), 5);
    }

    #[test]
    fn weighted_bases_land_on_section_4_1_rates() {
        assert!((weighted_base(Isp::Att) - 0.3153).abs() < 0.02);
        assert!((weighted_base(Isp::CenturyLink) - 0.9042).abs() < 0.02);
        assert!((weighted_base(Isp::Frontier) - 0.7071).abs() < 0.02);
        assert!((weighted_base(Isp::Consolidated) - 0.8395).abs() < 0.02);
    }

    #[test]
    fn tier_weights_reference_real_catalog_labels() {
        use crate::plans::PlanCatalog;
        for isp in Isp::all() {
            let cat = PlanCatalog::for_isp(isp);
            for (label, weight) in CalibrationParams::advertised_tier_weights(isp) {
                assert!(
                    cat.tier_labeled(label).is_some(),
                    "{isp}: unknown tier {label}"
                );
                assert!(*weight > 0.0);
            }
        }
    }

    #[test]
    fn advertised_compliance_shares_match_table_1() {
        use crate::plans::PlanCatalog;
        let (floor_down, floor_up) = CalibrationParams::fcc_speed_floor();
        // Fraction of *served* addresses whose max advertised tier passes
        // the FCC standard, per ISP.
        let served_compliant = |isp: Isp| -> f64 {
            let cat = PlanCatalog::for_isp(isp);
            let weights = CalibrationParams::advertised_tier_weights(isp);
            let total: f64 = weights.iter().map(|(_, w)| w).sum();
            weights
                .iter()
                .filter(|(label, _)| {
                    let tier = cat.tier_labeled(label).unwrap();
                    cat.plan_from_tier(tier)
                        .meets_service_standard(floor_down, floor_up)
                })
                .map(|(_, w)| w)
                .sum::<f64>()
                / total
        };
        // Multiply by serviceability to get overall compliance; compare to
        // §4.2's per-ISP compliance ordering.
        let att = served_compliant(Isp::Att) * 0.3153;
        let cl = served_compliant(Isp::CenturyLink) * 0.9042;
        let frontier = served_compliant(Isp::Frontier) * 0.7071;
        let cons = served_compliant(Isp::Consolidated) * 0.8395;
        assert!((0.12..0.25).contains(&att), "att {att}");
        assert!((0.60..0.78).contains(&cl), "cl {cl}");
        assert!(frontier < 0.16, "frontier {frontier}");
        assert!((0.78..0.92).contains(&cons), "cons {cons}");
        // Ordering: Consolidated > CenturyLink >> AT&T > Frontier.
        assert!(cons > cl && cl > att && att > frontier);
    }

    #[test]
    fn q3_table_4_totals() {
        let mut caf = 0u64;
        let mut non_caf = 0u64;
        for state in UsState::q3_states() {
            for isp in Isp::bqt_supported() {
                let t = CalibrationParams::q3_target(state, isp);
                caf += t.caf;
                non_caf += t.non_caf;
            }
        }
        // §4.3 reports "235 k CAF and 183 k non-CAF addresses to query";
        // Table 4 itself sums slightly lower (≈217 k / ≈176 k) — the text
        // total includes rows dropped before the table. We encode Table 4.
        assert!((200_000..240_000).contains(&caf), "caf {caf}");
        assert!((140_000..190_000).contains(&non_caf), "non_caf {non_caf}");
    }

    #[test]
    fn outcome_splits_are_distributions() {
        for split in [
            CalibrationParams::type_a_outcome_split(),
            CalibrationParams::type_b_outcome_split(),
        ] {
            let sum: f64 = split.iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
            assert!(split.iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn uplift_params_hit_the_figure_4c_quantiles() {
        let (mu, sigma) = CalibrationParams::caf_uplift_params();
        let median = mu.exp();
        let p80 = (mu + 0.841_621 * sigma).exp();
        assert!((median - 0.75).abs() < 1e-9);
        assert!((p80 - 4.0).abs() < 1e-3);
    }

    #[test]
    fn scaling_preserves_small_cells() {
        let cfg = SynthConfig::default();
        assert_eq!(cfg.scaled(0), 0);
        assert_eq!(cfg.scaled(2), 1); // Mississippi CenturyLink survives
        assert_eq!(cfg.scaled(69_711), 6_971);
        let unit = SynthConfig { seed: 1, scale: 1 };
        assert_eq!(unit.scaled(69_711), 69_711);
    }

    #[test]
    fn error_category_weights_match_table_2_rows() {
        let att = CalibrationParams::error_category_weights(Isp::Att);
        assert_eq!(att[0], 43_781.0);
        let total: f64 = att.iter().sum();
        assert!((total - 61_531.0).abs() < 1.0); // 61,768 minus the dash column
        let cl = CalibrationParams::error_category_weights(Isp::CenturyLink);
        assert_eq!(cl[2], 6_939.0);
        assert_eq!(cl.iter().filter(|&&w| w > 0.0).count(), 1);
    }
}
