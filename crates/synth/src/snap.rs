//! [`Snap`] codecs for the synthetic world: everything `caf-serve`
//! persists to resume a live, epoch-versioned scenario without
//! regenerating it.
//!
//! Two invariants matter here:
//!
//! * **Canonical encodings.** Hash-ordered collections (the truth
//!   table) are sorted before encoding, so snapshotting the same world
//!   twice produces byte-identical files — which is what lets the disk
//!   tier and CI compare snapshots by content hash.
//! * **Validated decoding.** Enum discriminants and cross-field
//!   invariants are checked on the way in; a corrupt payload that
//!   survives the container checksums still cannot materialize an
//!   invalid world.

use crate::challenge::{CellCorrections, ChallengeSet, Correction};
use crate::geography::{BlockInfo, CbgInfo, StateGeography};
use crate::params::{ErrorCategory, SynthConfig};
use crate::plans::BroadbandPlan;
use crate::q3::{LatentBlockType, Q3Address, Q3Block, Q3World};
use crate::truth::{AddressTruth, TruthTable};
use crate::usac::{CafRecord, Technology, UsacDataset};
use crate::world::{StateWorld, World};
use crate::Isp;
use caf_snap::{Reader, Snap, SnapError, Writer};

fn bad_tag(what: &str, tag: u8) -> SnapError {
    SnapError::Malformed(format!("{what}: unknown tag {tag}"))
}

impl Snap for Isp {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Isp::Att => 0,
            Isp::CenturyLink => 1,
            Isp::Frontier => 2,
            Isp::Consolidated => 3,
            Isp::Windstream => 4,
            Isp::Xfinity => 5,
            Isp::Spectrum => 6,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Isp::Att,
            1 => Isp::CenturyLink,
            2 => Isp::Frontier,
            3 => Isp::Consolidated,
            4 => Isp::Windstream,
            5 => Isp::Xfinity,
            6 => Isp::Spectrum,
            other => return Err(bad_tag("isp", other)),
        })
    }
}

impl Snap for ErrorCategory {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            ErrorCategory::SelectDropdown => 0,
            ErrorCategory::AnalyzingResult => 1,
            ErrorCategory::EmptyTraceback => 2,
            ErrorCategory::ClickingButton => 3,
            ErrorCategory::Other => 4,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => ErrorCategory::SelectDropdown,
            1 => ErrorCategory::AnalyzingResult,
            2 => ErrorCategory::EmptyTraceback,
            3 => ErrorCategory::ClickingButton,
            4 => ErrorCategory::Other,
            other => return Err(bad_tag("error category", other)),
        })
    }
}

impl Snap for Technology {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Technology::Dsl => 0,
            Technology::Fiber => 1,
            Technology::FixedWireless => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Technology::Dsl,
            1 => Technology::Fiber,
            2 => Technology::FixedWireless,
            other => return Err(bad_tag("technology", other)),
        })
    }
}

impl Snap for LatentBlockType {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            LatentBlockType::TypeA => 0,
            LatentBlockType::TypeB => 1,
            LatentBlockType::TypeC => 2,
            LatentBlockType::NoServedNonCaf => 3,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => LatentBlockType::TypeA,
            1 => LatentBlockType::TypeB,
            2 => LatentBlockType::TypeC,
            3 => LatentBlockType::NoServedNonCaf,
            other => return Err(bad_tag("latent block type", other)),
        })
    }
}

impl Snap for SynthConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.seed);
        w.put_u32(self.scale);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let seed = r.u64()?;
        let scale = r.u32()?;
        if scale == 0 {
            return Err(SnapError::Malformed("zero scale".to_string()));
        }
        Ok(SynthConfig { seed, scale })
    }
}

impl Snap for BroadbandPlan {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.name);
        w.put(&self.download_mbps);
        w.put(&self.upload_mbps);
        w.put_f64(self.monthly_usd);
        w.put_bool(self.speed_guaranteed);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(BroadbandPlan {
            name: r.str()?,
            download_mbps: r.get()?,
            upload_mbps: r.get()?,
            monthly_usd: r.f64()?,
            speed_guaranteed: r.bool()?,
        })
    }
}

impl Snap for CafRecord {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.address);
        w.put(&self.isp);
        w.put_f64(self.certified_down_mbps);
        w.put_f64(self.certified_up_mbps);
        w.put(&self.technology);
        w.put_f64(self.latency_ms);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(CafRecord {
            address: r.get()?,
            isp: r.get()?,
            certified_down_mbps: r.f64()?,
            certified_up_mbps: r.f64()?,
            technology: r.get()?,
            latency_ms: r.f64()?,
        })
    }
}

impl Snap for UsacDataset {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.state);
        w.put_seq(&self.records);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let state = r.get()?;
        let records = r.get_seq()?;
        // `assemble` rebuilds the derived per-cell row index, so the
        // snapshot only carries the rows themselves.
        Ok(UsacDataset::assemble(state, records))
    }
}

impl Snap for AddressTruth {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(self.served);
        w.put_seq(&self.plans);
        w.put_bool(self.existing_subscriber);
        w.put_bool(self.hard_failure);
        w.put_bool(self.ambiguous);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(AddressTruth {
            served: r.bool()?,
            plans: r.get_seq()?,
            existing_subscriber: r.bool()?,
            hard_failure: r.bool()?,
            ambiguous: r.bool()?,
        })
    }
}

impl Snap for TruthTable {
    fn encode(&self, w: &mut Writer) {
        // The table is hash-ordered in memory; sort by key for a
        // canonical byte stream.
        let mut entries: Vec<_> = self.entries().collect();
        entries.sort_by_key(|&(address, isp, _)| (address.0, isp));
        w.put_u64(entries.len() as u64);
        for (address, isp, truth) in entries {
            w.put(&address);
            w.put(&isp);
            w.put(truth);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let len = r.len_prefix()?;
        let mut table = TruthTable::new();
        for _ in 0..len {
            let address = r.get()?;
            let isp = r.get()?;
            let truth = r.get()?;
            table.insert(address, isp, truth);
        }
        Ok(table)
    }
}

impl Snap for BlockInfo {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.id);
        w.put(&self.centroid);
        w.put_u32(self.caf_addresses);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(BlockInfo {
            id: r.get()?,
            centroid: r.get()?,
            caf_addresses: r.u32()?,
        })
    }
}

impl Snap for CbgInfo {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.id);
        w.put(&self.isp);
        w.put(&self.centroid);
        w.put_u32(self.population);
        w.put_f64(self.density);
        w.put_f64(self.density_pct);
        w.put_u32(self.caf_addresses);
        w.put_seq(&self.blocks);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(CbgInfo {
            id: r.get()?,
            isp: r.get()?,
            centroid: r.get()?,
            population: r.u32()?,
            density: r.f64()?,
            density_pct: r.f64()?,
            caf_addresses: r.u32()?,
            blocks: r.get_seq()?,
        })
    }
}

impl Snap for StateGeography {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.state);
        w.put_seq(&self.cbgs);
        w.put_seq(&self.urban_centers);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(StateGeography {
            state: r.get()?,
            cbgs: r.get_seq()?,
            urban_centers: r.get_seq()?,
        })
    }
}

impl Snap for Q3Address {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.address);
        w.put_bool(self.is_caf);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Q3Address {
            address: r.get()?,
            is_caf: r.bool()?,
        })
    }
}

impl Snap for Q3Block {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.id);
        w.put(&self.state);
        w.put(&self.caf_isp);
        w.put_seq(&self.competitors);
        w.put(&self.latent_type);
        w.put_seq(&self.addresses);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Q3Block {
            id: r.get()?,
            state: r.get()?,
            caf_isp: r.get()?,
            competitors: r.get_seq()?,
            latent_type: r.get()?,
            addresses: r.get_seq()?,
        })
    }
}

impl Snap for Q3World {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.state);
        w.put_seq(&self.blocks);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Q3World {
            state: r.get()?,
            blocks: r.get_seq()?,
        })
    }
}

impl Snap for Correction {
    fn encode(&self, w: &mut Writer) {
        match self {
            Correction::Availability { rate_ppm } => {
                w.put_u8(0);
                w.put_u32(*rate_ppm);
            }
            Correction::CertifiedTier { down_mbps, up_mbps } => {
                w.put_u8(1);
                w.put_u32(*down_mbps);
                w.put_u32(*up_mbps);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => Correction::Availability { rate_ppm: r.u32()? },
            1 => Correction::CertifiedTier {
                down_mbps: r.u32()?,
                up_mbps: r.u32()?,
            },
            other => return Err(bad_tag("correction", other)),
        })
    }
}

impl Snap for crate::ChallengeDelta {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.state);
        w.put_usize(self.cbg);
        w.put(&self.isp);
        w.put(&self.correction);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(crate::ChallengeDelta {
            state: r.get()?,
            cbg: r.usize()?,
            isp: r.get()?,
            correction: r.get()?,
        })
    }
}

impl Snap for CellCorrections {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.availability_ppm);
        w.put(&self.certified);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(CellCorrections {
            availability_ppm: r.get()?,
            certified: r.get()?,
        })
    }
}

impl Snap for ChallengeSet {
    fn encode(&self, w: &mut Writer) {
        // BTreeMap iteration is already sorted — canonical as-is.
        let cells: Vec<(u16, usize, CellCorrections)> = self
            .iter()
            .map(|(fips, cbg, cell)| (fips, cbg, *cell))
            .collect();
        w.put_seq(&cells);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let cells: Vec<(u16, usize, CellCorrections)> = r.get_seq()?;
        let mut set = ChallengeSet::new();
        for (fips, cbg, cell) in cells {
            set.insert_cell(fips, cbg, cell);
        }
        Ok(set)
    }
}

impl Snap for StateWorld {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.state);
        w.put(&self.geography);
        w.put(&self.usac);
        w.put(&self.q3);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(StateWorld {
            state: r.get()?,
            geography: r.get()?,
            usac: r.get()?,
            q3: r.get()?,
        })
    }
}

impl Snap for World {
    fn encode(&self, w: &mut Writer) {
        w.put(&self.config);
        w.put_seq(&self.states);
        w.put(&self.truth);
        w.put_u64(self.epoch);
        w.put(&self.challenges);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let world = World {
            config: r.get()?,
            states: r.get_seq()?,
            truth: r.get()?,
            epoch: r.u64()?,
            challenges: r.get()?,
        };
        // An epoch-0 world must carry no corrections (and vice versa a
        // corrected world must be past epoch 0) — a cheap cross-field
        // check that catches section-splicing mistakes.
        if world.epoch == 0 && !world.challenges.is_empty() {
            return Err(SnapError::Malformed(
                "epoch-0 world carries challenge corrections".to_string(),
            ));
        }
        Ok(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChallengeDelta;
    use caf_geo::UsState;

    fn round_trip_bytes<T: Snap>(value: &T) -> (Vec<u8>, T) {
        let mut w = Writer::new();
        w.put(value);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = r.get::<T>().unwrap();
        r.finish().unwrap();
        (bytes, decoded)
    }

    #[test]
    fn world_round_trips_byte_identically() {
        let config = SynthConfig {
            seed: 0xCAF_2024,
            scale: 4000,
        };
        let world = World::generate_states(config, &[UsState::Texas, UsState::Kansas]);
        let (bytes, decoded) = round_trip_bytes(&world);
        // Canonical: re-encoding the decoded world reproduces the bytes.
        let mut w = Writer::new();
        w.put(&decoded);
        assert_eq!(w.into_bytes(), bytes);
        assert_eq!(decoded.epoch, world.epoch);
        assert_eq!(decoded.truth.len(), world.truth.len());
        assert_eq!(decoded.states.len(), world.states.len());
        for (a, b) in world.states.iter().zip(&decoded.states) {
            assert_eq!(a.state, b.state);
            assert_eq!(a.geography.cbgs.len(), b.geography.cbgs.len());
            assert_eq!(a.usac.records.len(), b.usac.records.len());
            assert_eq!(a.q3.blocks.len(), b.q3.blocks.len());
        }
    }

    #[test]
    fn challenged_world_round_trips_with_log_state() {
        let config = SynthConfig {
            seed: 7,
            scale: 1000,
        };
        let mut world = World::generate_states(config, &UsState::study_states());
        let populated = world
            .states
            .iter()
            .find(|sw| !sw.geography.cbgs.is_empty())
            .expect("some study state has a CBG at this scale");
        let delta = ChallengeDelta {
            state: populated.state,
            cbg: 0,
            isp: populated.geography.cbgs[0].isp,
            correction: Correction::Availability { rate_ppm: 123_456 },
        };
        world.apply_deltas(std::slice::from_ref(&delta)).unwrap();
        assert_eq!(world.epoch, 1);
        let (_, decoded) = round_trip_bytes(&world);
        assert_eq!(decoded.epoch, 1);
        assert_eq!(decoded.challenges, world.challenges);
        // The restored challenge state must keep future deltas correct:
        // a second correction to the same cell rebuilds from the merged
        // set, not from the baseline.
        let mut a = world;
        let mut b = decoded;
        let next = ChallengeDelta {
            correction: Correction::CertifiedTier {
                down_mbps: 25,
                up_mbps: 3,
            },
            ..delta
        };
        a.apply_deltas(std::slice::from_ref(&next)).unwrap();
        b.apply_deltas(std::slice::from_ref(&next)).unwrap();
        let (bytes_a, _) = round_trip_bytes(&a);
        let (bytes_b, _) = round_trip_bytes(&b);
        assert_eq!(bytes_a, bytes_b, "snapshot-restored world diverged");
    }

    #[test]
    fn epoch_challenge_consistency_is_enforced() {
        let mut w = Writer::new();
        w.put(&SynthConfig { seed: 1, scale: 10 });
        w.put_seq::<StateWorld>(&[]);
        w.put(&TruthTable::new());
        w.put_u64(0); // epoch 0…
        let mut set = ChallengeSet::new();
        set.merge_delta(&ChallengeDelta {
            state: UsState::Texas,
            cbg: 3,
            isp: Isp::Att,
            correction: Correction::Availability { rate_ppm: 1 },
        });
        w.put(&set); // …but a non-empty correction set
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).get::<World>(),
            Err(SnapError::Malformed(_))
        ));
    }

    #[test]
    fn enum_discriminants_reject_unknown_tags() {
        for bytes in [[7u8], [5u8], [9u8], [4u8]] {
            let mut r = Reader::new(&bytes);
            let failed = match bytes[0] {
                7 => r.get::<Isp>().is_err(),
                5 => r.get::<ErrorCategory>().is_err(),
                9 => r.get::<Technology>().is_err(),
                4 => r.get::<LatentBlockType>().is_err(),
                _ => unreachable!(),
            };
            assert!(failed);
        }
    }

    #[test]
    fn zero_scale_config_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(1);
        w.put_u32(0);
        let bytes = w.into_bytes();
        assert!(matches!(
            Reader::new(&bytes).get::<SynthConfig>(),
            Err(SnapError::Malformed(_))
        ));
    }
}
