//! Crowdsourced speed-test measurements (the §5 "advertised vs
//! experienced" extension).
//!
//! The paper's first stated limitation is that BQT sees only what ISPs
//! *advertise*; prior work (its reference \[44\]) shows experienced
//! throughput routinely falls short, especially on DSL. This module
//! models the complementary data source the authors name as future work:
//! crowdsourced speed tests (Ookla/M-Lab style) at served addresses.
//!
//! The model: a subscriber at a served address runs `k ~ 1 + Poisson`
//! tests; each test realizes `advertised × delivery_factor × congestion`,
//! where the delivery factor depends on the last-mile technology
//! (DSL under-delivers most, fiber least — the \[44\] finding) and
//! congestion is a time-of-day multiplier. Tests are tagged with an hour
//! so the evening-peak dip is analyzable.

use crate::dist;
use crate::isp::Isp;
use crate::rng::{mix2, scoped_rng};
use crate::truth::TruthTable;
use crate::usac::{Technology, UsacDataset};
use caf_geo::AddressId;
use rand::Rng;

/// One crowdsourced speed-test observation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedTest {
    /// The address the test ran from.
    pub address: AddressId,
    /// The subscriber's ISP.
    pub isp: Isp,
    /// Advertised download speed of the subscribed plan, Mbps.
    pub advertised_mbps: f64,
    /// Measured download throughput, Mbps.
    pub measured_mbps: f64,
    /// Local hour of day (0–23) the test ran.
    pub hour: u8,
    /// Last-mile technology of the certified deployment.
    pub technology: Technology,
}

impl SpeedTest {
    /// Delivery ratio: measured over advertised.
    pub fn delivery_ratio(&self) -> f64 {
        if self.advertised_mbps <= 0.0 {
            0.0
        } else {
            self.measured_mbps / self.advertised_mbps
        }
    }
}

/// Median delivery factor by technology: the fraction of the advertised
/// speed a subscriber typically experiences. DSL's long copper loops
/// under-deliver most; fiber is nearly at par (shape from the paper's
/// reference \[44\] and the FCC's MBA reports).
pub fn delivery_factor(technology: Technology) -> f64 {
    match technology {
        Technology::Dsl => 0.62,
        Technology::FixedWireless => 0.74,
        Technology::Fiber => 0.94,
    }
}

/// Evening-peak congestion multiplier for a given hour.
pub fn congestion_factor(hour: u8) -> f64 {
    match hour {
        19..=22 => 0.82, // evening peak
        23 | 0..=5 => 1.02,
        _ => 0.95,
    }
}

/// Generates speed tests for the served addresses of a state's USAC
/// slice. Only a fraction of addresses host a tester (crowdsourcing is
/// opt-in and biased toward engaged subscribers).
pub fn generate_speedtests(
    seed: u64,
    usac: &UsacDataset,
    truth: &TruthTable,
    participation: f64,
) -> Vec<SpeedTest> {
    assert!(
        (0.0..=1.0).contains(&participation),
        "participation is a probability"
    );
    let mut out = Vec::new();
    for record in &usac.records {
        let Some(address_truth) = truth.get(record.address.id, record.isp) else {
            continue;
        };
        if !address_truth.served {
            continue;
        }
        let Some(advertised) = address_truth.max_download_mbps() else {
            continue; // tier-less plans advertise nothing to measure against
        };
        let mut rng = scoped_rng(
            seed,
            "speedtest",
            mix2(record.address.id.0, record.isp.id(), 3),
        );
        if !dist::bernoulli(&mut rng, participation) {
            continue;
        }
        let tests = 1 + (dist::lognormal(&mut rng, 0.5, 0.8) as usize).min(9);
        for _ in 0..tests {
            let hour = rng.gen_range(0..24u8);
            let base = delivery_factor(record.technology);
            let noise = dist::lognormal(&mut rng, 0.0, 0.18);
            let measured =
                (advertised * base * congestion_factor(hour) * noise).clamp(0.1, advertised * 1.1);
            out.push(SpeedTest {
                address: record.address.id,
                isp: record.isp,
                advertised_mbps: advertised,
                measured_mbps: measured,
                hour,
                technology: record.technology,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geography::StateGeography;
    use crate::params::SynthConfig;
    use caf_geo::UsState;

    fn world_bits() -> (UsacDataset, TruthTable) {
        let cfg = SynthConfig { seed: 3, scale: 30 };
        let geo = StateGeography::build(&cfg, UsState::Vermont);
        let usac = UsacDataset::build(&cfg, &geo);
        let truth = TruthTable::build_q1(&cfg, &geo, &usac);
        (usac, truth)
    }

    #[test]
    fn tests_only_at_served_addresses_with_specified_speeds() {
        let (usac, truth) = world_bits();
        let tests = generate_speedtests(3, &usac, &truth, 0.5);
        assert!(!tests.is_empty());
        for t in &tests {
            let at = truth.get(t.address, t.isp).expect("truth exists");
            assert!(at.served);
            assert_eq!(Some(t.advertised_mbps), at.max_download_mbps());
            assert!(t.measured_mbps > 0.0);
            assert!(t.hour < 24);
        }
    }

    #[test]
    fn experienced_falls_short_of_advertised_on_average() {
        let (usac, truth) = world_bits();
        let tests = generate_speedtests(3, &usac, &truth, 0.8);
        let mean_ratio = tests.iter().map(|t| t.delivery_ratio()).sum::<f64>() / tests.len() as f64;
        assert!(
            (0.5..0.95).contains(&mean_ratio),
            "mean delivery ratio {mean_ratio}"
        );
        // DSL under-delivers more than fiber.
        let mean_for = |tech: Technology| {
            let xs: Vec<f64> = tests
                .iter()
                .filter(|t| t.technology == tech)
                .map(|t| t.delivery_ratio())
                .collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        let dsl = mean_for(Technology::Dsl);
        let fiber = mean_for(Technology::Fiber);
        if dsl > 0.0 && fiber > 0.0 {
            assert!(fiber > dsl + 0.1, "fiber {fiber} vs dsl {dsl}");
        }
    }

    #[test]
    fn evening_peak_is_slower() {
        let (usac, truth) = world_bits();
        let tests = generate_speedtests(3, &usac, &truth, 0.9);
        let mean_at = |pred: &dyn Fn(u8) -> bool| {
            let xs: Vec<f64> = tests
                .iter()
                .filter(|t| pred(t.hour))
                .map(|t| t.delivery_ratio())
                .collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        let peak = mean_at(&|h| (19..=22).contains(&h));
        let off = mean_at(&|h| h < 6 || h == 23);
        assert!(off > peak, "off-peak {off} should beat peak {peak}");
    }

    #[test]
    fn participation_bounds_respected() {
        let (usac, truth) = world_bits();
        let none = generate_speedtests(3, &usac, &truth, 0.0);
        assert!(none.is_empty());
        let all = generate_speedtests(3, &usac, &truth, 1.0);
        let some = generate_speedtests(3, &usac, &truth, 0.3);
        assert!(some.len() < all.len());
        assert!(!some.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let (usac, truth) = world_bits();
        let a = generate_speedtests(9, &usac, &truth, 0.4);
        let b = generate_speedtests(9, &usac, &truth, 0.4);
        assert_eq!(a, b);
        let c = generate_speedtests(10, &usac, &truth, 0.4);
        assert_ne!(a, c);
    }
}
