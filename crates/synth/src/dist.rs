//! Sampling from the distributions the synthetic world needs.
//!
//! The `rand` crate provides uniform sampling only; the distribution shapes
//! the paper's data exhibits (heavy-tailed addresses-per-block counts,
//! lognormal query times, beta-distributed per-CBG serviceability) are
//! implemented here directly. All samplers take `&mut impl Rng` so they
//! compose with the entity-keyed RNGs in [`crate::rng`].

use rand::Rng;

/// A standard normal draw via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would take ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A normal draw with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev` is negative or non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0 && std_dev.is_finite(), "invalid std dev");
    mean + std_dev * standard_normal(rng)
}

/// A lognormal draw: `exp(N(mu, sigma))`.
///
/// `mu`/`sigma` are the parameters of the underlying normal, so the median
/// of the draw is `exp(mu)`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// A Gamma(shape, 1) draw via the Marsaglia–Tsang squeeze method,
/// with the Ahrens–Dieter boost for shape < 1.
///
/// # Panics
///
/// Panics if `shape` is not positive and finite.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0 && shape.is_finite(), "invalid gamma shape");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// A Beta(alpha, beta) draw via two gamma draws.
///
/// # Panics
///
/// Panics if either parameter is not positive and finite.
pub fn beta<R: Rng + ?Sized>(rng: &mut R, alpha: f64, b: f64) -> f64 {
    let x = gamma(rng, alpha);
    let y = gamma(rng, b);
    x / (x + y)
}

/// A Beta draw parameterized by mean and concentration: alpha = mean·kappa,
/// beta = (1 − mean)·kappa. Used for per-CBG serviceability rates around a
/// state-ISP base rate. Means at the boundary return the boundary exactly.
///
/// # Panics
///
/// Panics if `mean` is outside `[0, 1]` or `kappa` is not positive.
pub fn beta_mean_conc<R: Rng + ?Sized>(rng: &mut R, mean: f64, kappa: f64) -> f64 {
    assert!((0.0..=1.0).contains(&mean), "mean outside [0,1]");
    assert!(kappa > 0.0 && kappa.is_finite(), "invalid concentration");
    if mean == 0.0 {
        return 0.0;
    }
    if mean == 1.0 {
        return 1.0;
    }
    beta(rng, mean * kappa, (1.0 - mean) * kappa)
}

/// A draw from a discrete distribution given non-negative weights; returns
/// the chosen index. Weights need not sum to one.
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative/non-finite value, or
/// sums to zero.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "empty categorical");
    let total: f64 = weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0 && w.is_finite(), "invalid categorical weight {w}");
            w
        })
        .sum();
    assert!(total > 0.0, "categorical weights sum to zero");
    let mut t = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if t < w {
            return i;
        }
        t -= w;
    }
    weights.len() - 1 // floating-point slack lands on the last bucket
}

/// A draw from a bounded Pareto-like (power-law) distribution on
/// `[min, max]` with tail exponent `alpha > 0`; heavier tails for smaller
/// alpha. Matches the paper's addresses-per-census-block shape (range 1 to
/// over 5 000, median in the tens).
///
/// # Panics
///
/// Panics if `min >= max`, `min <= 0`, or `alpha` is not positive.
pub fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, min: f64, max: f64, alpha: f64) -> f64 {
    assert!(min > 0.0 && min < max, "invalid pareto bounds");
    assert!(alpha > 0.0 && alpha.is_finite(), "invalid pareto alpha");
    let u: f64 = rng.gen_range(0.0..1.0);
    let ha = max.powf(-alpha);
    let la = min.powf(-alpha);
    (ha + u * (la - ha)).powf(-1.0 / alpha)
}

/// A Bernoulli draw.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "probability outside [0,1]");
    rng.gen_range(0.0..1.0) < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    fn sample<F: FnMut(&mut StdRng) -> f64>(n: usize, mut f: F) -> Vec<f64> {
        let mut r = rng();
        (0..n).map(|_| f(&mut r)).collect()
    }

    fn mean_of(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn normal_moments() {
        let xs = sample(20_000, |r| normal(r, 5.0, 2.0));
        let m = mean_of(&xs);
        let v = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((m - 5.0).abs() < 0.06, "mean {m}");
        assert!((v - 4.0).abs() < 0.2, "var {v}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut xs = sample(20_000, |r| lognormal(r, 2.0, 0.8));
        xs.sort_by(|a, b| a.total_cmp(b));
        let median = xs[xs.len() / 2];
        assert!((median - 2.0f64.exp()).abs() < 0.3, "median {median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn gamma_mean_equals_shape() {
        for shape in [0.5, 1.0, 3.0, 10.0] {
            let xs = sample(20_000, |r| gamma(r, shape));
            let m = mean_of(&xs);
            assert!(
                (m - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape} mean {m}"
            );
            assert!(xs.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn beta_mean_and_bounds() {
        let xs = sample(20_000, |r| beta(r, 2.0, 6.0));
        let m = mean_of(&xs);
        assert!((m - 0.25).abs() < 0.01, "mean {m}");
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn beta_mean_conc_targets_mean() {
        for target in [0.18, 0.55, 0.90] {
            let xs = sample(20_000, |r| beta_mean_conc(r, target, 12.0));
            let m = mean_of(&xs);
            assert!((m - target).abs() < 0.02, "target {target} mean {m}");
        }
        assert_eq!(beta_mean_conc(&mut rng(), 0.0, 5.0), 0.0);
        assert_eq!(beta_mean_conc(&mut rng(), 1.0, 5.0), 1.0);
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        let mut r = rng();
        for _ in 0..30_000 {
            counts[categorical(&mut r, &weights)] += 1;
        }
        assert!((counts[0] as f64 / 30_000.0 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / 30_000.0 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / 30_000.0 - 0.6).abs() < 0.01);
    }

    #[test]
    fn categorical_zero_weight_never_chosen() {
        let mut r = rng();
        for _ in 0..1_000 {
            assert_ne!(categorical(&mut r, &[1.0, 0.0, 1.0]), 1);
        }
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_skew() {
        let xs = sample(20_000, |r| bounded_pareto(r, 1.0, 5_000.0, 0.6));
        assert!(xs.iter().all(|&x| (1.0..=5_000.0).contains(&x)));
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let mean = mean_of(&xs);
        // Heavy right tail: mean far above median.
        assert!(mean > 2.0 * median, "median {median} mean {mean}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = rng();
        let hits = (0..20_000).filter(|_| bernoulli(&mut r, 0.3153)).count();
        assert!((hits as f64 / 20_000.0 - 0.3153).abs() < 0.01);
        assert!(!bernoulli(&mut r, 0.0));
        assert!(bernoulli(&mut r, 1.0));
    }

    #[test]
    #[should_panic(expected = "invalid gamma shape")]
    fn gamma_rejects_zero_shape() {
        gamma(&mut rng(), 0.0);
    }

    #[test]
    #[should_panic(expected = "categorical weights sum to zero")]
    fn categorical_rejects_all_zero() {
        categorical(&mut rng(), &[0.0, 0.0]);
    }
}
