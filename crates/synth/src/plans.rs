//! Broadband plans and per-ISP plan catalogs.
//!
//! A "plan" is what an ISP's website advertises for an address: a name, a
//! download/upload speed (possibly unguaranteed — AT&T's "Internet Air"
//! and the "Frontier Internet" plan advertise no minimum speed, §4.2), and
//! a monthly price. The catalogs encode the speed tiers observed in
//! Table 1 and the price points of §4.2 ("prices … for the tier of
//! 10 Mbps ranged from $30 to $55 per month").

use crate::isp::Isp;
use std::fmt;

/// One advertised broadband plan.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadbandPlan {
    /// Marketing name, e.g. `"Fiber 500"` or `"AT&T Internet Air"`.
    pub name: String,
    /// Advertised download speed in Mbps, or `None` when the plan offers
    /// no speed commitment at all ("Unknown Plan" rows in Table 1).
    pub download_mbps: Option<f64>,
    /// Advertised upload speed in Mbps, when shown.
    pub upload_mbps: Option<f64>,
    /// Monthly price in dollars.
    pub monthly_usd: f64,
    /// Whether the advertised speed is a commitment. "Frontier Internet"
    /// and "AT&T Internet Air" advertise speeds without guarantees and are
    /// classified non-compliant by the paper (§4.2).
    pub speed_guaranteed: bool,
}

impl BroadbandPlan {
    /// Carriage value: advertised download Mbps per dollar per month, or
    /// `None` if the plan advertises no download speed or a non-positive
    /// price.
    pub fn carriage_value(&self) -> Option<f64> {
        match (self.download_mbps, self.monthly_usd) {
            (Some(mbps), usd) if usd > 0.0 => Some(mbps / usd),
            _ => None,
        }
    }

    /// Whether this plan satisfies the CAF service standard: a
    /// *guaranteed* download speed of at least `min_down` Mbps and upload
    /// of at least `min_up` Mbps (upload treated as satisfied when the
    /// website does not show it, since many ISPs advertise download only —
    /// footnote 4 of the paper).
    pub fn meets_service_standard(&self, min_down: f64, min_up: f64) -> bool {
        if !self.speed_guaranteed {
            return false;
        }
        let down_ok = self.download_mbps.is_some_and(|d| d >= min_down);
        let up_ok = self.upload_mbps.is_none_or(|u| u >= min_up);
        down_ok && up_ok
    }
}

impl fmt::Display for BroadbandPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.download_mbps {
            Some(d) => write!(f, "{} ({} Mbps, ${:.2}/mo)", self.name, d, self.monthly_usd),
            None => write!(
                f,
                "{} (unspecified speed, ${:.2}/mo)",
                self.name, self.monthly_usd
            ),
        }
    }
}

/// A speed tier in an ISP's catalog, with its price and guarantee status.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogTier {
    /// Tier label used in plan names.
    pub label: &'static str,
    /// Download speed in Mbps (`None` for unspecified-speed plans).
    pub download_mbps: Option<f64>,
    /// Upload speed in Mbps.
    pub upload_mbps: Option<f64>,
    /// Monthly price in dollars.
    pub monthly_usd: f64,
    /// Whether the speed is committed.
    pub guaranteed: bool,
}

/// An ISP's plan catalog: the tiers its website can advertise.
#[derive(Debug, Clone)]
pub struct PlanCatalog {
    isp: Isp,
    tiers: Vec<CatalogTier>,
}

impl PlanCatalog {
    /// The catalog for an ISP. Tier lists follow Table 1's advertised
    /// speed distributions; prices follow §4.2 (10 Mbps tiers between $30
    /// and $55, all below the FCC's ≈$89 benchmark) and scale sub-linearly
    /// with speed as the predecessor study observed.
    pub fn for_isp(isp: Isp) -> PlanCatalog {
        let tiers: Vec<CatalogTier> = match isp {
            Isp::Att => vec![
                CatalogTier {
                    label: "AT&T Internet Air",
                    download_mbps: Some(40.0),
                    upload_mbps: None,
                    monthly_usd: 55.0,
                    guaranteed: false,
                },
                CatalogTier {
                    label: "DSL 768k",
                    download_mbps: Some(0.768),
                    upload_mbps: Some(0.128),
                    monthly_usd: 40.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "DSL 1",
                    download_mbps: Some(1.0),
                    upload_mbps: Some(0.128),
                    monthly_usd: 40.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "DSL 3",
                    download_mbps: Some(3.0),
                    upload_mbps: Some(0.384),
                    monthly_usd: 45.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "DSL 5",
                    download_mbps: Some(5.0),
                    upload_mbps: Some(0.6),
                    monthly_usd: 45.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Internet 10",
                    download_mbps: Some(10.0),
                    upload_mbps: Some(1.0),
                    monthly_usd: 55.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Internet 25",
                    download_mbps: Some(25.0),
                    upload_mbps: Some(2.0),
                    monthly_usd: 55.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Internet 50",
                    download_mbps: Some(50.0),
                    upload_mbps: Some(10.0),
                    monthly_usd: 55.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fiber 300",
                    download_mbps: Some(300.0),
                    upload_mbps: Some(300.0),
                    monthly_usd: 55.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fiber 500",
                    download_mbps: Some(500.0),
                    upload_mbps: Some(500.0),
                    monthly_usd: 65.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fiber 1000",
                    download_mbps: Some(1000.0),
                    upload_mbps: Some(1000.0),
                    monthly_usd: 80.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fiber 2000",
                    download_mbps: Some(2000.0),
                    upload_mbps: Some(2000.0),
                    monthly_usd: 110.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fiber 5000",
                    download_mbps: Some(5000.0),
                    upload_mbps: Some(5000.0),
                    monthly_usd: 180.0,
                    guaranteed: true,
                },
            ],
            Isp::CenturyLink => vec![
                CatalogTier {
                    label: "DSL 0.5",
                    download_mbps: Some(0.5),
                    upload_mbps: Some(0.128),
                    monthly_usd: 30.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "DSL 1.5",
                    download_mbps: Some(1.5),
                    upload_mbps: Some(0.256),
                    monthly_usd: 30.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "DSL 3",
                    download_mbps: Some(3.0),
                    upload_mbps: Some(0.384),
                    monthly_usd: 35.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "DSL 6",
                    download_mbps: Some(6.0),
                    upload_mbps: Some(0.768),
                    monthly_usd: 40.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Simply Internet 10",
                    download_mbps: Some(10.0),
                    upload_mbps: Some(1.0),
                    monthly_usd: 50.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Simply Internet 40",
                    download_mbps: Some(40.0),
                    upload_mbps: Some(5.0),
                    monthly_usd: 50.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Simply Internet 80",
                    download_mbps: Some(80.0),
                    upload_mbps: Some(10.0),
                    monthly_usd: 50.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fiber 200",
                    download_mbps: Some(200.0),
                    upload_mbps: Some(200.0),
                    monthly_usd: 50.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fiber 940",
                    download_mbps: Some(940.0),
                    upload_mbps: Some(940.0),
                    monthly_usd: 75.0,
                    guaranteed: true,
                },
            ],
            Isp::Frontier => vec![
                CatalogTier {
                    label: "Frontier Internet",
                    download_mbps: Some(6.0),
                    upload_mbps: None,
                    monthly_usd: 50.0,
                    guaranteed: false,
                },
                CatalogTier {
                    label: "Unknown Plan",
                    download_mbps: None,
                    upload_mbps: None,
                    monthly_usd: 50.0,
                    guaranteed: false,
                },
                CatalogTier {
                    label: "DSL 10",
                    download_mbps: Some(10.0),
                    upload_mbps: Some(1.0),
                    monthly_usd: 45.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Internet 25",
                    download_mbps: Some(25.0),
                    upload_mbps: Some(2.0),
                    monthly_usd: 45.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fiber 500",
                    download_mbps: Some(500.0),
                    upload_mbps: Some(500.0),
                    monthly_usd: 45.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fiber 1 Gig",
                    download_mbps: Some(1000.0),
                    upload_mbps: Some(1000.0),
                    monthly_usd: 70.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fiber 2 Gig",
                    download_mbps: Some(2000.0),
                    upload_mbps: Some(2000.0),
                    monthly_usd: 100.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fiber 5 Gig",
                    download_mbps: Some(5000.0),
                    upload_mbps: Some(5000.0),
                    monthly_usd: 155.0,
                    guaranteed: true,
                },
            ],
            Isp::Consolidated => vec![
                CatalogTier {
                    label: "DSL 3",
                    download_mbps: Some(3.0),
                    upload_mbps: Some(0.384),
                    monthly_usd: 35.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "DSL 7",
                    download_mbps: Some(7.0),
                    upload_mbps: Some(0.768),
                    monthly_usd: 40.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Internet 10",
                    download_mbps: Some(10.0),
                    upload_mbps: Some(1.0),
                    monthly_usd: 45.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Internet 50",
                    download_mbps: Some(50.0),
                    upload_mbps: Some(5.0),
                    monthly_usd: 50.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Internet 250",
                    download_mbps: Some(250.0),
                    upload_mbps: Some(200.0),
                    monthly_usd: 55.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fidium 1 Gig",
                    download_mbps: Some(1000.0),
                    upload_mbps: Some(1000.0),
                    monthly_usd: 70.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fidium 2 Gig",
                    download_mbps: Some(2000.0),
                    upload_mbps: Some(2000.0),
                    monthly_usd: 95.0,
                    guaranteed: true,
                },
            ],
            Isp::Windstream => vec![
                CatalogTier {
                    label: "Kinetic 25",
                    download_mbps: Some(25.0),
                    upload_mbps: Some(3.0),
                    monthly_usd: 40.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Kinetic 100",
                    download_mbps: Some(100.0),
                    upload_mbps: Some(10.0),
                    monthly_usd: 45.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Kinetic 1 Gig",
                    download_mbps: Some(1000.0),
                    upload_mbps: Some(1000.0),
                    monthly_usd: 70.0,
                    guaranteed: true,
                },
            ],
            Isp::Xfinity => vec![
                CatalogTier {
                    label: "Connect 150",
                    download_mbps: Some(150.0),
                    upload_mbps: Some(10.0),
                    monthly_usd: 40.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Fast 400",
                    download_mbps: Some(400.0),
                    upload_mbps: Some(20.0),
                    monthly_usd: 55.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Gigabit",
                    download_mbps: Some(1000.0),
                    upload_mbps: Some(35.0),
                    monthly_usd: 70.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Gigabit X2",
                    download_mbps: Some(2000.0),
                    upload_mbps: Some(200.0),
                    monthly_usd: 100.0,
                    guaranteed: true,
                },
            ],
            Isp::Spectrum => vec![
                CatalogTier {
                    label: "Internet 300",
                    download_mbps: Some(300.0),
                    upload_mbps: Some(10.0),
                    monthly_usd: 50.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Internet Ultra 500",
                    download_mbps: Some(500.0),
                    upload_mbps: Some(20.0),
                    monthly_usd: 70.0,
                    guaranteed: true,
                },
                CatalogTier {
                    label: "Internet Gig",
                    download_mbps: Some(1000.0),
                    upload_mbps: Some(35.0),
                    monthly_usd: 90.0,
                    guaranteed: true,
                },
            ],
        };
        PlanCatalog { isp, tiers }
    }

    /// The ISP this catalog belongs to.
    pub fn isp(&self) -> Isp {
        self.isp
    }

    /// All tiers.
    pub fn tiers(&self) -> &[CatalogTier] {
        &self.tiers
    }

    /// The tier whose download speed is closest to `mbps` in *log* space
    /// (speed grids are geometric: 10/25/50/…/1000, so log distance is the
    /// natural metric — linear distance would bias multiplicative speed
    /// differences down to the lower tier). Unspecified-speed tiers are
    /// skipped.
    pub fn tier_near(&self, mbps: f64) -> &CatalogTier {
        let target = mbps.max(1e-6).ln();
        self.tiers
            .iter()
            .filter(|t| t.download_mbps.is_some())
            .min_by(|a, b| {
                let da = (a.download_mbps.unwrap().ln() - target).abs();
                let db = (b.download_mbps.unwrap().ln() - target).abs();
                da.partial_cmp(&db).expect("finite")
            })
            .expect("every catalog has at least one specified-speed tier")
    }

    /// The tier with the given label, if present.
    pub fn tier_labeled(&self, label: &str) -> Option<&CatalogTier> {
        self.tiers.iter().find(|t| t.label == label)
    }

    /// Materializes a [`BroadbandPlan`] from a tier.
    pub fn plan_from_tier(&self, tier: &CatalogTier) -> BroadbandPlan {
        BroadbandPlan {
            name: tier.label.to_string(),
            download_mbps: tier.download_mbps,
            upload_mbps: tier.upload_mbps,
            monthly_usd: tier.monthly_usd,
            speed_guaranteed: tier.guaranteed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_isp_has_a_catalog_with_valid_prices() {
        for isp in Isp::all() {
            let cat = PlanCatalog::for_isp(isp);
            assert_eq!(cat.isp(), isp);
            assert!(!cat.tiers().is_empty());
            for t in cat.tiers() {
                assert!(t.monthly_usd > 0.0, "{isp} {}", t.label);
                if let Some(d) = t.download_mbps {
                    assert!(d > 0.0);
                }
            }
        }
    }

    #[test]
    fn ten_mbps_tiers_priced_30_to_55_like_the_paper() {
        // §4.2: "prices offered by our analyzed ISPs, for the tier of
        // 10 Mbps (download), ranged from $30 to $55 per month".
        for isp in Isp::audited() {
            let cat = PlanCatalog::for_isp(isp);
            let tier = cat.tier_near(10.0);
            assert!(
                (30.0..=55.0).contains(&tier.monthly_usd),
                "{isp}: ${}",
                tier.monthly_usd
            );
        }
    }

    #[test]
    fn unguaranteed_plans_fail_the_service_standard() {
        let att = PlanCatalog::for_isp(Isp::Att);
        let air = att.tier_labeled("AT&T Internet Air").unwrap();
        let plan = att.plan_from_tier(air);
        // Advertises 40 Mbps but guarantees nothing.
        assert!(!plan.meets_service_standard(10.0, 1.0));

        let frontier = PlanCatalog::for_isp(Isp::Frontier);
        let fi = frontier.plan_from_tier(frontier.tier_labeled("Frontier Internet").unwrap());
        assert!(!fi.meets_service_standard(10.0, 1.0));
        let unknown = frontier.plan_from_tier(frontier.tier_labeled("Unknown Plan").unwrap());
        assert!(!unknown.meets_service_standard(10.0, 1.0));
        assert_eq!(unknown.carriage_value(), None);
    }

    #[test]
    fn guaranteed_ten_one_plans_pass() {
        for isp in Isp::audited() {
            let cat = PlanCatalog::for_isp(isp);
            let tier = cat.tier_near(10.0);
            let plan = cat.plan_from_tier(tier);
            assert!(
                plan.meets_service_standard(10.0, 1.0),
                "{isp}: {}",
                plan.name
            );
        }
    }

    #[test]
    fn sub_ten_tiers_fail_the_speed_floor() {
        let cl = PlanCatalog::for_isp(Isp::CenturyLink);
        let slow = cl.plan_from_tier(cl.tier_labeled("DSL 3").unwrap());
        assert!(!slow.meets_service_standard(10.0, 1.0));
    }

    #[test]
    fn carriage_value_shape() {
        let cl = PlanCatalog::for_isp(Isp::CenturyLink);
        let fiber = cl.plan_from_tier(cl.tier_labeled("Fiber 940").unwrap());
        let dsl = cl.plan_from_tier(cl.tier_labeled("Simply Internet 10").unwrap());
        // Fiber carries far more Mbps per dollar.
        assert!(fiber.carriage_value().unwrap() > 10.0 * dsl.carriage_value().unwrap());
    }

    #[test]
    fn tier_near_picks_closest() {
        let cat = PlanCatalog::for_isp(Isp::Att);
        assert_eq!(cat.tier_near(9.0).label, "Internet 10");
        assert_eq!(cat.tier_near(4000.0).label, "Fiber 5000");
        assert_eq!(cat.tier_near(0.5).label, "DSL 768k");
    }

    #[test]
    fn display_formats() {
        let cat = PlanCatalog::for_isp(Isp::Frontier);
        let p = cat.plan_from_tier(cat.tier_labeled("Fiber 1 Gig").unwrap());
        assert_eq!(p.to_string(), "Fiber 1 Gig (1000 Mbps, $70.00/mo)");
        let u = cat.plan_from_tier(cat.tier_labeled("Unknown Plan").unwrap());
        assert!(u.to_string().contains("unspecified speed"));
    }
}
