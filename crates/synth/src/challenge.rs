//! Challenge-process corrections to the availability map.
//!
//! The FCC's Broadband Data Collection runs a continuous *challenge*
//! process: crowd corrections mutate per-CBG availability claims after
//! the map is first published. This module is the synthetic equivalent:
//! a [`ChallengeDelta`] corrects one (state, CBG, ISP) cell — either the
//! latent serviceability rate (a *truth* correction) or the certified
//! tier (a *claim* correction) — and [`crate::World::apply_deltas`]
//! folds a batch of deltas into an existing world by rebuilding only the
//! touched CBG cells through the same `build_for_cbgs` /
//! `build_q1_for_cbgs` seams the sharded generator uses.
//!
//! ## Convergence contract
//!
//! Applying the same deltas in different batch splits must converge to
//! byte-identical worlds. Three rules make that hold:
//!
//! 1. **Content-addressed corrections.** A correction's effect is a pure
//!    function of `(seed, cell, correction value)` — never of the state
//!    the world was in when it arrived. Rebuilds always start from the
//!    seed baseline and overlay the *effective* correction.
//! 2. **Last-writer-wins merging.** A [`ChallengeSet`] keeps one
//!    effective value per (cell, correction kind); re-applying or
//!    overwriting is idempotent.
//! 3. **Cumulative epochs.** The world epoch counts deltas applied, not
//!    batches, so any batch decomposition of one delta stream lands on
//!    the same final epoch.
//!
//! Cells are addressed by their **index in the state's canonical CBG
//! enumeration** ([`StateGeography::build_range`] order). The index is a
//! pure function of the calibration presence matrix — independent of the
//! RNG stream, worker count, and shard policy — which is what lets a
//! committed delta file replay identically on any build of the world.

use crate::geography::StateGeography;
use crate::isp::Isp;
use caf_geo::UsState;
use caf_obs::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt;

/// One correction to a (state, CBG, ISP) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Correction {
    /// Replace the cell's latent serviceability rate with a fixed value,
    /// in parts per million (a truth correction: "the map says served,
    /// residents report otherwise"). Integer ppm keeps the JSON wire
    /// format exact.
    Availability {
        /// The corrected serviceability rate in `[0, 1_000_000]` ppm.
        rate_ppm: u32,
    },
    /// Replace the certified tier of every record in the cell (a claim
    /// correction: the ISP restates what it certified to USAC).
    CertifiedTier {
        /// Certified download speed in Mbps.
        down_mbps: u32,
        /// Certified upload speed in Mbps.
        up_mbps: u32,
    },
}

/// One challenge delta: a correction addressed to a (state, CBG, ISP)
/// cell. `cbg` is the index in the state's canonical CBG enumeration
/// (see the module docs for why it is an index, not a GEOID); `isp` is
/// redundant with the geography's cell → ISP assignment and is validated
/// against it on apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChallengeDelta {
    /// The state whose map is being corrected.
    pub state: UsState,
    /// CBG index in the state's canonical enumeration order.
    pub cbg: usize,
    /// The CAF-subsidized ISP certified in that CBG.
    pub isp: Isp,
    /// The correction to apply.
    pub correction: Correction,
}

/// The effective corrections for one cell, one slot per correction kind
/// (last writer wins within a kind; kinds compose).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellCorrections {
    /// Effective availability override in ppm, if any.
    pub availability_ppm: Option<u32>,
    /// Effective certified-tier override `(down, up)` in Mbps, if any.
    pub certified: Option<(u32, u32)>,
}

/// The merged, effective correction state of a world: everything needed
/// to rebuild any touched cell from the seed baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChallengeSet {
    /// Keyed by (state FIPS code, CBG index) so iteration order is
    /// deterministic and state-grouped.
    cells: BTreeMap<(u16, usize), CellCorrections>,
}

impl ChallengeSet {
    /// An empty set (the epoch-0 world).
    pub fn new() -> ChallengeSet {
        ChallengeSet::default()
    }

    /// Folds one delta in (last writer wins within its correction kind)
    /// and returns the cell's new effective corrections.
    pub fn merge_delta(&mut self, delta: &ChallengeDelta) -> CellCorrections {
        let cell = self
            .cells
            .entry((delta.state.fips().code(), delta.cbg))
            .or_default();
        match delta.correction {
            Correction::Availability { rate_ppm } => cell.availability_ppm = Some(rate_ppm),
            Correction::CertifiedTier { down_mbps, up_mbps } => {
                cell.certified = Some((down_mbps, up_mbps));
            }
        }
        *cell
    }

    /// The effective corrections for a cell, if any.
    pub fn cell(&self, state: UsState, cbg: usize) -> Option<&CellCorrections> {
        self.cells.get(&(state.fips().code(), cbg))
    }

    /// Installs a cell's effective corrections verbatim (snapshot
    /// restore; everywhere else folds deltas via `merge_delta`).
    pub(crate) fn insert_cell(&mut self, state_fips: u16, cbg: usize, cell: CellCorrections) {
        self.cells.insert((state_fips, cbg), cell);
    }

    /// Number of corrected cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cell carries a correction.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates corrected cells as `(FIPS code, CBG index, corrections)`
    /// in deterministic key order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, usize, &CellCorrections)> {
        self.cells.iter().map(|(&(f, i), c)| (f, i, c))
    }
}

/// What [`crate::World::apply_deltas`] did: the new epoch and which
/// cells were invalidated, grouped per state in world order — the dirty
/// set the incremental audit consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// The world epoch after the batch (cumulative delta count).
    pub epoch: u64,
    /// Deltas applied in this batch.
    pub applied: usize,
    /// Touched CBG indices per state, each list sorted ascending and
    /// deduplicated.
    pub touched: Vec<(UsState, Vec<usize>)>,
}

impl DeltaOutcome {
    /// Total number of distinct cells invalidated by the batch.
    pub fn dirty_cells(&self) -> usize {
        self.touched.iter().map(|(_, cells)| cells.len()).sum()
    }
}

/// Why a delta batch was rejected (the whole batch is atomic: on any
/// error the world is left untouched).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChallengeError {
    /// The delta names a state the world was not generated with.
    UnknownState(UsState),
    /// The CBG index is outside the state's enumeration.
    CbgOutOfRange {
        /// The state named by the delta.
        state: UsState,
        /// The out-of-range index.
        cbg: usize,
        /// The state's CBG count.
        len: usize,
    },
    /// The delta's ISP does not match the CBG's certified ISP.
    IspMismatch {
        /// The state named by the delta.
        state: UsState,
        /// The CBG index named by the delta.
        cbg: usize,
        /// The ISP the delta claimed.
        claimed: Isp,
        /// The ISP the geography certifies in that CBG.
        actual: Isp,
    },
    /// The availability rate exceeds 1 000 000 ppm.
    RateOutOfRange(u32),
}

impl fmt::Display for ChallengeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChallengeError::UnknownState(state) => {
                write!(f, "state {} is not part of this world", state.abbrev())
            }
            ChallengeError::CbgOutOfRange { state, cbg, len } => write!(
                f,
                "cbg index {cbg} out of range for {} ({len} cells)",
                state.abbrev()
            ),
            ChallengeError::IspMismatch {
                state,
                cbg,
                claimed,
                actual,
            } => write!(
                f,
                "cbg {cbg} in {} is certified to {actual}, not {claimed}",
                state.abbrev()
            ),
            ChallengeError::RateOutOfRange(ppm) => {
                write!(f, "availability rate {ppm} ppm exceeds 1000000")
            }
        }
    }
}

impl std::error::Error for ChallengeError {}

/// Validates one delta against a state geography (shared by
/// [`crate::World::apply_deltas`] and ingest front ends that want to
/// reject bad deltas before touching the world).
pub fn validate_delta(delta: &ChallengeDelta, geo: &StateGeography) -> Result<(), ChallengeError> {
    if delta.cbg >= geo.cbgs.len() {
        return Err(ChallengeError::CbgOutOfRange {
            state: delta.state,
            cbg: delta.cbg,
            len: geo.cbgs.len(),
        });
    }
    let actual = geo.cbgs[delta.cbg].isp;
    if actual != delta.isp {
        return Err(ChallengeError::IspMismatch {
            state: delta.state,
            cbg: delta.cbg,
            claimed: delta.isp,
            actual,
        });
    }
    if let Correction::Availability { rate_ppm } = delta.correction {
        if rate_ppm > 1_000_000 {
            return Err(ChallengeError::RateOutOfRange(rate_ppm));
        }
    }
    Ok(())
}

/// Serializes one delta as a compact single-line JSON object (the JSONL
/// wire format of `POST /v1/challenge` and `challenge_replay`).
pub fn delta_to_json(delta: &ChallengeDelta) -> String {
    let mut fields: Vec<(String, Json)> = vec![
        ("cbg".to_string(), Json::UInt(delta.cbg as u64)),
        (
            "correction".to_string(),
            Json::Str(match delta.correction {
                Correction::Availability { .. } => "availability".to_string(),
                Correction::CertifiedTier { .. } => "certified_tier".to_string(),
            }),
        ),
    ];
    match delta.correction {
        Correction::Availability { rate_ppm } => {
            fields.push(("rate_ppm".to_string(), Json::UInt(u64::from(rate_ppm))));
        }
        Correction::CertifiedTier { down_mbps, up_mbps } => {
            fields.push(("down_mbps".to_string(), Json::UInt(u64::from(down_mbps))));
            fields.push(("up_mbps".to_string(), Json::UInt(u64::from(up_mbps))));
        }
    }
    fields.push(("isp".to_string(), Json::Str(delta.isp.name().to_string())));
    fields.push((
        "state".to_string(),
        Json::Str(delta.state.abbrev().to_string()),
    ));
    fields.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Obj(fields).to_compact()
}

/// Parses one JSONL line into a delta. Lines must be objects with keys
/// `state` (postal abbreviation), `cbg` (enumeration index), `isp`
/// (display name), `correction` (`"availability"` with `rate_ppm`, or
/// `"certified_tier"` with `down_mbps`/`up_mbps`).
pub fn delta_from_json(line: &str) -> Result<ChallengeDelta, String> {
    let value = json::parse(line)?;
    let obj = value.as_obj().ok_or("delta line must be a JSON object")?;
    let get = |key: &str| {
        obj.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing key {key:?}"))
    };
    let state_abbrev = get("state")?.as_str().ok_or("state must be a string")?;
    let state = UsState::from_abbrev(state_abbrev)
        .map_err(|_| format!("unknown state abbreviation {state_abbrev:?}"))?;
    let cbg = get("cbg")?
        .as_u64()
        .ok_or("cbg must be an unsigned integer")? as usize;
    let isp_name = get("isp")?.as_str().ok_or("isp must be a string")?;
    let isp = Isp::from_name(isp_name).ok_or_else(|| format!("unknown isp {isp_name:?}"))?;
    let kind = get("correction")?
        .as_str()
        .ok_or("correction must be a string")?;
    let correction = match kind {
        "availability" => {
            let ppm = get("rate_ppm")?
                .as_u64()
                .ok_or("rate_ppm must be an unsigned integer")?;
            let rate_ppm =
                u32::try_from(ppm).map_err(|_| format!("rate_ppm {ppm} out of range"))?;
            Correction::Availability { rate_ppm }
        }
        "certified_tier" => {
            let down = get("down_mbps")?
                .as_u64()
                .ok_or("down_mbps must be an unsigned integer")?;
            let up = get("up_mbps")?
                .as_u64()
                .ok_or("up_mbps must be an unsigned integer")?;
            Correction::CertifiedTier {
                down_mbps: u32::try_from(down)
                    .map_err(|_| format!("down_mbps {down} out of range"))?,
                up_mbps: u32::try_from(up).map_err(|_| format!("up_mbps {up} out of range"))?,
            }
        }
        other => return Err(format!("unknown correction kind {other:?}")),
    };
    Ok(ChallengeDelta {
        state,
        cbg,
        isp,
        correction,
    })
}

/// Parses a whole JSONL document (blank lines and `#` comment lines are
/// skipped), reporting the first malformed line by number.
pub fn deltas_from_jsonl(text: &str) -> Result<Vec<ChallengeDelta>, String> {
    let _span = caf_obs::span("challenge.parse");
    let mut deltas = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let delta = delta_from_json(trimmed).map_err(|e| format!("line {}: {e}", number + 1))?;
        deltas.push(delta);
    }
    Ok(deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SynthConfig;

    fn sample_delta() -> ChallengeDelta {
        ChallengeDelta {
            state: UsState::Mississippi,
            cbg: 3,
            isp: Isp::Att,
            correction: Correction::Availability { rate_ppm: 120_000 },
        }
    }

    #[test]
    fn jsonl_roundtrip_both_kinds() {
        let deltas = [
            sample_delta(),
            ChallengeDelta {
                state: UsState::Vermont,
                cbg: 0,
                isp: Isp::Consolidated,
                correction: Correction::CertifiedTier {
                    down_mbps: 25,
                    up_mbps: 3,
                },
            },
        ];
        let text: String = deltas
            .iter()
            .map(|d| format!("{}\n", delta_to_json(d)))
            .collect();
        let parsed = deltas_from_jsonl(&text).expect("roundtrip parses");
        assert_eq!(parsed, deltas);
    }

    #[test]
    fn jsonl_skips_blanks_and_comments_and_reports_line_numbers() {
        let text = format!("# header\n\n{}\nnot json\n", delta_to_json(&sample_delta()));
        let err = deltas_from_jsonl(&text).unwrap_err();
        assert!(err.starts_with("line 4:"), "{err}");
        let ok = deltas_from_jsonl(&format!("# header\n{}\n", delta_to_json(&sample_delta())))
            .expect("comments skipped");
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn merge_is_last_writer_wins_per_kind() {
        let mut set = ChallengeSet::new();
        set.merge_delta(&sample_delta());
        set.merge_delta(&ChallengeDelta {
            correction: Correction::Availability { rate_ppm: 990_000 },
            ..sample_delta()
        });
        set.merge_delta(&ChallengeDelta {
            correction: Correction::CertifiedTier {
                down_mbps: 100,
                up_mbps: 10,
            },
            ..sample_delta()
        });
        assert_eq!(set.len(), 1);
        let cell = set.cell(UsState::Mississippi, 3).expect("cell present");
        assert_eq!(cell.availability_ppm, Some(990_000));
        assert_eq!(cell.certified, Some((100, 10)));
    }

    #[test]
    fn validation_rejects_bad_addresses() {
        let config = SynthConfig { seed: 5, scale: 20 };
        let geo = StateGeography::build(&config, UsState::Mississippi);
        assert!(validate_delta(&sample_delta(), &geo).is_ok());
        let out_of_range = ChallengeDelta {
            cbg: geo.cbgs.len(),
            ..sample_delta()
        };
        assert!(matches!(
            validate_delta(&out_of_range, &geo),
            Err(ChallengeError::CbgOutOfRange { .. })
        ));
        let wrong_isp = ChallengeDelta {
            isp: Isp::Frontier,
            ..sample_delta()
        };
        assert!(matches!(
            validate_delta(&wrong_isp, &geo),
            Err(ChallengeError::IspMismatch { .. })
        ));
        let bad_rate = ChallengeDelta {
            correction: Correction::Availability {
                rate_ppm: 1_000_001,
            },
            ..sample_delta()
        };
        assert!(matches!(
            validate_delta(&bad_rate, &geo),
            Err(ChallengeError::RateOutOfRange(_))
        ));
    }
}
